#include "src/sim/cluster.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace iokc::sim {

ClusterSpec ClusterSpec::fuchs_csc() {
  ClusterSpec spec;
  spec.name = "FUCHS-CSC-sim";
  spec.node_count = 198;
  spec.node = NodeSpec{};  // defaults already describe FUCHS-CSC nodes
  spec.fabric_bytes_per_sec = 27.0e9;
  spec.interconnect = "InfiniBand FDR";
  return spec;
}

Cluster::Cluster(EventQueue& queue, ClusterSpec spec, std::uint64_t seed)
    : queue_(queue), spec_(std::move(spec)), rng_(seed) {
  if (spec_.node_count == 0) {
    throw iokc::SimError("cluster needs at least one node");
  }
  nics_.reserve(spec_.node_count);
  for (std::size_t n = 0; n < spec_.node_count; ++n) {
    auto pipe = std::make_unique<BandwidthPipe>(
        queue_, spec_.name + "/node" + std::to_string(n) + "/nic",
        spec_.node.nic_bytes_per_sec, spec_.node.nic_op_overhead_sec);
    // Health is consulted at service start so mid-run degradation applies to
    // transfers that begin after the health change.
    pipe->set_rate_multiplier([this, n](SimTime) {
      switch (health_[n]) {
        case NodeHealth::kHealthy: return 1.0;
        case NodeHealth::kDegraded: return spec_.degraded_rate_fraction;
        case NodeHealth::kBroken: return 1e-6;
      }
      return 1.0;
    });
    nics_.push_back(std::move(pipe));
  }
  fabric_ = std::make_unique<BandwidthPipe>(
      queue_, spec_.name + "/fabric",
      spec_.fabric_bytes_per_sec / static_cast<double>(spec_.fabric_lanes),
      spec_.fabric_op_overhead_sec, spec_.fabric_lanes);
  health_.assign(spec_.node_count, NodeHealth::kHealthy);
}

void Cluster::check_node(std::size_t node) const {
  if (node >= spec_.node_count) {
    throw iokc::SimError("node id " + std::to_string(node) +
                         " out of range (cluster has " +
                         std::to_string(spec_.node_count) + " nodes)");
  }
}

BandwidthPipe& Cluster::nic(std::size_t node) {
  check_node(node);
  return *nics_[node];
}

NodeHealth Cluster::health(std::size_t node) const {
  check_node(node);
  return health_[node];
}

void Cluster::set_health(std::size_t node, NodeHealth health) {
  check_node(node);
  health_[node] = health;
}

std::size_t Cluster::healthy_node_count() const {
  std::size_t count = 0;
  for (const NodeHealth h : health_) {
    if (h == NodeHealth::kHealthy) {
      ++count;
    }
  }
  return count;
}

std::vector<std::size_t> Cluster::allocate_nodes(std::size_t count) const {
  std::vector<std::size_t> nodes;
  nodes.reserve(count);
  // A resource manager does not schedule onto broken (drained) nodes, but a
  // *degraded* node looks healthy to it — that is exactly the Fig. 6 story.
  for (std::size_t n = 0; n < spec_.node_count && nodes.size() < count; ++n) {
    if (health_[n] != NodeHealth::kBroken) {
      nodes.push_back(n);
    }
  }
  if (nodes.size() < count) {
    throw iokc::SimError("cannot allocate " + std::to_string(count) +
                         " nodes; only " + std::to_string(nodes.size()) +
                         " usable");
  }
  return nodes;
}

double Cluster::jitter() {
  if (spec_.jitter_sigma <= 0.0) {
    return 1.0;
  }
  // Lognormal with median 1.0; sigma ~0.02 gives ~2% run-to-run variation.
  return rng_.lognormal(0.0, spec_.jitter_sigma);
}

}  // namespace iokc::sim
