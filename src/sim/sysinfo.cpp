#include "src/sim/sysinfo.hpp"

#include <algorithm>
#include <cstdio>

#include "src/util/strings.hpp"
#include "src/util/units.hpp"

namespace iokc::sim {

SystemInfo collect_system_info(const ClusterSpec& spec, std::size_t node) {
  SystemInfo info;
  char host[64];
  std::snprintf(host, sizeof host, "%s-node%03zu", spec.name.c_str(), node);
  info.hostname = host;
  info.os_release = spec.os_release;
  info.cpu_model = spec.node.cpu.model;
  info.sockets = spec.node.cpu.sockets;
  info.cores_per_socket = spec.node.cpu.cores_per_socket;
  info.total_cores = spec.node.cpu.total_cores();
  info.frequency_mhz = spec.node.cpu.frequency_mhz;
  info.l1d_kib = spec.node.cpu.l1d_kib;
  info.l2_kib = spec.node.cpu.l2_kib;
  info.l3_kib = spec.node.cpu.l3_kib;
  info.memory_bytes = spec.node.memory_bytes;
  info.interconnect = spec.interconnect;
  return info;
}

std::string render_proc_cpuinfo(const SystemInfo& info) {
  std::string out;
  for (int core = 0; core < info.total_cores; ++core) {
    out += "processor\t: " + std::to_string(core) + "\n";
    out += "model name\t: " + info.cpu_model + "\n";
    out += "cpu MHz\t\t: " + util::format_double(info.frequency_mhz, 3) + "\n";
    out += "cache size\t: " + std::to_string(info.l3_kib) + " KB\n";
    out += "physical id\t: " +
           std::to_string(core / std::max(info.cores_per_socket, 1)) + "\n";
    out += "cpu cores\t: " + std::to_string(info.cores_per_socket) + "\n";
    out += "\n";
  }
  return out;
}

std::string render_proc_meminfo(const SystemInfo& info) {
  const std::uint64_t total_kib = info.memory_bytes / util::kKiB;
  std::string out;
  out += "MemTotal:       " + std::to_string(total_kib) + " kB\n";
  out += "MemFree:        " + std::to_string(total_kib * 9 / 10) + " kB\n";
  out += "MemAvailable:   " + std::to_string(total_kib * 95 / 100) + " kB\n";
  out += "Cached:         " + std::to_string(total_kib / 20) + " kB\n";
  return out;
}

std::string render_sysinfo_summary(const SystemInfo& info) {
  std::string out;
  out += "hostname: " + info.hostname + "\n";
  out += "os_release: " + info.os_release + "\n";
  out += "cpu_model: " + info.cpu_model + "\n";
  out += "sockets: " + std::to_string(info.sockets) + "\n";
  out += "cores_per_socket: " + std::to_string(info.cores_per_socket) + "\n";
  out += "total_cores: " + std::to_string(info.total_cores) + "\n";
  out += "frequency_mhz: " + util::format_double(info.frequency_mhz, 1) + "\n";
  out += "l1d_kib: " + std::to_string(info.l1d_kib) + "\n";
  out += "l2_kib: " + std::to_string(info.l2_kib) + "\n";
  out += "l3_kib: " + std::to_string(info.l3_kib) + "\n";
  out += "memory_bytes: " + std::to_string(info.memory_bytes) + "\n";
  out += "interconnect: " + info.interconnect + "\n";
  return out;
}

}  // namespace iokc::sim
