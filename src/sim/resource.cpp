#include "src/sim/resource.hpp"

#include <algorithm>
#include <utility>

#include "src/util/error.hpp"

namespace iokc::sim {

QueuedResource::QueuedResource(EventQueue& queue, std::string name,
                               std::size_t capacity)
    : queue_(queue), name_(std::move(name)) {
  if (capacity == 0) {
    throw iokc::SimError("resource '" + name_ + "' needs capacity >= 1");
  }
  slot_free_at_.assign(capacity, 0.0);
}

void QueuedResource::submit(SimTime service_time,
                            std::function<void(SimTime)> done) {
  if (service_time < 0.0) {
    throw iokc::SimError("negative service time on resource '" + name_ + "'");
  }
  auto slot = std::min_element(slot_free_at_.begin(), slot_free_at_.end());
  const SimTime start = std::max(queue_.now(), *slot);
  const SimTime finish = start + service_time;
  *slot = finish;
  busy_time_ += service_time;
  queue_.schedule_at(finish, [this, finish, done = std::move(done)] {
    ++completed_ops_;
    done(finish);
  });
}

SimTime QueuedResource::earliest_start() const {
  const SimTime free_at =
      *std::min_element(slot_free_at_.begin(), slot_free_at_.end());
  return std::max(queue_.now(), free_at);
}

BandwidthPipe::BandwidthPipe(EventQueue& queue, std::string name,
                             double rate_bytes_per_sec,
                             double per_op_overhead_sec, std::size_t capacity)
    : resource_(queue, name, capacity),
      queue_(queue),
      name_(std::move(name)),
      rate_(rate_bytes_per_sec),
      overhead_(per_op_overhead_sec) {
  if (rate_ <= 0.0) {
    throw iokc::SimError("pipe '" + name_ + "' needs a positive rate");
  }
  if (overhead_ < 0.0) {
    throw iokc::SimError("pipe '" + name_ + "' has negative op overhead");
  }
}

void BandwidthPipe::transfer(std::uint64_t bytes,
                             std::function<void(SimTime)> done, double jitter) {
  if (jitter <= 0.0) {
    jitter = 1.0;
  }
  const SimTime start = resource_.earliest_start();
  double multiplier = multiplier_ ? multiplier_(start) : 1.0;
  multiplier = std::clamp(multiplier, 1e-6, 1e6);
  const double service =
      (overhead_ + static_cast<double>(bytes) / (rate_ * multiplier)) * jitter;
  transferred_bytes_ += bytes;
  resource_.submit(service, std::move(done));
}

void BandwidthPipe::set_rate_multiplier(RateMultiplier multiplier) {
  multiplier_ = std::move(multiplier);
}

}  // namespace iokc::sim
