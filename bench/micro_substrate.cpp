// Microbenchmarks of the substrates (google-benchmark): discrete-event
// throughput, parallel-file-system operation rate, SQL engine, parsers, JSON,
// and the statistics kernels. These bound the cost of the knowledge cycle's
// own machinery, independent of any paper figure.
#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/stats.hpp"
#include "src/cycle/cycle.hpp"
#include "src/db/database.hpp"
#include "src/extract/parsers.hpp"
#include "src/fs/pfs.hpp"
#include "src/generators/ior.hpp"
#include "src/iostack/client.hpp"
#include "src/sim/cluster.hpp"
#include "src/util/json.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    iokc::sim::EventQueue queue;
    for (std::size_t i = 0; i < events; ++i) {
      queue.schedule_in(static_cast<double>(i % 97) * 1e-6, [] {});
    }
    queue.run();
    benchmark::DoNotOptimize(queue.executed_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_PfsWritePath(benchmark::State& state) {
  for (auto _ : state) {
    iokc::sim::EventQueue queue;
    iokc::sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 2;
    iokc::sim::Cluster cluster(queue, cluster_spec, 1);
    iokc::fs::ParallelFileSystem pfs(cluster,
                                     iokc::fs::PfsSpec::fuchs_beegfs());
    pfs.create("/f", 0, [](iokc::sim::SimTime) {});
    queue.run();
    for (int i = 0; i < 64; ++i) {
      pfs.write("/f", static_cast<std::uint64_t>(i) << 20, 1 << 20, 0,
                [](iokc::sim::SimTime) {});
    }
    queue.run();
    benchmark::DoNotOptimize(pfs.bytes_written());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PfsWritePath);

void BM_IorSmallRun(benchmark::State& state) {
  const std::string command =
      "ior -a posix -b 1m -t 256k -s 2 -F -i 1 -N 8 -o /scratch/b -k";
  for (auto _ : state) {
    iokc::sim::EventQueue queue;
    iokc::sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 2;
    iokc::sim::Cluster cluster(queue, cluster_spec, 1);
    iokc::fs::ParallelFileSystem pfs(cluster,
                                     iokc::fs::PfsSpec::fuchs_beegfs());
    const iokc::gen::IorConfig config = iokc::gen::parse_ior_command(command);
    iokc::iostack::IoClient client(pfs, config.api);
    iokc::gen::IorBenchmark bench(client, config,
                                  iokc::gen::block_rank_mapping({0, 1}, 8));
    benchmark::DoNotOptimize(bench.run().ops.size());
  }
}
BENCHMARK(BM_IorSmallRun);

void BM_DbInsert(benchmark::State& state) {
  for (auto _ : state) {
    iokc::db::Database db;
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a TEXT, b REAL)");
    for (int i = 0; i < 256; ++i) {
      db.execute("INSERT INTO t (a, b) VALUES ('row', " +
                 std::to_string(i) + ".5)");
    }
    benchmark::DoNotOptimize(db.last_insert_rowid());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DbInsert);

void BM_DbIndexedSelect(benchmark::State& state) {
  iokc::db::Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v REAL)");
  db.execute("CREATE INDEX idx_k ON t (k)");
  for (int i = 0; i < 4096; ++i) {
    db.execute("INSERT INTO t (k, v) VALUES (" + std::to_string(i % 64) +
               ", 1.0)");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.execute("SELECT * FROM t WHERE k = 17").size());
  }
}
BENCHMARK(BM_DbIndexedSelect);

void BM_SqlParse(benchmark::State& state) {
  const std::string sql =
      "SELECT a, t2.b FROM t INNER JOIN t2 ON t.id = t2.t_id "
      "WHERE a > 3 AND (b = 'x' OR NOT c < 2) ORDER BY a DESC LIMIT 10";
  for (auto _ : state) {
    benchmark::DoNotOptimize(iokc::db::parse_sql(sql));
  }
}
BENCHMARK(BM_SqlParse);

void BM_IorOutputParse(benchmark::State& state) {
  // A realistic 6-iteration report generated once.
  iokc::sim::EventQueue queue;
  iokc::sim::ClusterSpec cluster_spec;
  cluster_spec.node_count = 2;
  iokc::sim::Cluster cluster(queue, cluster_spec, 1);
  iokc::fs::ParallelFileSystem pfs(cluster, iokc::fs::PfsSpec::fuchs_beegfs());
  const iokc::gen::IorConfig config = iokc::gen::parse_ior_command(
      "ior -a posix -b 1m -t 256k -s 2 -F -i 6 -N 8 -o /scratch/p -k");
  iokc::iostack::IoClient client(pfs, config.api);
  iokc::gen::IorBenchmark bench(client, config,
                                iokc::gen::block_rank_mapping({0, 1}, 8));
  const std::string output = bench.run().render_output();
  for (auto _ : state) {
    benchmark::DoNotOptimize(iokc::extract::parse_ior_output(output));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(output.size()));
}
BENCHMARK(BM_IorOutputParse);

void BM_JsonRoundTrip(benchmark::State& state) {
  iokc::util::JsonObject obj;
  for (int i = 0; i < 32; ++i) {
    iokc::util::JsonArray arr;
    for (int j = 0; j < 8; ++j) {
      arr.push_back(iokc::util::JsonValue(static_cast<double>(i * j) * 1.5));
    }
    obj.emplace_back("series" + std::to_string(i),
                     iokc::util::JsonValue(std::move(arr)));
  }
  const std::string doc = iokc::util::JsonValue(std::move(obj)).dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(iokc::util::parse_json(doc).dump());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  // Scheduling overhead of the work-stealing pool for tiny tasks: an upper
  // bound on what the pool costs per work package (real packages are whole
  // benchmark runs, orders of magnitude larger).
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    iokc::util::ThreadPool pool(threads);
    std::atomic<std::uint64_t> sum{0};
    for (std::uint64_t i = 0; i < 1024; ++i) {
      pool.submit([&sum, i] { sum += i; });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(sum.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_ThreadPoolSubmitDrain)->Arg(1)->Arg(4);

void BM_ParallelSweepCycle(benchmark::State& state) {
  // The whole pipeline — generate 6 work packages, extract, persist — run
  // through the cycle facade in isolated mode. Arg is the worker-thread
  // count: compare Arg(1) vs Arg(hardware) for the end-to-end speedup.
  const int jobs = static_cast<int>(state.range(0));
  const std::filesystem::path workspace =
      std::filesystem::temp_directory_path() /
      ("iokc_micro_sweep_" + std::to_string(jobs));
  iokc::jube::JubeBenchmarkConfig config;
  config.name = "micro";
  config.space.add_csv("transfer", "256k,512k,1m");
  config.space.add_csv("tasks", "4,8");
  config.steps.push_back(iokc::jube::JubeStep{
      "run", "ior -a posix -b 1m -t $transfer -s 2 -F -w -i 1 -N $tasks "
             "-o /scratch/m_$transfer"});
  for (auto _ : state) {
    std::filesystem::remove_all(workspace);
    iokc::cycle::SimEnvironment env;
    iokc::cycle::KnowledgeCycle cycle(
        env, workspace, iokc::persist::RepoTarget::parse("mem:"));
    cycle.set_parallelism(jobs);
    cycle.generate(config);
    benchmark::DoNotOptimize(cycle.extract_and_persist().total());
  }
  std::filesystem::remove_all(workspace);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 6);
}
BENCHMARK(BM_ParallelSweepCycle)
    ->Arg(1)
    ->Arg(static_cast<int>(iokc::util::ThreadPool::hardware_threads()))
    ->Unit(benchmark::kMillisecond);

void BM_BoxplotStats(benchmark::State& state) {
  iokc::util::Rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.normal(2850.0, 120.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(iokc::analysis::boxplot(values));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_BoxplotStats);

}  // namespace
