// JSON fast-path microbench (src/util two-stage parser + JsonWriter).
//
// The contract being checked: the structural-index parser (parse_json) must
// beat the parser it replaced by a set ratio on a knowledge-shaped corpus —
// the two-stage rebuild earns its complexity in throughput or not at all.
// The "old" side of that quotient is the pre-rewrite parser, kept verbatim
// in this file (seed namespace below): deleted code cannot be benchmarked,
// so the bench carries its own copy, compiled with the same flags as the
// fast path. parse_json_scalar — the conformance-FIXED byte-at-a-time
// parser that serves as the differential oracle — is measured and reported
// too, but the gate is old-vs-new.
//
// The corpus mirrors the repo's bulk-parse workload:
// persist::Repository::import_json_file reading the indent-2 files
// export_knowledge_json writes (nested summaries, metric numbers, long
// command/environment/stdout strings, indentation). For each --bytes size
// the harness measures
//   1. parse GB/s, fast / scalar / seed — parse only, tree destruction
//      excluded (it is identical shared work, not parser cost), min over
//      iterations so a background blip cannot sink the ratio,
//   2. dump GB/s into a reused JsonWriter buffer,
// and emits the series as text plus an optional JSON artifact for CI.
//
// Exit codes: 0 ok, 3 the --require-parse-ratio floor was missed.
#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/json_writer.hpp"
#include "src/util/padded_string.hpp"
#include "src/util/rng.hpp"

namespace seed {

// The parser the two-stage rewrite replaced, kept byte-for-byte from the
// pre-rewrite src/util/json.cpp (locale-sensitive isspace/isdigit, one
// take() per character, strtod on a copied token, no container reserves,
// CESU-8 surrogate passthrough). It exists so the old-vs-new ratio below
// measures against the real old cost profile rather than a stand-in; it is
// NOT the differential oracle (that is parse_json_scalar, which shares
// escape/number semantics with the fast path).
using iokc::util::JsonArray;
using iokc::util::JsonObject;
using iokc::util::JsonValue;
using iokc::ParseError;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON at offset " + std::to_string(pos_) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') {
        return JsonValue(std::move(obj));
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') {
        return JsonValue(std::move(arr));
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          const auto [p, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || p != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
          }
          pos_ += 4;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      fail("bad number");
    }
    if (!is_double) {
      std::int64_t value = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && p == token.data() + token.size()) {
        return JsonValue(value);
      }
    }
    const std::string buf{token};
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) {
      fail("bad number");
    }
    if (!std::isfinite(value)) {
      fail("number out of range '" + buf + "'");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace seed

namespace {

using Clock = std::chrono::steady_clock;

const char* kMetrics[6] = {"write_bw_mib", "read_bw_mib", "iops",
                           "open_latency_us", "close_latency_us", "mdtest"};
const char* kPhrases[4] = {
    "posix write phase saturated the ost pool while collective buffering "
    "stayed engaged on the aggregator set; stonewall hit before the "
    "stonewallingTime limit (open latency in µs)",
    "ior -a POSIX -t 1m -b 16m -s 64 -F -C -e -vv -o /mnt/lustre/ior-file "
    "with 8 ranks per node and stripe count -1 across all osts",
    "mdtest-easy-write degraded after the mds failover; metadata operations "
    "queued behind the journal flush and iops fell by half until recovery",
    "read phase hit page cache on the second iteration; figures reflect "
    "cold-cache reruns with posix_fadvise DONTNEED between repetitions"};

/// One knowledge-export-shaped document of roughly `target_bytes` bytes
/// once pretty-printed: nested summaries with metric numbers (integers and
/// doubles), long command/note strings, and literal-bearing tag arrays —
/// the content mix of export_knowledge_json output. Synthesized compact,
/// then re-serialized at indent 2 by the caller to match the on-disk form
/// import_json_file actually reads.
std::string synthesize_document(std::size_t target_bytes,
                                iokc::util::Rng& rng) {
  std::string out;
  out.reserve(target_bytes + 1024);
  out += "{\"command\":\"ior -a POSIX -t 1m -b 16m -s 64\",\"summaries\":[";
  bool first = true;
  while (out.size() < target_bytes) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"operation\":\"";
    out += rng.uniform_int(0, 1) != 0 ? "write" : "read";
    out += "\",\"metrics\":{";
    for (int m = 0; m < 6; ++m) {
      if (m != 0) {
        out += ',';
      }
      out += '"';
      out += kMetrics[m];
      out += "\":";
      if (m % 3 == 0) {
        out += std::to_string(rng.uniform(0.5, 20000.0));
      } else {
        out += std::to_string(rng.uniform_int(1, 1 << 20));
      }
    }
    out += "},\"note\":\"";
    out += kPhrases[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    // Knowledge objects carry the run's environment and a stdout excerpt —
    // long strings (with escaped newlines) are a real part of the corpus,
    // not an artifact of this generator.
    out += "\",\"environment\":\"SLURM_JOB_NUM_NODES=" +
           std::to_string(rng.uniform_int(1, 512));
    out += " LUSTRE_STRIPE_COUNT=-1 LUSTRE_STRIPE_SIZE=1m OMP_NUM_THREADS=8 "
           "ROMIO_HINTS=/etc/romio_hints MPICH_MPIIO_HINTS=*:romio_cb_"
           "write=enable DARSHAN_LOGPATH=/var/log/darshan PATH=/opt/cray/"
           "pe/mpich/8.1/bin:/usr/lib64/mpi/bin:/usr/bin LD_LIBRARY_PATH=/"
           "opt/cray/pe/lib64:/usr/lib64\",";
    out += "\"stdout_tail\":\"access    bw(MiB/s)  IOPS  block(KiB) "
           "xfer(KiB)  open(s)  wr/rd(s)  close(s)  total(s)  iter\\n";
    out += "write     " + std::to_string(rng.uniform(100.0, 20000.0)) +
           "  " + std::to_string(rng.uniform_int(100, 100000));
    out += "  16384      1024     0.00" + std::to_string(rng.uniform_int(10, 99));
    out += "    1.2" + std::to_string(rng.uniform_int(0, 9)) +
           "     0.000" + std::to_string(rng.uniform_int(1, 9));
    out += "    1.3" + std::to_string(rng.uniform_int(0, 9)) + "      0\\n"
           "Max Write: ";
    out += std::to_string(rng.uniform(100.0, 20000.0));
    out += " MiB/sec (" + std::to_string(rng.uniform(100.0, 20971.0)) +
           " MB/sec)\",";
    out += "\"tags\":[\"io500\",\"ior\",null,true,false],";
    // Per-iteration bandwidth series — the iteration-variability data the
    // cycle analyzes (fig5); at indent 2 each sample lands on its own
    // deeply-indented line, the dominant line shape of real exports.
    out += "\"iteration_bw_mib\":[";
    for (int s = 0; s < 32; ++s) {
      if (s != 0) {
        out += ',';
      }
      out += std::to_string(rng.uniform(100.0, 20000.0));
    }
    out += "],";
    out += "\"num_nodes\":" + std::to_string(rng.uniform_int(1, 4096));
    out += '}';
  }
  out += "]}";
  return out;
}

/// Best (minimum) seconds for one run of `fn` over `iterations` tries —
/// the ratio gate compares two best-case runs, so transient background
/// load cannot sink one side of the quotient.
template <typename Fn>
double best_seconds(std::size_t iterations, Fn&& fn) {
  double best = 1e100;
  for (std::size_t i = 0; i < iterations; ++i) {
    const Clock::time_point start = Clock::now();
    fn();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (seconds < best) {
      best = seconds;
    }
  }
  return best;
}

/// Parse-only best time: the tree is destroyed outside the timed window.
/// Destruction is byte-identical shared work, not parser cost.
template <typename ParseFn>
double best_parse_seconds(std::size_t iterations, ParseFn&& parse) {
  double best = 1e100;
  for (std::size_t i = 0; i < iterations; ++i) {
    std::optional<iokc::util::JsonValue> tree;
    const Clock::time_point start = Clock::now();
    tree.emplace(parse());
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!tree->is_object()) {
      std::exit(1);
    }
    tree.reset();  // untimed
    if (seconds < best) {
      best = seconds;
    }
  }
  return best;
}

struct SizeResult {
  std::size_t bytes = 0;
  double parse_fast_gbps = 0;
  double parse_scalar_gbps = 0;
  double parse_seed_gbps = 0;
  double parse_ratio = 0;         // old vs new: seed_seconds / fast_seconds
  double parse_ratio_scalar = 0;  // context: fixed-scalar vs fast
  double dump_gbps = 0;
};

SizeResult measure_size(std::size_t bytes) {
  iokc::util::Rng rng(0x10CC + bytes);
  // Pretty-print at indent 2 — the exact on-disk shape import_json_file
  // parses. dump(2) grows the text ~4/3 (every array sample moves onto its
  // own indented line), so synthesize to 3/4 of target.
  const iokc::util::PaddedString corpus(
      iokc::util::parse_json(synthesize_document(bytes * 3 / 4, rng))
          .dump(2));
  // Iterations scale inversely with size so every point costs roughly the
  // same wall clock; floors keep every size's minimum meaningful on a
  // machine whose co-tenants come and go.
  const std::size_t iters =
      std::max<std::size_t>(6, (128u << 20) / std::max<std::size_t>(bytes, 1));

  SizeResult result;
  result.bytes = corpus.size();
  // Warm both paths once (page in the corpus, size the thread-local index).
  iokc::util::JsonValue tree = iokc::util::parse_json(corpus);
  (void)iokc::util::parse_json_scalar(corpus.view());

  const double fast_s = best_parse_seconds(
      iters, [&] { return iokc::util::parse_json(corpus); });
  const double scalar_s = best_parse_seconds(
      iters, [&] { return iokc::util::parse_json_scalar(corpus.view()); });
  const double seed_s = best_parse_seconds(
      iters, [&] { return seed::parse_json(corpus.view()); });
  result.parse_fast_gbps = static_cast<double>(corpus.size()) / fast_s / 1e9;
  result.parse_scalar_gbps =
      static_cast<double>(corpus.size()) / scalar_s / 1e9;
  result.parse_seed_gbps = static_cast<double>(corpus.size()) / seed_s / 1e9;
  result.parse_ratio = seed_s / fast_s;
  result.parse_ratio_scalar = scalar_s / fast_s;

  iokc::util::JsonWriter writer;
  tree.dump_to(writer);  // size the buffer once
  const std::size_t dump_bytes = writer.size();
  const double dump_s = best_seconds(iters, [&] {
    writer.clear();
    tree.dump_to(writer);
    if (writer.size() != dump_bytes) {
      std::exit(1);
    }
  });
  result.dump_gbps = static_cast<double>(dump_bytes) / dump_s / 1e9;
  return result;
}

std::vector<std::size_t> parse_bytes_list(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::string item =
        csv.substr(begin, comma == std::string::npos ? comma : comma - begin);
    if (!item.empty()) {
      sizes.push_back(static_cast<std::size_t>(std::stoull(item)));
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return sizes;
}

void write_json(const std::string& path,
                const std::vector<SizeResult>& results, double floor_ratio) {
  std::ofstream out(path, std::ios::binary);
  out << "{\n  \"benchmark\": \"micro_json\",\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    out << "    {\"bytes\": " << r.bytes
        << ", \"parse_fast_gbps\": " << r.parse_fast_gbps
        << ", \"parse_scalar_gbps\": " << r.parse_scalar_gbps
        << ", \"parse_seed_gbps\": " << r.parse_seed_gbps
        << ", \"parse_ratio\": " << r.parse_ratio
        << ", \"parse_ratio_scalar\": " << r.parse_ratio_scalar
        << ", \"dump_gbps\": " << r.dump_gbps << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"parse_ratio_floor\": " << floor_ratio << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes = {1u << 20, 64u << 20};  // 1 MB, 64 MB
  std::string json_path;
  double require_ratio = 0;  // 0 = report only
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bytes" && i + 1 < argc) {
      sizes = parse_bytes_list(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--require-parse-ratio" && i + 1 < argc) {
      require_ratio = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: micro_json [--bytes N,N,...] [--json FILE] "
                   "[--require-parse-ratio RATIO]\n");
      return 2;
    }
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "micro_json: --bytes needs at least one size\n");
    return 2;
  }

  std::vector<SizeResult> results;
  for (const std::size_t bytes : sizes) {
    const SizeResult r = measure_size(bytes);
    std::printf("bytes %9zu  parse fast %6.3f GB/s  seed %6.3f GB/s  "
                "scalar %6.3f GB/s  ratio %5.2fx (vs scalar %5.2fx)  |  "
                "dump %6.3f GB/s\n",
                r.bytes, r.parse_fast_gbps, r.parse_seed_gbps,
                r.parse_scalar_gbps, r.parse_ratio, r.parse_ratio_scalar,
                r.dump_gbps);
    results.push_back(r);
  }

  // The headline ratio is taken at the largest corpus, where the structural
  // scan's bandwidth advantage is least polluted by tree-construction cost
  // shared between both parsers.
  const double headline = results.back().parse_ratio;
  std::printf("parse ratio (fast vs seed, %zu bytes): %.2fx\n",
              results.back().bytes, headline);
  if (!json_path.empty()) {
    write_json(json_path, results, require_ratio);
    std::printf("json artifact: %s\n", json_path.c_str());
  }
  if (require_ratio > 0 && headline < require_ratio) {
    std::fprintf(stderr,
                 "micro_json: parse-ratio floor missed: %.2fx < %.2fx\n",
                 headline, require_ratio);
    return 3;
  }
  return 0;
}
