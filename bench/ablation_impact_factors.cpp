// Ablation benches for the paper's Fig. 3 ("I/O performance impact factors"):
// each sweep isolates one factor the knowledge cycle is supposed to make
// visible — transfer size, I/O interface, file layout (shared vs
// file-per-process vs collective), stripe width, and task scaling. The rows
// are produced by real JUBE sweeps through the whole cycle (generate ->
// extract -> persist), then read back from the knowledge database, so the
// bench doubles as an end-to-end pipeline exercise.
//
// With `--jobs N` (N > 1) every sweep runs twice — serially and on N worker
// threads — and the two reports are byte-compared: parallel execution must
// not change a single table cell. The bench exits nonzero on any difference
// and reports the wall-clock speedup.
#include <cstdio>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "src/cycle/cycle.hpp"
#include "src/fs/stripe.hpp"
#include "src/usage/config_generator.hpp"
#include "src/util/error.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace {

/// Runs a one-parameter JUBE sweep and renders mean write/read bandwidth per
/// value, pulled back out of the repository.
std::string run_sweep(const std::string& title,
                      const std::string& base_command,
                      const std::string& option, const std::string& parameter,
                      const std::vector<std::string>& values,
                      iokc::cycle::SimEnvironment& env,
                      const std::string& workspace, int jobs) {
  iokc::cycle::KnowledgeCycle cycle(
      env, workspace + "/" + parameter,
      iokc::persist::RepoTarget::parse("mem:"));
  cycle.set_parallelism(jobs);
  const iokc::jube::JubeBenchmarkConfig config =
      iokc::usage::generate_jube_config(
          parameter + "-sweep", base_command,
          {{option, iokc::usage::SweepDimension{parameter, values}}});
  cycle.generate(config);
  cycle.extract_and_persist();

  iokc::util::TextTable table;
  table.set_header({parameter, "write MiB/s", "read MiB/s"});
  table.set_alignment({iokc::util::Align::kLeft, iokc::util::Align::kRight,
                       iokc::util::Align::kRight});
  const auto ids = cycle.stored_knowledge_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const iokc::knowledge::Knowledge k =
        cycle.repository().load_knowledge(ids[i]);
    const auto* write = k.find_summary("write");
    const auto* read = k.find_summary("read");
    table.add_row({values[i],
                   iokc::util::format_double(
                       write != nullptr ? write->mean_bw_mib : 0.0, 1),
                   iokc::util::format_double(
                       read != nullptr ? read->mean_bw_mib : 0.0, 1)});
  }
  return "--- " + title + " ---\n" + table.render() + "\n";
}

/// Every section of the report, produced end-to-end with `jobs` worker
/// threads. Identical output for any job count is the whole point.
std::string run_report(const std::string& workspace, int jobs) {
  // Fresh workspace: stale outputs from earlier invocations must not be
  // re-extracted.
  std::filesystem::remove_all(workspace);
  std::string report;

  {
    iokc::cycle::SimEnvironment env;
    report += run_sweep(
        "transfer size (POSIX, file-per-process, 40 tasks)",
        "ior -a posix -b 4m -t 2m -s 8 -F -C -i 1 -N 40 -o /scratch/ts",
        "-t", "transfer", {"64k", "256k", "1m", "2m", "4m"}, env, workspace,
        jobs);
  }
  {
    // Small transfers expose the per-call software cost of each layer.
    iokc::cycle::SimEnvironment env;
    report += run_sweep(
        "I/O interface (64k transfers, file-per-process)",
        "ior -a posix -b 4m -t 64k -s 4 -F -C -i 1 -N 40 -o /scratch/api",
        "-a", "api", {"POSIX", "MPIIO", "HDF5"}, env, workspace, jobs);
  }
  {
    // Starting at two nodes: below that, IOR's -C cannot shift ranks off
    // the writing node and re-reads are (faithfully) served by the page
    // cache — a caveat of the real benchmark too.
    iokc::cycle::SimEnvironment env;
    report += run_sweep(
        "task scaling (POSIX, file-per-process)",
        "ior -a posix -b 4m -t 2m -s 8 -F -C -i 1 -N 40 -o /scratch/n",
        "-N", "tasks", {"40", "80", "160", "320"}, env, workspace, jobs);
  }

  // File layout: shared vs file-per-process vs collective (small strided
  // records — where two-phase I/O pays off).
  {
    report += "--- file layout (MPIIO, 47008-byte records, 40 tasks) ---\n";
    iokc::util::TextTable table;
    table.set_header({"layout", "write MiB/s", "read MiB/s"});
    table.set_alignment({iokc::util::Align::kLeft, iokc::util::Align::kRight,
                         iokc::util::Align::kRight});
    const std::pair<const char*, const char*> layouts[] = {
        {"shared independent",
         "ior -a mpiio -b 47008 -t 47008 -s 40 -C -i 1 -N 40 -o /scratch/sh"},
        {"shared collective",
         "ior -a mpiio -c -b 47008 -t 47008 -s 40 -C -i 1 -N 40 -o "
         "/scratch/co"},
        {"file-per-process",
         "ior -a mpiio -b 47008 -t 47008 -s 40 -F -C -i 1 -N 40 -o "
         "/scratch/fp"},
    };
    for (const auto& [label, command] : layouts) {
      iokc::cycle::SimEnvironment env;
      iokc::cycle::KnowledgeCycle cycle(
          env, workspace + "/layout_" + label[0] + label[7],
          iokc::persist::RepoTarget::parse("mem:"));
      cycle.set_parallelism(jobs);
      cycle.generate_command("layout", command);
      cycle.extract_and_persist();
      const iokc::knowledge::Knowledge k = cycle.repository().load_knowledge(
          cycle.stored_knowledge_ids().front());
      table.add_row(
          {label,
           iokc::util::format_double(k.find_summary("write")->mean_bw_mib, 1),
           iokc::util::format_double(k.find_summary("read")->mean_bw_mib,
                                     1)});
    }
    report += table.render() + "\n";
  }

  // Aggregator count (MPI-IO hint cb_nodes): the SCTuner-style tunable of
  // Fig. 3. It matters when the aggregator NICs, not the storage back-end,
  // are the bottleneck — modelled here as a 10GbE commodity cluster.
  {
    iokc::cycle::SimEnvironmentConfig config;
    config.cluster.node.nic_bytes_per_sec = 1.2e9;  // 10GbE
    config.pfs.default_stripe.num_targets = 12;     // back-end outruns a NIC
    iokc::cycle::SimEnvironment env(config);
    report += run_sweep(
        "aggregators (collective MPIIO on a 10GbE cluster, 40 tasks)",
        "ior -a mpiio -c -b 1m -t 1m -s 8 -C -w -i 1 -N 40 "
        "-O romio_cb_write=enable -o /scratch/agg",
        "-O", "hints",
        {"romio_cb_write=enable;cb_nodes=1;cb_buffer_size=16777216",
         "romio_cb_write=enable;cb_nodes=2;cb_buffer_size=16777216",
         "romio_cb_write=enable;cb_nodes=0;cb_buffer_size=16777216"},
        env, workspace, jobs);
  }

  // Stripe width: not an IOR option but a file-system setting, so this sweep
  // reconfigures the default stripe between cycles.
  {
    report += "--- stripe width (PFS default stripe, 2m transfers, 40 "
              "tasks, shared file) ---\n";
    iokc::util::TextTable table;
    table.set_header({"stripe targets", "write MiB/s", "read MiB/s"});
    table.set_alignment({iokc::util::Align::kRight, iokc::util::Align::kRight,
                         iokc::util::Align::kRight});
    for (const std::uint32_t width : {1u, 2u, 4u, 8u, 12u}) {
      iokc::cycle::SimEnvironmentConfig config;
      config.pfs.default_stripe.num_targets = width;
      iokc::cycle::SimEnvironment env(config);
      iokc::cycle::KnowledgeCycle cycle(
          env, workspace + "/stripe" + std::to_string(width),
          iokc::persist::RepoTarget::parse("mem:"));
      cycle.set_parallelism(jobs);
      cycle.generate_command(
          "stripe", "ior -a mpiio -b 4m -t 2m -s 8 -C -i 1 -N 40 -o "
                    "/scratch/st");
      cycle.extract_and_persist();
      const iokc::knowledge::Knowledge k = cycle.repository().load_knowledge(
          cycle.stored_knowledge_ids().front());
      table.add_row(
          {std::to_string(width),
           iokc::util::format_double(k.find_summary("write")->mean_bw_mib, 1),
           iokc::util::format_double(k.find_summary("read")->mean_bw_mib,
                                     1)});
    }
    report += table.render() + "\n";
  }
  return report;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      try {
        jobs = static_cast<int>(iokc::util::parse_i64(argv[++i]));
      } catch (const iokc::ParseError&) {
        jobs = -1;
      }
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs needs a value >= 1\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--jobs <n>]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== Ablations: Fig. 3 I/O performance impact factors ===\n\n");

  const auto serial_start = std::chrono::steady_clock::now();
  const std::string serial =
      run_report("bench_artifacts/ablation_workspace/serial", 1);
  const double serial_sec = seconds_since(serial_start);
  std::printf("%s", serial.c_str());
  std::printf("expected shapes: bandwidth rises with transfer size and "
              "stripe width until the\nback-end saturates; POSIX <= MPIIO "
              "overhead < HDF5 overhead; collective buffering\nwins on tiny "
              "shared-file records; task scaling saturates at the storage "
              "limit.\n");

  if (jobs > 1) {
    const auto parallel_start = std::chrono::steady_clock::now();
    const std::string parallel =
        run_report("bench_artifacts/ablation_workspace/parallel", jobs);
    const double parallel_sec = seconds_since(parallel_start);
    std::printf("\n=== parallel check (--jobs %d) ===\n", jobs);
    if (parallel != serial) {
      std::printf("FAIL: parallel report differs from serial report\n");
      return 1;
    }
    std::printf("reports byte-identical: yes\n");
    std::printf("serial %.3fs, parallel %.3fs, speedup %.2fx\n", serial_sec,
                parallel_sec,
                parallel_sec > 0.0 ? serial_sec / parallel_sec : 0.0);
  }
  return 0;
}
