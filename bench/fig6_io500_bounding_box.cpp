// Reproduces Fig. 6 of the paper: "Anomaly detection through IO500 boundary
// testcases". The IO500 benchmark runs with 40 cores on the simulated
// FUCHS-CSC system several times; one run executes with a silently degraded
// node. The harness prints the boxplot statistics of the four ior boundary
// test cases (the series the figure plots), builds the one-dimensional
// bounding box of Liem et al. from ior-easy / ior-hard, flags the degraded
// run, and writes the boxplot chart to bench_artifacts/.
//
// Paper observations to reproduce in shape: "the variance for ior-easy write
// and ior-hard write is quite large, the throughput for ior-easy read and
// ior-hard read remains the same" — except for the bad run, whose cause "could
// be a broken node".
#include <cstdio>

#include <filesystem>
#include <string>
#include <vector>

#include "src/analysis/anomaly.hpp"
#include "src/analysis/bounding_box.hpp"
#include "src/analysis/charts.hpp"
#include "src/analysis/explorer.hpp"
#include "src/cycle/cycle.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace {

constexpr const char* kCommand =
    "io500 -N 40 -o /scratch/io500 --easy-bytes 128m --hard-bytes 6m "
    "--easy-files 150 --hard-files 75";

iokc::knowledge::Io500Knowledge run_io500(std::uint64_t seed, bool degraded) {
  iokc::cycle::SimEnvironmentConfig config;
  config.seed = seed;
  config.cluster.degraded_rate_fraction = 0.06;
  // Run-to-run write-side state: RAID write-back caches, flush pressure, and
  // rebuild activity make *write* throughput vary between runs while reads
  // stay steady — the asymmetry Fig. 6 shows. Each run draws its targets'
  // write rates from a seeded distribution; read rates are untouched.
  iokc::util::Rng rng(seed * 0x9E37u + 7);
  for (auto& target : config.pfs.targets) {
    target.write_bytes_per_sec *= rng.uniform(0.72, 1.05);
  }
  iokc::cycle::SimEnvironment env(config);
  if (degraded) {
    // Node 1 limps along at 6% NIC rate; the scheduler cannot tell.
    env.cluster().set_health(1, iokc::sim::NodeHealth::kDegraded);
  }
  iokc::cycle::KnowledgeCycle cycle(
      env, "bench_artifacts/fig6_workspace/run" + std::to_string(seed),
      iokc::persist::RepoTarget::parse("mem:"));
  cycle.generate_command("io500", kCommand);
  cycle.extract_and_persist();
  return cycle.repository().load_io500(cycle.stored_io500_ids().front());
}

}  // namespace

int main() {
  // Fresh workspace: stale outputs from earlier invocations must not be
  // re-extracted.
  std::filesystem::remove_all("bench_artifacts/fig6_workspace");
  std::printf("=== Fig. 6: anomaly detection through IO500 boundary test "
              "cases ===\n");
  std::printf("command: %s (40 cores on FUCHS-CSC-sim)\n\n", kCommand);

  // Five healthy runs plus one with a silently degraded node.
  std::vector<iokc::knowledge::Io500Knowledge> runs;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    runs.push_back(run_io500(seed * 101, /*degraded=*/false));
  }
  const std::size_t bad_index = runs.size();
  runs.push_back(run_io500(606, /*degraded=*/true));

  // Store everything in one repository so the explorer can aggregate.
  iokc::persist::KnowledgeRepository repo;
  std::vector<std::int64_t> ids;
  for (const auto& run : runs) {
    ids.push_back(repo.store(run));
  }

  // Per-run boundary-case table (the data behind the figure).
  static constexpr const char* kCases[] = {"ior-easy-write", "ior-hard-write",
                                           "ior-easy-read", "ior-hard-read"};
  iokc::util::TextTable table;
  table.set_header({"run", "ior-easy-write", "ior-hard-write",
                    "ior-easy-read", "ior-hard-read", "score"});
  table.set_alignment(std::vector<iokc::util::Align>(
      6, iokc::util::Align::kRight));
  for (std::size_t r = 0; r < runs.size(); ++r) {
    std::vector<std::string> row{(r == bad_index ? "#" : "") +
                                 std::to_string(r + 1)};
    for (const char* name : kCases) {
      row.push_back(iokc::util::format_double(
          runs[r].find_testcase(name)->value, 4));
    }
    row.push_back(iokc::util::format_double(runs[r].score_total, 3));
    table.add_row(std::move(row));
  }
  std::printf("%s  (# = run with the silently degraded node; GiB/s)\n\n",
              table.render().c_str());

  // Boxplot statistics across runs — what the figure's boxes show.
  iokc::analysis::KnowledgeExplorer explorer(repo);
  const iokc::analysis::BoxplotChart chart =
      explorer.io500_boundary_boxplot(ids);
  std::printf("boxplot per boundary case (GiB/s):\n");
  for (const auto& [name, box] : chart.boxes) {
    std::printf("  %-16s min %7.4f  q1 %7.4f  med %7.4f  q3 %7.4f  max "
                "%7.4f  outliers %zu\n",
                name.c_str(), box.min, box.q1, box.median, box.q3, box.max,
                box.outliers.size());
  }

  // Paper-vs-measured shape summary.
  const auto rel_spread = [&chart](std::size_t index) {
    const auto& box = chart.boxes[index].second;
    return box.median > 0.0 ? (box.max - box.min) / box.median : 0.0;
  };
  std::printf("\npaper:    write cases show large variance; read cases stay "
              "flat except the degraded run\n");
  std::printf("measured: rel. spread  easy-write %.2f | hard-write %.2f | "
              "easy-read %.2f | hard-read %.2f\n\n",
              rel_spread(0), rel_spread(1), rel_spread(2), rel_spread(3));

  // Bounding box from a healthy run; the degraded run violates it.
  const iokc::analysis::BoundingBox2D box =
      iokc::analysis::make_bounding_box(runs.front());
  std::printf("%s", iokc::analysis::render_bounding_box(box).c_str());
  const iokc::analysis::AnomalyReport comparison =
      iokc::analysis::compare_io500_runs(runs.front(), runs[bad_index], 0.25);
  std::printf("\ncross-run comparison (healthy reference vs degraded run):\n%s",
              comparison.render().c_str());

  iokc::analysis::save_svg("bench_artifacts/fig6_boundary_boxplot.svg",
                           iokc::analysis::render_svg_boxplot(chart));
  std::printf("\nchart: bench_artifacts/fig6_boundary_boxplot.svg\n");
  return 0;
}
