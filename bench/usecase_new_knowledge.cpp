// Reproduces the paper's Example I (Section V-E1): "New Knowledge
// Generation". The stored Fig. 5 command is loaded from the database,
// modified through the config generator ("create configuration"), and
// re-executed — three turns of the knowledge cycle. The harness prints one
// row per generation: the command that ran and the write/read bandwidth the
// new knowledge object records, demonstrating that knowledge begets
// knowledge ("this process can be repeated as often as required").
#include <cstdio>

#include <filesystem>
#include <string>

#include "src/cycle/cycle.hpp"
#include "src/usage/config_generator.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

int main() {
  // Fresh workspace: stale outputs from earlier invocations must not be
  // re-extracted.
  std::filesystem::remove_all("bench_artifacts/newknow_workspace");
  std::printf("=== Use case: new knowledge generation (paper Example I) "
              "===\n\n");
  iokc::cycle::SimEnvironment env;
  iokc::cycle::KnowledgeCycle cycle(
      env, "bench_artifacts/newknow_workspace",
      iokc::persist::RepoTarget::parse("mem:"));

  // Generation 0: the paper's original command.
  cycle.generate_command(
      "gen", "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 3 -N 80 "
             "-o /scratch/fuchs/zhuz/test80 -k");
  cycle.extract_and_persist();

  // Generations 1..3: select the latest stored command, modify, re-run.
  struct Turn {
    const char* description;
    iokc::usage::IorOverrides overrides;
  };
  Turn turns[3];
  turns[0].description = "halve transfer size (-t 1m)";
  turns[0].overrides.transfer_size = 1ull << 20;
  turns[1].description = "switch to 40 tasks (-N 40)";
  turns[1].overrides.num_tasks = 40;
  turns[2].description = "collective shared file (-c, no -F)";
  turns[2].overrides.collective = true;
  turns[2].overrides.file_per_process = false;

  iokc::util::TextTable table;
  table.set_header({"gen", "modification", "command", "write MiB/s",
                    "read MiB/s"});
  table.set_alignment({iokc::util::Align::kRight, iokc::util::Align::kLeft,
                       iokc::util::Align::kLeft, iokc::util::Align::kRight,
                       iokc::util::Align::kRight});

  auto add_row = [&table, &cycle](int generation, const char* description) {
    const std::int64_t id = cycle.stored_knowledge_ids().back();
    const iokc::knowledge::Knowledge k =
        cycle.repository().load_knowledge(id);
    const auto* write = k.find_summary("write");
    const auto* read = k.find_summary("read");
    table.add_row({std::to_string(generation), description, k.command,
                   iokc::util::format_double(
                       write != nullptr ? write->mean_bw_mib : 0.0, 1),
                   iokc::util::format_double(
                       read != nullptr ? read->mean_bw_mib : 0.0, 1)});
  };
  add_row(0, "paper's original command");

  for (int generation = 0; generation < 3; ++generation) {
    // "First, the previously applied command is selected and then loaded
    // from the corresponding configuration..."
    const auto commands = cycle.repository().list_commands();
    const std::string& stored = commands.back().second;
    // "...and can be modified as required. Afterward, the new command can be
    // created by clicking 'create configuration'."
    iokc::usage::IorOverrides overrides = turns[generation].overrides;
    overrides.test_file =
        "/scratch/fuchs/zhuz/gen" + std::to_string(generation + 1);
    const std::string new_command =
        iokc::usage::create_configuration(stored, overrides);
    // "With the just created configuration, a new benchmark run can be
    // started ... and thus new knowledge can be generated."
    cycle.generate_command("gen", new_command);
    cycle.extract_and_persist();
    add_row(generation + 1, turns[generation].description);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("knowledge objects in the database after the loop: %zu\n",
              cycle.repository().knowledge_ids().size());
  return 0;
}
