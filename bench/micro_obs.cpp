// Overhead benchmark for the observability layer (src/obs).
//
// The contract being checked: with no Observability installed (the default),
// every instrumentation site is one relaxed atomic load plus a branch, so
// instrumented code must run within ~2% of what it would cost with the hooks
// deleted. This harness measures
//   1. the absolute per-call cost of the disabled and enabled hooks,
//   2. a compute-bound hot loop with and without a disabled count() call —
//      the "<2% with tracing off" acceptance number, and
//   3. a full parallel sweep cycle with observability off vs on — the
//      real-world price of --trace/--metrics when you do enable them.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "src/cycle/cycle.hpp"
#include "src/obs/observability.hpp"
#include "src/obs/span.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The sweep every end-to-end measurement runs: 8 work packages on 4 threads
/// through generation, extraction, and persistence.
double run_sweep_cycle(const std::filesystem::path& workspace) {
  iokc::jube::JubeBenchmarkConfig config;
  config.name = "sweep";
  config.space.add_csv("transfer", "256k,512k,1m,2m");
  config.space.add_csv("tasks", "4,8");
  config.steps.push_back(iokc::jube::JubeStep{
      "run", "ior -a posix -b 2m -t $transfer -s 1 -F -w -i 2 -N $tasks "
             "-o /scratch/p_$transfer"});

  const Clock::time_point start = Clock::now();
  iokc::cycle::SimEnvironment env;
  iokc::cycle::KnowledgeCycle cycle(env, workspace,
                                    iokc::persist::RepoTarget::parse("mem:"));
  cycle.set_parallelism(4);
  cycle.generate(config);
  cycle.extract_and_persist();
  const double elapsed = seconds_since(start);
  std::filesystem::remove_all(workspace);
  return elapsed;
}

/// A compute-bound loop; `instrumented` adds one disabled-path count() per
/// iteration, which is exactly what instrumented pipeline code pays when no
/// --trace/--metrics session is installed.
std::uint64_t hot_loop(std::uint64_t iterations, bool instrumented,
                       double& elapsed) {
  std::uint64_t acc = 0x9e3779b97f4a7c15ULL;
  const Clock::time_point start = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    acc ^= acc << 13;
    acc ^= acc >> 7;
    acc ^= acc << 17;
    acc += i;
    if (instrumented) {
      iokc::obs::count("bench.hot_loop");
    }
  }
  elapsed = seconds_since(start);
  return acc;
}

double mean(const double* samples, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += samples[i];
  }
  return total / n;
}

}  // namespace

int main() {
  constexpr std::uint64_t kHookCalls = 20'000'000;
  constexpr int kSweepRepeats = 10;

  const std::filesystem::path workspace =
      std::filesystem::temp_directory_path() /
      ("iokc_micro_obs_" + std::to_string(::getpid()));

  std::printf("micro_obs: observability layer overhead\n");
  std::printf("  hooks per measurement: %llu; sweep repeats: %d\n\n",
              static_cast<unsigned long long>(kHookCalls), kSweepRepeats);

  // 1. Absolute hook cost, disabled then enabled.
  double disabled_count_s = 0.0;
  {
    Clock::time_point start = Clock::now();
    for (std::uint64_t i = 0; i < kHookCalls; ++i) {
      iokc::obs::count("bench.calls");
    }
    disabled_count_s = seconds_since(start);
  }
  double enabled_count_s = 0.0;
  double enabled_span_s = 0.0;
  {
    iokc::obs::Observability obs;
    iokc::obs::ScopedObservability scoped(obs);
    Clock::time_point start = Clock::now();
    for (std::uint64_t i = 0; i < kHookCalls; ++i) {
      iokc::obs::count("bench.calls");
    }
    enabled_count_s = seconds_since(start);
    constexpr std::uint64_t kSpans = 1'000'000;
    start = Clock::now();
    for (std::uint64_t i = 0; i < kSpans; ++i) {
      iokc::obs::Span span("bench", {.category = "bench"});
    }
    enabled_span_s = seconds_since(start);
    std::printf(
        "  hook cost: count() disabled %.2f ns/call, enabled %.1f ns/call; "
        "Span enabled %.0f ns/pair\n",
        1e9 * disabled_count_s / static_cast<double>(kHookCalls),
        1e9 * enabled_count_s / static_cast<double>(kHookCalls),
        1e9 * enabled_span_s / 1e6);
  }

  // 2. The acceptance number: a hot loop with a disabled count() per
  // iteration vs the same loop bare. Interleaved to cancel drift.
  double base_s[5];
  double inst_s[5];
  std::uint64_t sink = 0;
  for (int round = 0; round < 5; ++round) {
    sink ^= hot_loop(kHookCalls, false, base_s[round]);
    sink ^= hot_loop(kHookCalls, true, inst_s[round]);
  }
  const double base = mean(base_s, 5);
  const double inst = mean(inst_s, 5);
  std::printf(
      "  hot loop (%llu iters): bare %.1f ms, +disabled count() %.1f ms, "
      "delta %+.2f%%  (target < 2%%)\n",
      static_cast<unsigned long long>(kHookCalls), 1e3 * base, 1e3 * inst,
      100.0 * (inst - base) / base);

  // 3. End-to-end: the sweep cycle with observability off vs on.
  double off_s[kSweepRepeats];
  double on_s[kSweepRepeats];
  run_sweep_cycle(workspace);  // warm-up, not measured
  for (int round = 0; round < kSweepRepeats; ++round) {
    off_s[round] = run_sweep_cycle(workspace);
    iokc::obs::Observability obs;
    iokc::obs::ScopedObservability scoped(obs);
    on_s[round] = run_sweep_cycle(workspace);
  }
  const double off = mean(off_s, kSweepRepeats);
  const double on = mean(on_s, kSweepRepeats);
  std::printf(
      "  sweep cycle (8 wp, jobs=4): obs off %.1f ms, obs on %.1f ms, "
      "delta %+.2f%%\n",
      1e3 * off, 1e3 * on, 100.0 * (on - off) / off);

  return sink == 42 ? 1 : 0;  // keep the loop results observable
}
