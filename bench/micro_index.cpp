// Index scaling microbench (src/db secondary indexes + query planner).
//
// The contract being checked: an indexed point lookup costs O(log N + group)
// while the scan plan costs O(N), so between 1k and 100k rows the indexed
// point latency must stay within a flat budget (--require-flat, default off)
// while the scan latency grows roughly linearly. The harness measures, at
// each --rows scale,
//   1. point lookups on the ordered composite (benchmark, num_nodes) with
//      planning on (index) and off (scan),
//   2. bounded range queries over the same index, both modes,
// and emits the series as text plus an optional JSON artifact for CI.
//
// Exit codes: 0 ok, 3 the --require-flat budget was exceeded.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/db/database.hpp"

namespace {

using Clock = std::chrono::steady_clock;

const char* kBenchmarks[4] = {"IOR", "IO500", "mdtest", "fio"};

/// Builds the performances-shaped table with the repository's index pair.
/// Every (benchmark, num_nodes) key identifies one row, so point-lookup
/// result sizes stay constant across scales and the measured growth is the
/// access path's, not the materialization's. Bulk load: multi-row INSERTs
/// inside explicit transactions, no journal attached.
iokc::db::Database build_table(std::size_t rows) {
  iokc::db::Database db;
  db.execute(
      "CREATE TABLE performances (id INTEGER PRIMARY KEY, command TEXT NOT "
      "NULL, benchmark TEXT, num_nodes INTEGER, bw REAL)");
  db.execute(
      "CREATE INDEX idx_perf_bench_nodes ON performances "
      "(benchmark, num_nodes)");
  db.execute(
      "CREATE INDEX idx_perf_command ON performances (command) USING HASH");
  constexpr std::size_t kBatch = 1000;
  std::size_t inserted = 0;
  while (inserted < rows) {
    const std::size_t end = std::min(rows, inserted + kBatch);
    std::string sql =
        "INSERT INTO performances (command, benchmark, num_nodes, bw) VALUES ";
    for (std::size_t i = inserted; i < end; ++i) {
      if (i != inserted) {
        sql += ", ";
      }
      sql += "('ior -t " + std::to_string(i % 64) + "k', '" +
             kBenchmarks[i % 4] + "', " + std::to_string(i / 4) + ", " +
             std::to_string(static_cast<double>(i % 97)) + ")";
    }
    db.begin();
    db.execute(sql);
    db.commit();
    inserted = end;
  }
  return db;
}

/// Mean microseconds per execution of `queries`, cycling through them.
double mean_query_us(iokc::db::Database& db,
                     const std::vector<std::string>& queries,
                     std::size_t iterations) {
  std::size_t sink = 0;
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    sink += db.execute(queries[i % queries.size()]).size();
  }
  const double total =
      std::chrono::duration<double, std::micro>(Clock::now() - start).count();
  if (sink == 0) {
    std::fprintf(stderr, "micro_index: queries returned no rows\n");
    std::exit(1);
  }
  return total / static_cast<double>(iterations);
}

struct ScaleResult {
  std::size_t rows = 0;
  double point_indexed_us = 0;
  double point_scan_us = 0;
  double range_indexed_us = 0;
  double range_scan_us = 0;
};

ScaleResult measure_scale(std::size_t rows) {
  iokc::db::Database db = build_table(rows);
  // Spread the probed keys across the table so no cache line gets lucky.
  std::vector<std::string> points;
  std::vector<std::string> ranges;
  for (int probe = 0; probe < 16; ++probe) {
    const std::size_t i = (rows / 17) * static_cast<std::size_t>(probe + 1);
    points.push_back("SELECT * FROM performances WHERE benchmark = '" +
                     std::string(kBenchmarks[i % 4]) + "' AND num_nodes = " +
                     std::to_string(i / 4));
    ranges.push_back("SELECT * FROM performances WHERE benchmark = '" +
                     std::string(kBenchmarks[i % 4]) + "' AND num_nodes >= " +
                     std::to_string(i / 4) + " AND num_nodes <= " +
                     std::to_string(i / 4 + 64));
  }
  // Scan iterations shrink with N (and are capped) so the harness stays
  // tractable from 1k to 1M rows; indexed iterations stay fixed (they are
  // cheap by construction).
  const std::size_t indexed_iters = 512;
  const std::size_t scan_iters = std::clamp<std::size_t>(
      1'000'000 / std::max<std::size_t>(rows, 1), 3, 200);
  ScaleResult result;
  result.rows = rows;
  db.set_index_planning(true);
  result.point_indexed_us = mean_query_us(db, points, indexed_iters);
  result.range_indexed_us = mean_query_us(db, ranges, indexed_iters);
  db.set_index_planning(false);
  result.point_scan_us = mean_query_us(db, points, scan_iters);
  result.range_scan_us = mean_query_us(db, ranges, scan_iters);
  return result;
}

std::vector<std::size_t> parse_rows_list(const std::string& csv) {
  std::vector<std::size_t> rows;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::string item =
        csv.substr(begin, comma == std::string::npos ? comma : comma - begin);
    if (!item.empty()) {
      rows.push_back(static_cast<std::size_t>(std::stoull(item)));
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return rows;
}

void write_json(const std::string& path,
                const std::vector<ScaleResult>& results, double flat_ratio) {
  std::ofstream out(path, std::ios::binary);
  out << "{\n  \"benchmark\": \"micro_index\",\n  \"scales\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    out << "    {\"rows\": " << r.rows
        << ", \"point_indexed_us\": " << r.point_indexed_us
        << ", \"point_scan_us\": " << r.point_scan_us
        << ", \"range_indexed_us\": " << r.range_indexed_us
        << ", \"range_scan_us\": " << r.range_scan_us << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"point_indexed_flat_ratio\": " << flat_ratio << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> rows = {1000, 100000};
  std::string json_path;
  double require_flat = 0;  // 0 = report only
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rows" && i + 1 < argc) {
      rows = parse_rows_list(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--require-flat" && i + 1 < argc) {
      require_flat = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: micro_index [--rows N,N,...] [--json FILE] "
                   "[--require-flat RATIO]\n");
      return 2;
    }
  }
  if (rows.size() < 2) {
    std::fprintf(stderr, "micro_index: --rows needs at least two scales\n");
    return 2;
  }

  std::vector<ScaleResult> results;
  for (const std::size_t scale : rows) {
    const ScaleResult r = measure_scale(scale);
    std::printf("rows %8zu  point indexed %9.2f us  scan %12.2f us  |  "
                "range indexed %9.2f us  scan %12.2f us\n",
                r.rows, r.point_indexed_us, r.point_scan_us,
                r.range_indexed_us, r.range_scan_us);
    results.push_back(r);
  }

  // The headline ratio: indexed point latency at the largest scale over the
  // smallest. O(log N) growth between 1k and 100k is ~1.7x on the log term
  // alone, comfortably inside a 2x budget; a scan regression shows up as
  // ~100x and cannot hide.
  const double flat_ratio =
      results.back().point_indexed_us / results.front().point_indexed_us;
  std::printf("point_indexed flat ratio (%zu -> %zu rows): %.2fx\n",
              results.front().rows, results.back().rows, flat_ratio);
  if (!json_path.empty()) {
    write_json(json_path, results, flat_ratio);
    std::printf("json artifact: %s\n", json_path.c_str());
  }
  if (require_flat > 0 && flat_ratio > require_flat) {
    std::fprintf(stderr,
                 "micro_index: flat budget exceeded: %.2fx > %.2fx\n",
                 flat_ratio, require_flat);
    return 3;
  }
  return 0;
}
