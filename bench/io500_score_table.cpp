// Regenerates the full IO500 result listing the paper's Section V-A refers to
// ("the IO500 benchmark has also been integrated with eleven additional test
// cases"): all twelve [RESULT] lines plus the score triple, as produced by
// the io500-sim engine, extracted back from its text output, and rendered by
// the knowledge explorer's IO500 viewer.
#include <cstdio>

#include <filesystem>

#include "src/analysis/explorer.hpp"
#include "src/cycle/cycle.hpp"

int main() {
  // Fresh workspace: stale outputs from earlier invocations must not be
  // re-extracted.
  std::filesystem::remove_all("bench_artifacts/io500_workspace");
  std::printf("=== IO500 test-case table (40 cores on FUCHS-CSC-sim) ===\n\n");
  iokc::cycle::SimEnvironment env;
  iokc::cycle::KnowledgeCycle cycle(
      env, "bench_artifacts/io500_workspace",
      iokc::persist::RepoTarget::parse("mem:"));
  cycle.generate_command(
      "io500",
      "io500 -N 40 -o /scratch/io500 --easy-bytes 128m --hard-bytes 6m "
      "--easy-files 150 --hard-files 75");
  cycle.extract_and_persist();

  const std::int64_t id = cycle.stored_io500_ids().front();
  std::printf("%s\n",
              cycle.explorer().render_io500_view(id).c_str());

  const iokc::knowledge::Io500Knowledge run =
      cycle.repository().load_io500(id);
  std::printf("shape checks (paper-consistent orderings):\n");
  auto value = [&run](const char* name) {
    return run.find_testcase(name)->value;
  };
  std::printf("  ior-easy-write / ior-hard-write  = %6.1fx  (easy >> hard)\n",
              value("ior-easy-write") / value("ior-hard-write"));
  std::printf("  ior-easy-read  / ior-hard-read   = %6.1fx\n",
              value("ior-easy-read") / value("ior-hard-read"));
  std::printf("  mdtest-easy-write / hard-write   = %6.1fx\n",
              value("mdtest-easy-write") / value("mdtest-hard-write"));
  std::printf("  mdtest stat > create             = %s\n",
              value("mdtest-easy-stat") > value("mdtest-easy-write") ? "yes"
                                                                     : "no");
  const iokc::analysis::Chart chart =
      cycle.explorer().io500_testcase_chart(id);
  iokc::analysis::save_svg("bench_artifacts/io500_testcases.svg",
                           iokc::analysis::render_svg_bar(chart));
  std::printf("\nchart: bench_artifacts/io500_testcases.svg\n");
  return 0;
}
