// Reproduces Fig. 5 of the paper: "Performance analysis through multiple
// iterations" — the exact experiment of Section V-E1/V-E2. The command
//
//   ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o <file> -k
//
// runs with 80 tasks on 4 nodes of the simulated FUCHS-CSC system. An
// interference burst (a competing job on the shared storage back-end) is
// injected during iteration 2's write phase, reproducing the paper's
// observation: "the throughput for iteration 2 is 1251 MiB, which is less
// than half the average throughput" of ~2850 MiB/s.
//
// The harness prints the per-iteration series the figure plots (throughput
// and number of ops for writes and reads), the supporting metrics the paper
// names (closeTime, latency, totalTime, wrRdTime), the anomaly-detection
// verdict, and writes the corresponding charts to bench_artifacts/.
#include <cstdio>

#include <filesystem>
#include <string>
#include <vector>

#include "src/analysis/anomaly.hpp"
#include "src/analysis/charts.hpp"
#include "src/cycle/cycle.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace {

constexpr const char* kCommand =
    "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -N 80 "
    "-o /scratch/fuchs/zhuz/test80 -k";

/// Runs the command in a fresh environment and returns the knowledge object.
/// Each pass gets its own host workspace so the extraction phase cannot pick
/// up a previous pass's output.
iokc::knowledge::Knowledge run_once(
    const iokc::sim::InterferenceSchedule* windows, const char* workspace) {
  iokc::cycle::SimEnvironment env;
  if (windows != nullptr) {
    for (const auto& window : windows->windows()) {
      env.interference().add_window(window);
    }
  }
  iokc::cycle::KnowledgeCycle cycle(
      env, std::string("bench_artifacts/fig5_workspace/") + workspace,
      iokc::persist::RepoTarget::parse("mem:"));
  cycle.generate_command("fig5", kCommand);
  cycle.extract_and_persist();
  return cycle.repository().load_knowledge(
      cycle.stored_knowledge_ids().front());
}

}  // namespace

int main() {
  // Fresh workspace: stale outputs from earlier invocations must not be
  // re-extracted.
  std::filesystem::remove_all("bench_artifacts/fig5_workspace");
  std::printf("=== Fig. 5: performance analysis through multiple iterations "
              "===\n");
  std::printf("command: %s\n\n", kCommand);

  // Calibration pass (no interference): find iteration 2's write window.
  const iokc::knowledge::Knowledge probe = run_once(nullptr, "probe");
  const auto* probe_write = probe.find_summary("write");
  const auto* probe_read = probe.find_summary("read");
  double t = 0.0;
  double window_start = 0.0;
  double normal_write_sec = probe_write->results[0].wrrd_sec;
  for (std::size_t i = 0; i < probe_write->results.size(); ++i) {
    if (i == 1) {
      window_start = t + probe_write->results[i].open_sec;
    }
    t += probe_write->results[i].total_sec + probe_read->results[i].total_sec;
  }

  // A fixed-duration burst taking ~62% of back-end capacity, sized so it
  // ends inside iteration 2's (stretched) write phase: writes collapse to
  // roughly the paper's 1251/2850 ratio while the subsequent reads stay flat,
  // matching Fig. 5's trace.
  const double severity = 0.62;
  const double burst_sec = 1.9 * normal_write_sec;
  iokc::sim::InterferenceSchedule schedule;
  schedule.add_window({window_start - 0.05, window_start + burst_sec,
                       severity, "competing I/O-heavy job on /scratch"});

  const iokc::knowledge::Knowledge k = run_once(&schedule, "measured");
  const auto* write = k.find_summary("write");
  const auto* read = k.find_summary("read");

  iokc::util::TextTable table;
  table.set_header({"iter", "write MiB/s", "write ops/s", "read MiB/s",
                    "read ops/s", "latency(s)", "closeTime(s)", "wrRdTime(s)",
                    "totalTime(s)"});
  table.set_alignment(std::vector<iokc::util::Align>(
      9, iokc::util::Align::kRight));
  for (std::size_t i = 0; i < write->results.size(); ++i) {
    const auto& w = write->results[i];
    const auto& r = read->results[i];
    table.add_row({std::to_string(i + 1),
                   iokc::util::format_double(w.bw_mib, 2),
                   iokc::util::format_double(w.iops, 2),
                   iokc::util::format_double(r.bw_mib, 2),
                   iokc::util::format_double(r.iops, 2),
                   iokc::util::format_double(w.latency_sec, 5),
                   iokc::util::format_double(w.close_sec, 5),
                   iokc::util::format_double(w.wrrd_sec, 5),
                   iokc::util::format_double(w.total_sec, 5)});
  }
  std::printf("%s\n", table.render().c_str());

  // Paper-vs-measured summary.
  std::vector<double> normal_bws;
  for (std::size_t i = 0; i < write->results.size(); ++i) {
    if (i != 1) {
      normal_bws.push_back(write->results[i].bw_mib);
    }
  }
  double normal_mean = 0.0;
  for (const double bw : normal_bws) {
    normal_mean += bw;
  }
  normal_mean /= static_cast<double>(normal_bws.size());
  const double anomaly_bw = write->results[1].bw_mib;
  std::printf("paper:    write mean (iters 1,3..6) ~2850 MiB/s | iteration 2 "
              "= 1251 MiB/s (ratio 0.44)\n");
  std::printf("measured: write mean (iters 1,3..6) %7.0f MiB/s | iteration 2 "
              "= %4.0f MiB/s (ratio %.2f)\n\n",
              normal_mean, anomaly_bw, anomaly_bw / normal_mean);

  // The analysis phase flags the anomaly exactly as Example II describes.
  const iokc::analysis::AnomalyReport report =
      iokc::analysis::detect_in_knowledge(k);
  std::printf("anomaly detection:\n%s\n", report.render().c_str());

  // Charts (the figure itself).
  iokc::analysis::Chart bw_chart;
  bw_chart.title = "Fig. 5a: throughput per iteration";
  bw_chart.x_label = "iteration";
  bw_chart.y_label = "MiB/s";
  iokc::analysis::Chart ops_chart;
  ops_chart.title = "Fig. 5b: number of ops per iteration";
  ops_chart.x_label = "iteration";
  ops_chart.y_label = "ops/s";
  for (std::size_t i = 0; i < write->results.size(); ++i) {
    bw_chart.categories.push_back(std::to_string(i + 1));
    ops_chart.categories.push_back(std::to_string(i + 1));
  }
  for (const auto* summary : {write, read}) {
    iokc::analysis::Series bw_series;
    iokc::analysis::Series ops_series;
    bw_series.label = summary->operation;
    ops_series.label = summary->operation;
    for (const auto& result : summary->results) {
      bw_series.values.push_back(result.bw_mib);
      ops_series.values.push_back(result.iops);
    }
    bw_chart.series.push_back(bw_series);
    ops_chart.series.push_back(ops_series);
  }
  iokc::analysis::save_svg("bench_artifacts/fig5_throughput.svg",
                           iokc::analysis::render_svg_line(bw_chart));
  iokc::analysis::save_svg("bench_artifacts/fig5_ops.svg",
                           iokc::analysis::render_svg_line(ops_chart));
  std::printf("charts: bench_artifacts/fig5_throughput.svg, "
              "bench_artifacts/fig5_ops.svg\n");
  std::printf("%s", iokc::analysis::render_ascii_bar(bw_chart).c_str());
  return 0;
}
