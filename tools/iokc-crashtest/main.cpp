// iokc-crashtest: randomized crash-recovery campaign for the durability
// layer. Two campaigns:
//
//   Sweep trials: each repeatedly forks a full sweep (generate + extract +
//   persist + save), SIGKILLs it after a randomly drawn number of fault
//   points, and restarts it in resume mode until one run survives. The
//   recovered database must open cleanly after every kill and its final
//   dump must be byte-identical to an uninterrupted reference run's.
//
//   Group-commit trials: each forks concurrent writer threads storing
//   through the repository's group-commit path (stage under the gate, one
//   leader fsync per batch) and SIGKILLs the child mid-commit. Every store
//   acknowledged before the kill — recorded write+fsync in an O_APPEND ack
//   file — must be present after recovery; a missing acked row means the
//   journal acknowledged a write its own replay cannot see.
//
//   Replica trials: each forks a whole in-process cluster — a file-backed
//   primary shipping its WAL under a quorum ack policy to two file-backed
//   replicas — drives client writes through the service port, and SIGKILLs
//   the cluster mid-flight (group commit, ship, apply, and bootstrap fault
//   points included). After every kill the most-caught-up replica is
//   "promoted" and must hold every quorum-acked write. Once a run survives,
//   a failover is exercised for real: the old primary is diverged with an
//   extra local write, rejoins the promoted replica's timeline, must be
//   fenced, and every node must converge to byte-identical dumps.
//
//   iokc-crashtest [--trials <n>] [--group-trials <n>] [--replica-trials <n>]
//                  [--seed <n>] [--workdir <dir>] [--keep]
//
// Exits 0 when every trial converges, 1 on any corruption, divergence, or
// lost acknowledged write.
#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cycle/cycle.hpp"
#include "src/db/database.hpp"
#include "src/knowledge/knowledge.hpp"
#include "src/persist/repository.hpp"
#include "src/repl/node.hpp"
#include "src/repl/replica.hpp"
#include "src/repl/ship.hpp"
#include "src/svc/client.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace {

/// Fault points left before the injected SIGKILL; decremented by the forked
/// child's fault hook.
std::atomic<int> g_kill_countdown{0};

void countdown_kill(const char* /*site*/) {
  if (g_kill_countdown.fetch_sub(1) == 1) {
    ::kill(::getpid(), SIGKILL);
  }
}

iokc::jube::JubeBenchmarkConfig sweep_config() {
  iokc::jube::JubeBenchmarkConfig config;
  config.name = "crashtest";
  config.space.add_csv("transfer", "256k,1m");
  config.space.add_csv("tasks", "2,4");
  config.steps.push_back(iokc::jube::JubeStep{
      "run", "ior -a posix -b 1m -t $transfer -s 1 -F -w -i 1 -N $tasks "
             "-o /scratch/x_$transfer"});
  return config;
}

/// One full sweep against `dir`/ws and `dir`/k.db, resumable and with
/// isolated per-package environments (the mode resume's byte-identity
/// guarantee is defined for).
void run_flow(const std::filesystem::path& dir) {
  iokc::cycle::SimEnvironment env;
  iokc::cycle::KnowledgeCycle cycle(
      env, dir / "ws",
      iokc::persist::RepoTarget::parse("file:" + (dir / "k.db").string()));
  cycle.set_parallelism(1);
  cycle.set_resume(true);
  cycle.generate(sweep_config());
  cycle.extract_and_persist();
  cycle.save();
}

/// Forks a child running `flow` with a SIGKILL `countdown` fault points in.
/// Returns true when the child completed (countdown never expired).
bool run_with_kill(const std::function<void()>& flow, int countdown) {
  // The child inherits stdio buffers; flush so its exit path (or a runtime
  // that flushes on _exit) cannot replay the parent's pending output.
  std::fflush(stdout);
  std::fflush(stderr);
  const ::pid_t pid = ::fork();
  if (pid == 0) {
    g_kill_countdown.store(countdown);
    iokc::util::set_fault_hook(&countdown_kill);
    try {
      flow();
    } catch (const std::exception& error) {
      std::fprintf(stderr, "child failed: %s\n", error.what());
      ::_exit(2);
    }
    ::_exit(0);
  }
  if (pid < 0) {
    throw iokc::IoError("fork failed");
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    return true;
  }
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
    return false;
  }
  throw iokc::IoError("crashtest child neither completed nor died by SIGKILL");
}

// -- Group-commit campaign --------------------------------------------------

constexpr int kGroupThreads = 4;
constexpr int kGroupStoresPerThread = 6;

iokc::knowledge::Knowledge group_object(int trial, int restart, int thread,
                                        int index) {
  iokc::knowledge::Knowledge object;
  object.benchmark = "IOR";
  // The command doubles as the write's identity across restarts: each
  // (trial, restart, thread, index) tuple is unique for the campaign.
  object.command = "ior -a posix -b 1m -t 256k -s 1 -N 4 -o /scratch/g" +
                   std::to_string(trial) + "_r" + std::to_string(restart) +
                   "_t" + std::to_string(thread) + "_i" +
                   std::to_string(index);
  object.num_tasks = 4;
  iokc::knowledge::OpSummary write;
  write.operation = "write";
  write.mean_bw_mib = 500.0 + index;
  object.summaries.push_back(write);
  return object;
}

/// The group-commit child: concurrent writers storing through one
/// file-backed repository. Each acknowledged store() is recorded — one
/// write(2) to an O_APPEND fd, then fsync — in `dir`/acked.txt before the
/// thread moves on, so the ack file is a durable log of what the journal
/// claimed to have made durable.
void run_group_writers(const std::filesystem::path& dir, int trial,
                       int restart) {
  iokc::persist::KnowledgeRepository repository(
      iokc::persist::RepoTarget::parse("file:" + (dir / "k.db").string()));
  const int acked_fd = ::open((dir / "acked.txt").c_str(),
                              O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (acked_fd < 0) {
    throw iokc::IoError("cannot open ack file in " + dir.string());
  }
  std::vector<std::thread> writers;
  writers.reserve(kGroupThreads);
  for (int t = 0; t < kGroupThreads; ++t) {
    writers.emplace_back([&repository, acked_fd, trial, restart, t] {
      for (int i = 0; i < kGroupStoresPerThread; ++i) {
        const iokc::knowledge::Knowledge object =
            group_object(trial, restart, t, i);
        repository.store(object);  // returns only once journal-durable
        const std::string line = object.command + "\n";
        // O_APPEND keeps concurrent small writes whole; fsync before the
        // next store so the ack is at least as durable as the write it
        // acknowledges.
        if (::write(acked_fd, line.data(), line.size()) ==
            static_cast<::ssize_t>(line.size())) {
          ::fsync(acked_fd);
        }
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  ::close(acked_fd);
}

/// Every complete line of the ack file (a torn final line — no newline —
/// was never acknowledged as written and does not count).
std::vector<std::string> read_acked(const std::filesystem::path& path) {
  std::vector<std::string> acked;
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      break;  // torn tail: the ack write itself was interrupted
    }
    acked.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return acked;
}

/// True when every acked command is present in the recovered database.
bool verify_acked(const std::filesystem::path& dir, int trial, int kills) {
  const std::vector<std::string> acked = read_acked(dir / "acked.txt");
  std::set<std::string> present;
  iokc::db::Database db = iokc::db::Database::open((dir / "k.db").string());
  const iokc::db::ResultSet rows =
      db.execute("SELECT command FROM performances");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    present.insert(rows.at(r, "command").as_text());
  }
  bool ok = true;
  for (const std::string& command : acked) {
    if (present.find(command) == present.end()) {
      std::fprintf(stderr,
                   "group trial %d: LOST acknowledged write after kill #%d: "
                   "%s\n",
                   trial, kills, command.c_str());
      ok = false;
    }
  }
  return ok;
}

// -- Replica campaign -------------------------------------------------------

constexpr int kReplicaCount = 2;
constexpr int kReplicaWriters = 2;
constexpr int kReplicaStoresPerWriter = 5;

iokc::knowledge::Knowledge replica_object(int trial, int restart, int thread,
                                          int index) {
  iokc::knowledge::Knowledge object;
  object.benchmark = "IOR";
  object.command = "ior -a posix -b 1m -t 256k -s 1 -N 4 -o /scratch/repl" +
                   std::to_string(trial) + "_r" + std::to_string(restart) +
                   "_t" + std::to_string(thread) + "_i" +
                   std::to_string(index);
  object.num_tasks = 4;
  iokc::knowledge::OpSummary write;
  write.operation = "write";
  write.mean_bw_mib = 600.0 + index;
  object.summaries.push_back(write);
  return object;
}

std::filesystem::path replica_db(const std::filesystem::path& dir, int r) {
  return dir / ("replica" + std::to_string(r) + ".db");
}

/// The replica-campaign child: a whole cluster in one process. A quorum-ack
/// primary (1 of the 2 expected replicas must hold each write durably
/// before the commit gate releases) plus two replicas, with writer threads
/// storing through the service port. Only responses that came back
/// `replication: acked` are recorded — those are the cluster's durability
/// promises, and the promoted replica must honor all of them after a kill.
void run_replica_cluster(const std::filesystem::path& dir, int trial,
                         int restart) {
  iokc::persist::KnowledgeRepository primary(
      iokc::persist::RepoTarget::parse("file:" +
                                       (dir / "primary.db").string()));
  iokc::repl::ShipperConfig ship;
  ship.ack_policy = iokc::repl::AckPolicy::kQuorum;
  ship.expected_replicas = kReplicaCount;
  ship.ack_timeout_ms = 10000;
  iokc::repl::PrimaryNode node(primary, iokc::svc::ServerConfig{}, ship);
  node.start();

  std::vector<std::unique_ptr<iokc::persist::KnowledgeRepository>> repos;
  std::vector<std::unique_ptr<iokc::repl::ReplicaNode>> replicas;
  for (int r = 0; r < kReplicaCount; ++r) {
    repos.push_back(std::make_unique<iokc::persist::KnowledgeRepository>(
        iokc::persist::RepoTarget::parse("file:" +
                                         replica_db(dir, r).string())));
    iokc::svc::ServerConfig server;
    server.primary_address =
        "127.0.0.1:" + std::to_string(node.server().port());
    iokc::repl::ReplicaConfig config;
    config.primary_host = "127.0.0.1";
    config.primary_port = node.shipper().port();
    config.reconnect_delay_ms = 100;
    config.marker_path =
        (dir / ("replica" + std::to_string(r) + ".synced")).string();
    replicas.push_back(std::make_unique<iokc::repl::ReplicaNode>(
        *repos.back(), std::move(server), config));
    replicas.back()->start();
  }

  const int acked_fd = ::open((dir / "acked.txt").c_str(),
                              O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (acked_fd < 0) {
    throw iokc::IoError("cannot open ack file in " + dir.string());
  }
  std::vector<std::thread> writers;
  writers.reserve(kReplicaWriters);
  const std::uint16_t port = node.server().port();
  for (int t = 0; t < kReplicaWriters; ++t) {
    writers.emplace_back([acked_fd, port, trial, restart, t] {
      iokc::svc::Client client = iokc::svc::Client::connect("127.0.0.1", port);
      for (int i = 0; i < kReplicaStoresPerWriter; ++i) {
        const iokc::knowledge::Knowledge object =
            replica_object(trial, restart, t, i);
        iokc::util::JsonObject params;
        params.emplace_back("object", object.to_json());
        const iokc::svc::Response response = client.call(
            "knowledge/store", iokc::util::JsonValue(std::move(params)));
        if (!response.ok) {
          continue;  // a refused write promises nothing
        }
        const iokc::util::JsonValue* replication =
            response.result.find("replication");
        if (replication == nullptr || replication->as_string() != "acked") {
          continue;  // locally durable only; the quorum never confirmed
        }
        const std::string line = object.command + "\n";
        if (::write(acked_fd, line.data(), line.size()) ==
            static_cast<::ssize_t>(line.size())) {
          ::fsync(acked_fd);
        }
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  ::close(acked_fd);
  for (auto& replica : replicas) {
    replica->stop();
  }
  node.stop();
}

/// Post-kill verification: promote the most-caught-up replica (the failover
/// rule) and require every quorum-acked write to be present in it. Quorum
/// means SOME replica held each write durably; replica streams are
/// contiguous prefixes of one WAL order, so the max-sequence replica is a
/// superset of every replica's acked writes.
bool verify_replica_acked(const std::filesystem::path& dir, int trial,
                          int kills) {
  // Every post-kill primary state must already be a valid database.
  iokc::db::Database::open((dir / "primary.db").string());

  const std::vector<std::string> acked = read_acked(dir / "acked.txt");
  int promoted = -1;
  std::uint64_t promoted_seq = 0;
  for (int r = 0; r < kReplicaCount; ++r) {
    if (!std::filesystem::exists(replica_db(dir, r))) {
      continue;  // killed before this replica ever bootstrapped
    }
    iokc::persist::KnowledgeRepository repo(
        iokc::persist::RepoTarget::parse("file:" +
                                         replica_db(dir, r).string()));
    const std::uint64_t seq = repo.applied_seq();
    if (promoted < 0 || seq > promoted_seq) {
      promoted = r;
      promoted_seq = seq;
    }
  }
  if (acked.empty()) {
    return true;  // nothing was promised yet
  }
  if (promoted < 0) {
    std::fprintf(stderr,
                 "replica trial %d: %zu acked write(s) but no replica "
                 "database after kill #%d\n",
                 trial, acked.size(), kills);
    return false;
  }

  iokc::persist::KnowledgeRepository repo(iokc::persist::RepoTarget::parse(
      "file:" + replica_db(dir, promoted).string()));
  std::set<std::string> present;
  const iokc::db::ResultSet rows =
      repo.database().execute("SELECT command FROM performances");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    present.insert(rows.at(r, "command").as_text());
  }
  bool ok = true;
  for (const std::string& command : acked) {
    if (present.find(command) == present.end()) {
      std::fprintf(stderr,
                   "replica trial %d: promoted replica %d LOST quorum-acked "
                   "write after kill #%d: %s\n",
                   trial, promoted, kills, command.c_str());
      ok = false;
    }
  }
  return ok;
}

/// The failover epilogue, run in-process once a cluster run survives: the
/// most-caught-up replica becomes the new primary, the old primary diverges
/// with a local write its timeline never replicated, rejoins, and must be
/// fenced into discarding it. Every node then has to converge to a
/// byte-identical dump of the new timeline.
bool run_failover(const std::filesystem::path& dir, int trial) {
  int promoted = 0;
  {
    std::uint64_t best = 0;
    for (int r = 0; r < kReplicaCount; ++r) {
      iokc::persist::KnowledgeRepository repo(
          iokc::persist::RepoTarget::parse("file:" +
                                           replica_db(dir, r).string()));
      if (repo.applied_seq() > best) {
        best = repo.applied_seq();
        promoted = r;
      }
    }
  }
  const int other = 1 - promoted;

  iokc::persist::KnowledgeRepository old_primary(
      iokc::persist::RepoTarget::parse("file:" +
                                       (dir / "primary.db").string()));
  // Diverge the old primary: a write on the dead timeline, never shipped.
  old_primary.store(replica_object(trial, /*restart=*/9999, /*thread=*/9, 0));
  // It believes it is synced (it WAS the authority); the fence must break
  // that belief.
  const std::string old_marker = (dir / "primary.synced").string();
  iokc::util::atomic_replace_file(old_marker, "synced\n");

  iokc::persist::KnowledgeRepository new_primary(
      iokc::persist::RepoTarget::parse("file:" +
                                       replica_db(dir, promoted).string()));
  iokc::persist::KnowledgeRepository survivor(
      iokc::persist::RepoTarget::parse("file:" +
                                       replica_db(dir, other).string()));
  const std::uint64_t target_seq = new_primary.applied_seq();

  iokc::repl::ShipperConfig ship;  // ack policy irrelevant: no new writes
  iokc::repl::Shipper shipper(new_primary, ship);
  shipper.start();

  iokc::repl::ReplicaConfig rejoin;
  rejoin.primary_host = "127.0.0.1";
  rejoin.primary_port = shipper.port();
  rejoin.reconnect_delay_ms = 100;
  rejoin.marker_path = old_marker;
  iokc::repl::ReplicationClient rejoined(old_primary, rejoin);
  rejoined.start();

  iokc::repl::ReplicaConfig follow;
  follow.primary_host = "127.0.0.1";
  follow.primary_port = shipper.port();
  follow.reconnect_delay_ms = 100;
  follow.marker_path =
      (dir / ("replica" + std::to_string(other) + ".synced")).string();
  iokc::repl::ReplicationClient follower(survivor, follow);
  follower.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((old_primary.applied_seq() != target_seq ||
          survivor.applied_seq() != target_seq) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  iokc::util::JsonObject rejoin_stats;
  rejoined.extend_stats(rejoin_stats);
  const iokc::util::JsonValue fences(rejoin_stats);
  const std::int64_t fence_count = fences.at("fences").as_int();

  follower.stop();
  rejoined.stop();
  shipper.stop();

  bool ok = true;
  if (fence_count < 1) {
    std::fprintf(stderr,
                 "replica trial %d: diverged ex-primary rejoined WITHOUT "
                 "being fenced\n",
                 trial);
    ok = false;
  }
  const std::string reference = new_primary.dump_with_epoch().dump;
  if (old_primary.dump_with_epoch().dump != reference ||
      survivor.dump_with_epoch().dump != reference) {
    std::fprintf(stderr,
                 "replica trial %d: dumps DIVERGED after failover catch-up\n",
                 trial);
    ok = false;
  }
  // Every quorum-acked write from the kill phase survived the failover.
  std::set<std::string> present;
  const iokc::db::ResultSet rows =
      new_primary.database().execute("SELECT command FROM performances");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    present.insert(rows.at(r, "command").as_text());
  }
  for (const std::string& command : read_acked(dir / "acked.txt")) {
    if (present.find(command) == present.end()) {
      std::fprintf(stderr,
                   "replica trial %d: promoted primary LOST quorum-acked "
                   "write across failover: %s\n",
                   trial, command.c_str());
      ok = false;
    }
  }
  return ok;
}

struct Options {
  int trials = 5;
  int group_trials = 2;
  int replica_trials = 2;
  std::uint64_t seed = 1;
  std::filesystem::path workdir;
  bool keep = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials <n>] [--group-trials <n>] "
               "[--replica-trials <n>] [--seed <n>] [--workdir <dir>] "
               "[--keep]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  options.workdir = std::filesystem::temp_directory_path() /
                    ("iokc_crashtest_" + std::to_string(::getpid()));
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trials" && has_value) {
      options.trials = static_cast<int>(iokc::util::parse_i64(argv[++i]));
    } else if (arg == "--group-trials" && has_value) {
      options.group_trials =
          static_cast<int>(iokc::util::parse_i64(argv[++i]));
    } else if (arg == "--replica-trials" && has_value) {
      options.replica_trials =
          static_cast<int>(iokc::util::parse_i64(argv[++i]));
    } else if (arg == "--seed" && has_value) {
      options.seed =
          static_cast<std::uint64_t>(iokc::util::parse_i64(argv[++i]));
    } else if (arg == "--workdir" && has_value) {
      options.workdir = argv[++i];
    } else if (arg == "--keep") {
      options.keep = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.trials < 1) {
    std::fprintf(stderr, "error: --trials must be >= 1\n");
    return 1;
  }
  if (options.group_trials < 0) {
    std::fprintf(stderr, "error: --group-trials must be >= 0\n");
    return 1;
  }
  if (options.replica_trials < 0) {
    std::fprintf(stderr, "error: --replica-trials must be >= 0\n");
    return 1;
  }

  try {
    std::filesystem::remove_all(options.workdir);
    std::filesystem::create_directories(options.workdir);

    // The reference: the same sweep, never interrupted. Its dump is
    // workspace-location-independent, so one reference serves every trial.
    const std::filesystem::path reference_dir = options.workdir / "reference";
    run_flow(reference_dir);
    const std::string reference =
        iokc::db::Database::open((reference_dir / "k.db").string()).dump();

    iokc::util::Rng rng(options.seed);
    int failures = 0;
    for (int trial = 0; trial < options.trials; ++trial) {
      const std::filesystem::path dir =
          options.workdir / ("trial_" + std::to_string(trial));
      int kills = 0;
      constexpr int kMaxRestarts = 500;
      while (!run_with_kill([&dir] { run_flow(dir); },
                            static_cast<int>(rng.uniform_int(1, 60)))) {
        ++kills;
        if (kills > kMaxRestarts) {
          throw iokc::IoError("sweep never completed after " +
                              std::to_string(kMaxRestarts) + " restarts");
        }
        // Every post-kill state must already be a valid database.
        try {
          iokc::db::Database::open((dir / "k.db").string());
        } catch (const std::exception& error) {
          std::fprintf(stderr,
                       "trial %d: database corrupt after kill #%d: %s\n",
                       trial, kills, error.what());
          ++failures;
          break;
        }
      }
      const std::string dump =
          iokc::db::Database::open((dir / "k.db").string()).dump();
      const bool identical = dump == reference;
      std::printf("trial %d: %d kill(s), recovered dump %s\n", trial, kills,
                  identical ? "identical" : "DIVERGED");
      if (!identical) {
        ++failures;
      }
    }

    // Group-commit campaign: kill concurrent committers mid-batch-fsync and
    // prove no acknowledged write is lost. Acked rows accumulate across
    // restarts of the same trial — every restart re-verifies all of them.
    for (int trial = 0; trial < options.group_trials; ++trial) {
      const std::filesystem::path dir =
          options.workdir / ("group_" + std::to_string(trial));
      std::filesystem::create_directories(dir);
      int kills = 0;
      int restart = 0;
      constexpr int kMaxRestarts = 500;
      // A complete child run crosses roughly 50-75 fault points (torn +
      // unsynced per record, committed per batch, for 24 stores), so this
      // range mixes kills inside a group flush with runs that finish.
      while (!run_with_kill([&dir, trial, restart] {
               run_group_writers(dir, trial, restart);
             },
                            static_cast<int>(rng.uniform_int(1, 120)))) {
        ++kills;
        ++restart;
        if (kills > kMaxRestarts) {
          throw iokc::IoError("group writers never completed after " +
                              std::to_string(kMaxRestarts) + " restarts");
        }
        if (!verify_acked(dir, trial, kills)) {
          ++failures;
          break;
        }
      }
      const bool ok = verify_acked(dir, trial, kills);
      std::printf("group trial %d: %d kill(s), acked writes %s\n", trial,
                  kills, ok ? "all recovered" : "LOST");
      if (!ok) {
        ++failures;
      }
    }

    // Replica campaign: kill a whole quorum-replicated cluster mid-flight
    // and prove promotion of the most-caught-up replica never loses a
    // quorum-acked write; then exercise a real failover with a diverged
    // ex-primary that must be fenced.
    for (int trial = 0; trial < options.replica_trials; ++trial) {
      const std::filesystem::path dir =
          options.workdir / ("replica_" + std::to_string(trial));
      std::filesystem::create_directories(dir);
      int kills = 0;
      int restart = 0;
      constexpr int kMaxRestarts = 500;
      bool trial_failed = false;
      // A complete cluster run crosses far more fault points than the group
      // campaign: every store commits on the primary AND applies on both
      // replicas in the same process, plus bootstrap snapshot installs. The
      // wide range mixes kills during bootstrap, mid-ship, and mid-apply
      // with runs that finish.
      while (!run_with_kill([&dir, trial, restart] {
               run_replica_cluster(dir, trial, restart);
             },
                            static_cast<int>(rng.uniform_int(1, 200)))) {
        ++kills;
        ++restart;
        if (kills > kMaxRestarts) {
          throw iokc::IoError("replica cluster never completed after " +
                              std::to_string(kMaxRestarts) + " restarts");
        }
        if (!verify_replica_acked(dir, trial, kills)) {
          ++failures;
          trial_failed = true;
          break;
        }
      }
      if (trial_failed) {
        std::printf("replica trial %d: %d kill(s), quorum-acked writes LOST\n",
                    trial, kills);
        continue;
      }
      const bool acked_ok = verify_replica_acked(dir, trial, kills);
      const bool failover_ok = acked_ok && run_failover(dir, trial);
      std::printf(
          "replica trial %d: %d kill(s), acked writes %s, failover %s\n",
          trial, kills, acked_ok ? "all recovered" : "LOST",
          failover_ok ? "converged" : "FAILED");
      if (!acked_ok || !failover_ok) {
        ++failures;
      }
    }

    const int total =
        options.trials + options.group_trials + options.replica_trials;
    if (!options.keep) {
      std::filesystem::remove_all(options.workdir);
    }
    if (failures > 0) {
      std::fprintf(stderr, "%d of %d trial(s) failed\n", failures, total);
      return 1;
    }
    std::printf(
        "all %d trial(s) converged (%d sweep, %d group-commit, %d replica)\n",
        total, options.trials, options.group_trials, options.replica_trials);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
