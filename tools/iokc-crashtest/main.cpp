// iokc-crashtest: randomized crash-recovery campaign for the durability
// layer. Each trial repeatedly forks a full sweep (generate + extract +
// persist + save), SIGKILLs it after a randomly drawn number of fault
// points, and restarts it in resume mode until one run survives. The
// recovered database must open cleanly after every kill and its final dump
// must be byte-identical to an uninterrupted reference run's.
//
//   iokc-crashtest [--trials <n>] [--seed <n>] [--workdir <dir>] [--keep]
//
// Exits 0 when every trial converges, 1 on any corruption or divergence.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "src/cycle/cycle.hpp"
#include "src/db/database.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace {

/// Fault points left before the injected SIGKILL; decremented by the forked
/// child's fault hook.
std::atomic<int> g_kill_countdown{0};

void countdown_kill(const char* /*site*/) {
  if (g_kill_countdown.fetch_sub(1) == 1) {
    ::kill(::getpid(), SIGKILL);
  }
}

iokc::jube::JubeBenchmarkConfig sweep_config() {
  iokc::jube::JubeBenchmarkConfig config;
  config.name = "crashtest";
  config.space.add_csv("transfer", "256k,1m");
  config.space.add_csv("tasks", "2,4");
  config.steps.push_back(iokc::jube::JubeStep{
      "run", "ior -a posix -b 1m -t $transfer -s 1 -F -w -i 1 -N $tasks "
             "-o /scratch/x_$transfer"});
  return config;
}

/// One full sweep against `dir`/ws and `dir`/k.db, resumable and with
/// isolated per-package environments (the mode resume's byte-identity
/// guarantee is defined for).
void run_flow(const std::filesystem::path& dir) {
  iokc::cycle::SimEnvironment env;
  iokc::cycle::KnowledgeCycle cycle(
      env, dir / "ws",
      iokc::persist::RepoTarget::parse("file:" + (dir / "k.db").string()));
  cycle.set_parallelism(1);
  cycle.set_resume(true);
  cycle.generate(sweep_config());
  cycle.extract_and_persist();
  cycle.save();
}

/// Forks a child running the flow with a SIGKILL `countdown` fault points
/// in. Returns true when the child completed (countdown never expired).
bool run_with_kill(const std::filesystem::path& dir, int countdown) {
  // The child inherits stdio buffers; flush so its exit path (or a runtime
  // that flushes on _exit) cannot replay the parent's pending output.
  std::fflush(stdout);
  std::fflush(stderr);
  const ::pid_t pid = ::fork();
  if (pid == 0) {
    g_kill_countdown.store(countdown);
    iokc::util::set_fault_hook(&countdown_kill);
    try {
      run_flow(dir);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "child failed: %s\n", error.what());
      ::_exit(2);
    }
    ::_exit(0);
  }
  if (pid < 0) {
    throw iokc::IoError("fork failed");
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    return true;
  }
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
    return false;
  }
  throw iokc::IoError("sweep child neither completed nor died by SIGKILL");
}

struct Options {
  int trials = 5;
  std::uint64_t seed = 1;
  std::filesystem::path workdir;
  bool keep = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials <n>] [--seed <n>] [--workdir <dir>] "
               "[--keep]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  options.workdir = std::filesystem::temp_directory_path() /
                    ("iokc_crashtest_" + std::to_string(::getpid()));
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trials" && has_value) {
      options.trials = static_cast<int>(iokc::util::parse_i64(argv[++i]));
    } else if (arg == "--seed" && has_value) {
      options.seed =
          static_cast<std::uint64_t>(iokc::util::parse_i64(argv[++i]));
    } else if (arg == "--workdir" && has_value) {
      options.workdir = argv[++i];
    } else if (arg == "--keep") {
      options.keep = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.trials < 1) {
    std::fprintf(stderr, "error: --trials must be >= 1\n");
    return 1;
  }

  try {
    std::filesystem::remove_all(options.workdir);
    std::filesystem::create_directories(options.workdir);

    // The reference: the same sweep, never interrupted. Its dump is
    // workspace-location-independent, so one reference serves every trial.
    const std::filesystem::path reference_dir = options.workdir / "reference";
    run_flow(reference_dir);
    const std::string reference =
        iokc::db::Database::open((reference_dir / "k.db").string()).dump();

    iokc::util::Rng rng(options.seed);
    int failures = 0;
    for (int trial = 0; trial < options.trials; ++trial) {
      const std::filesystem::path dir =
          options.workdir / ("trial_" + std::to_string(trial));
      int kills = 0;
      constexpr int kMaxRestarts = 500;
      while (!run_with_kill(dir, static_cast<int>(rng.uniform_int(1, 60)))) {
        ++kills;
        if (kills > kMaxRestarts) {
          throw iokc::IoError("sweep never completed after " +
                              std::to_string(kMaxRestarts) + " restarts");
        }
        // Every post-kill state must already be a valid database.
        try {
          iokc::db::Database::open((dir / "k.db").string());
        } catch (const std::exception& error) {
          std::fprintf(stderr,
                       "trial %d: database corrupt after kill #%d: %s\n",
                       trial, kills, error.what());
          ++failures;
          break;
        }
      }
      const std::string dump =
          iokc::db::Database::open((dir / "k.db").string()).dump();
      const bool identical = dump == reference;
      std::printf("trial %d: %d kill(s), recovered dump %s\n", trial, kills,
                  identical ? "identical" : "DIVERGED");
      if (!identical) {
        ++failures;
      }
    }

    if (!options.keep) {
      std::filesystem::remove_all(options.workdir);
    }
    if (failures > 0) {
      std::fprintf(stderr, "%d of %d trial(s) failed\n", failures,
                   options.trials);
      return 1;
    }
    std::printf("all %d trial(s) converged to the reference dump\n",
                options.trials);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
