// iokc-crashtest: randomized crash-recovery campaign for the durability
// layer. Two campaigns:
//
//   Sweep trials: each repeatedly forks a full sweep (generate + extract +
//   persist + save), SIGKILLs it after a randomly drawn number of fault
//   points, and restarts it in resume mode until one run survives. The
//   recovered database must open cleanly after every kill and its final
//   dump must be byte-identical to an uninterrupted reference run's.
//
//   Group-commit trials: each forks concurrent writer threads storing
//   through the repository's group-commit path (stage under the gate, one
//   leader fsync per batch) and SIGKILLs the child mid-commit. Every store
//   acknowledged before the kill — recorded write+fsync in an O_APPEND ack
//   file — must be present after recovery; a missing acked row means the
//   journal acknowledged a write its own replay cannot see.
//
//   iokc-crashtest [--trials <n>] [--group-trials <n>] [--seed <n>]
//                  [--workdir <dir>] [--keep]
//
// Exits 0 when every trial converges, 1 on any corruption, divergence, or
// lost acknowledged write.
#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cycle/cycle.hpp"
#include "src/db/database.hpp"
#include "src/knowledge/knowledge.hpp"
#include "src/persist/repository.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace {

/// Fault points left before the injected SIGKILL; decremented by the forked
/// child's fault hook.
std::atomic<int> g_kill_countdown{0};

void countdown_kill(const char* /*site*/) {
  if (g_kill_countdown.fetch_sub(1) == 1) {
    ::kill(::getpid(), SIGKILL);
  }
}

iokc::jube::JubeBenchmarkConfig sweep_config() {
  iokc::jube::JubeBenchmarkConfig config;
  config.name = "crashtest";
  config.space.add_csv("transfer", "256k,1m");
  config.space.add_csv("tasks", "2,4");
  config.steps.push_back(iokc::jube::JubeStep{
      "run", "ior -a posix -b 1m -t $transfer -s 1 -F -w -i 1 -N $tasks "
             "-o /scratch/x_$transfer"});
  return config;
}

/// One full sweep against `dir`/ws and `dir`/k.db, resumable and with
/// isolated per-package environments (the mode resume's byte-identity
/// guarantee is defined for).
void run_flow(const std::filesystem::path& dir) {
  iokc::cycle::SimEnvironment env;
  iokc::cycle::KnowledgeCycle cycle(
      env, dir / "ws",
      iokc::persist::RepoTarget::parse("file:" + (dir / "k.db").string()));
  cycle.set_parallelism(1);
  cycle.set_resume(true);
  cycle.generate(sweep_config());
  cycle.extract_and_persist();
  cycle.save();
}

/// Forks a child running `flow` with a SIGKILL `countdown` fault points in.
/// Returns true when the child completed (countdown never expired).
bool run_with_kill(const std::function<void()>& flow, int countdown) {
  // The child inherits stdio buffers; flush so its exit path (or a runtime
  // that flushes on _exit) cannot replay the parent's pending output.
  std::fflush(stdout);
  std::fflush(stderr);
  const ::pid_t pid = ::fork();
  if (pid == 0) {
    g_kill_countdown.store(countdown);
    iokc::util::set_fault_hook(&countdown_kill);
    try {
      flow();
    } catch (const std::exception& error) {
      std::fprintf(stderr, "child failed: %s\n", error.what());
      ::_exit(2);
    }
    ::_exit(0);
  }
  if (pid < 0) {
    throw iokc::IoError("fork failed");
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    return true;
  }
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
    return false;
  }
  throw iokc::IoError("crashtest child neither completed nor died by SIGKILL");
}

// -- Group-commit campaign --------------------------------------------------

constexpr int kGroupThreads = 4;
constexpr int kGroupStoresPerThread = 6;

iokc::knowledge::Knowledge group_object(int trial, int restart, int thread,
                                        int index) {
  iokc::knowledge::Knowledge object;
  object.benchmark = "IOR";
  // The command doubles as the write's identity across restarts: each
  // (trial, restart, thread, index) tuple is unique for the campaign.
  object.command = "ior -a posix -b 1m -t 256k -s 1 -N 4 -o /scratch/g" +
                   std::to_string(trial) + "_r" + std::to_string(restart) +
                   "_t" + std::to_string(thread) + "_i" +
                   std::to_string(index);
  object.num_tasks = 4;
  iokc::knowledge::OpSummary write;
  write.operation = "write";
  write.mean_bw_mib = 500.0 + index;
  object.summaries.push_back(write);
  return object;
}

/// The group-commit child: concurrent writers storing through one
/// file-backed repository. Each acknowledged store() is recorded — one
/// write(2) to an O_APPEND fd, then fsync — in `dir`/acked.txt before the
/// thread moves on, so the ack file is a durable log of what the journal
/// claimed to have made durable.
void run_group_writers(const std::filesystem::path& dir, int trial,
                       int restart) {
  iokc::persist::KnowledgeRepository repository(
      iokc::persist::RepoTarget::parse("file:" + (dir / "k.db").string()));
  const int acked_fd = ::open((dir / "acked.txt").c_str(),
                              O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (acked_fd < 0) {
    throw iokc::IoError("cannot open ack file in " + dir.string());
  }
  std::vector<std::thread> writers;
  writers.reserve(kGroupThreads);
  for (int t = 0; t < kGroupThreads; ++t) {
    writers.emplace_back([&repository, acked_fd, trial, restart, t] {
      for (int i = 0; i < kGroupStoresPerThread; ++i) {
        const iokc::knowledge::Knowledge object =
            group_object(trial, restart, t, i);
        repository.store(object);  // returns only once journal-durable
        const std::string line = object.command + "\n";
        // O_APPEND keeps concurrent small writes whole; fsync before the
        // next store so the ack is at least as durable as the write it
        // acknowledges.
        if (::write(acked_fd, line.data(), line.size()) ==
            static_cast<::ssize_t>(line.size())) {
          ::fsync(acked_fd);
        }
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  ::close(acked_fd);
}

/// Every complete line of the ack file (a torn final line — no newline —
/// was never acknowledged as written and does not count).
std::vector<std::string> read_acked(const std::filesystem::path& path) {
  std::vector<std::string> acked;
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      break;  // torn tail: the ack write itself was interrupted
    }
    acked.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return acked;
}

/// True when every acked command is present in the recovered database.
bool verify_acked(const std::filesystem::path& dir, int trial, int kills) {
  const std::vector<std::string> acked = read_acked(dir / "acked.txt");
  std::set<std::string> present;
  iokc::db::Database db = iokc::db::Database::open((dir / "k.db").string());
  const iokc::db::ResultSet rows =
      db.execute("SELECT command FROM performances");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    present.insert(rows.at(r, "command").as_text());
  }
  bool ok = true;
  for (const std::string& command : acked) {
    if (present.find(command) == present.end()) {
      std::fprintf(stderr,
                   "group trial %d: LOST acknowledged write after kill #%d: "
                   "%s\n",
                   trial, kills, command.c_str());
      ok = false;
    }
  }
  return ok;
}

struct Options {
  int trials = 5;
  int group_trials = 2;
  std::uint64_t seed = 1;
  std::filesystem::path workdir;
  bool keep = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials <n>] [--group-trials <n>] [--seed <n>] "
               "[--workdir <dir>] [--keep]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  options.workdir = std::filesystem::temp_directory_path() /
                    ("iokc_crashtest_" + std::to_string(::getpid()));
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trials" && has_value) {
      options.trials = static_cast<int>(iokc::util::parse_i64(argv[++i]));
    } else if (arg == "--group-trials" && has_value) {
      options.group_trials =
          static_cast<int>(iokc::util::parse_i64(argv[++i]));
    } else if (arg == "--seed" && has_value) {
      options.seed =
          static_cast<std::uint64_t>(iokc::util::parse_i64(argv[++i]));
    } else if (arg == "--workdir" && has_value) {
      options.workdir = argv[++i];
    } else if (arg == "--keep") {
      options.keep = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.trials < 1) {
    std::fprintf(stderr, "error: --trials must be >= 1\n");
    return 1;
  }
  if (options.group_trials < 0) {
    std::fprintf(stderr, "error: --group-trials must be >= 0\n");
    return 1;
  }

  try {
    std::filesystem::remove_all(options.workdir);
    std::filesystem::create_directories(options.workdir);

    // The reference: the same sweep, never interrupted. Its dump is
    // workspace-location-independent, so one reference serves every trial.
    const std::filesystem::path reference_dir = options.workdir / "reference";
    run_flow(reference_dir);
    const std::string reference =
        iokc::db::Database::open((reference_dir / "k.db").string()).dump();

    iokc::util::Rng rng(options.seed);
    int failures = 0;
    for (int trial = 0; trial < options.trials; ++trial) {
      const std::filesystem::path dir =
          options.workdir / ("trial_" + std::to_string(trial));
      int kills = 0;
      constexpr int kMaxRestarts = 500;
      while (!run_with_kill([&dir] { run_flow(dir); },
                            static_cast<int>(rng.uniform_int(1, 60)))) {
        ++kills;
        if (kills > kMaxRestarts) {
          throw iokc::IoError("sweep never completed after " +
                              std::to_string(kMaxRestarts) + " restarts");
        }
        // Every post-kill state must already be a valid database.
        try {
          iokc::db::Database::open((dir / "k.db").string());
        } catch (const std::exception& error) {
          std::fprintf(stderr,
                       "trial %d: database corrupt after kill #%d: %s\n",
                       trial, kills, error.what());
          ++failures;
          break;
        }
      }
      const std::string dump =
          iokc::db::Database::open((dir / "k.db").string()).dump();
      const bool identical = dump == reference;
      std::printf("trial %d: %d kill(s), recovered dump %s\n", trial, kills,
                  identical ? "identical" : "DIVERGED");
      if (!identical) {
        ++failures;
      }
    }

    // Group-commit campaign: kill concurrent committers mid-batch-fsync and
    // prove no acknowledged write is lost. Acked rows accumulate across
    // restarts of the same trial — every restart re-verifies all of them.
    for (int trial = 0; trial < options.group_trials; ++trial) {
      const std::filesystem::path dir =
          options.workdir / ("group_" + std::to_string(trial));
      std::filesystem::create_directories(dir);
      int kills = 0;
      int restart = 0;
      constexpr int kMaxRestarts = 500;
      // A complete child run crosses roughly 50-75 fault points (torn +
      // unsynced per record, committed per batch, for 24 stores), so this
      // range mixes kills inside a group flush with runs that finish.
      while (!run_with_kill([&dir, trial, restart] {
               run_group_writers(dir, trial, restart);
             },
                            static_cast<int>(rng.uniform_int(1, 120)))) {
        ++kills;
        ++restart;
        if (kills > kMaxRestarts) {
          throw iokc::IoError("group writers never completed after " +
                              std::to_string(kMaxRestarts) + " restarts");
        }
        if (!verify_acked(dir, trial, kills)) {
          ++failures;
          break;
        }
      }
      const bool ok = verify_acked(dir, trial, kills);
      std::printf("group trial %d: %d kill(s), acked writes %s\n", trial,
                  kills, ok ? "all recovered" : "LOST");
      if (!ok) {
        ++failures;
      }
    }

    if (!options.keep) {
      std::filesystem::remove_all(options.workdir);
    }
    if (failures > 0) {
      std::fprintf(stderr, "%d of %d trial(s) failed\n", failures,
                   options.trials + options.group_trials);
      return 1;
    }
    std::printf("all %d trial(s) converged (%d sweep, %d group-commit)\n",
                options.trials + options.group_trials, options.trials,
                options.group_trials);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
