// iokc-loadgen: drives a knowledge service with N concurrent connections x M
// requests each, mixing read endpoints with a configurable fraction of
// knowledge/store writes, and reports latency percentiles and throughput.
//
//   iokc-loadgen --addr <host:port> | --self-serve | --self-cluster
//                | --targets <host:port,...>
//                [--threads <n>] [--connections <n>] [--requests <n>]
//                [--write-fraction <0..1>] [--seed <n>] [--json <file>]
//                [--sweep-threads <a,b,c>] [--require-scaling <tolerance>]
//                [--replicas <n>] [--max-epoch-lag <n>] [--require-fanout]
//
// --self-serve starts an in-process server on an ephemeral loopback port over
// an in-memory repository seeded with synthetic IOR knowledge, which makes
// the smoke test (and quick benchmarking) a single command with no daemon to
// manage. Exit status is nonzero when any request failed.
//
// --targets drives a replicated cluster: each worker uses a
// repl::ClusterClient, so writes go to the primary (the first target) and
// reads round-robin across every target. --self-cluster spawns the cluster
// in-process — a file-backed primary shipping its WAL under a quorum ack
// policy to --replicas replica nodes — which makes the replication smoke
// test a single command too. --require-fanout exits 3 unless every target
// served at least one read (the read-split regression gate; it is
// deliberately insensitive to machine speed, unlike a throughput bar).
//
// --sweep-threads runs one self-serve load per listed server-thread count
// (fresh repository and server each run, identical client traffic) and emits
// a combined JSON artifact with per-run stats — the before/after scalability
// evidence in EXPERIMENTS.md and bench_artifacts/ comes from this mode.
// --require-scaling T turns the sweep into a regression gate: exit 3 unless
// the last run's read throughput is >= T x the first run's. T < 1 leaves
// headroom for single-core CI machines, where extra server threads cannot
// add parallel CPU and the gate is really checking that throughput no longer
// *collapses* as threads are added (the pre-fix baseline lost 10-60x on p50).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/knowledge/knowledge.hpp"
#include "src/persist/repository.hpp"
#include "src/repl/cluster_client.hpp"
#include "src/repl/node.hpp"
#include "src/svc/client.hpp"
#include "src/svc/server.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace {

using namespace iokc;

struct Options {
  std::string host;
  std::uint16_t port = 0;
  bool self_serve = false;
  std::size_t server_threads = 4;  // --self-serve worker pool
  std::size_t connections = 4;
  std::size_t requests = 50;
  double write_fraction = 0.1;
  std::uint64_t seed = 0x10ADF00D;
  std::string json_path;
  std::vector<std::size_t> sweep_threads;  // --sweep-threads, implies self-serve
  double require_scaling = 0.0;            // --require-scaling gate (0 = off)
  std::vector<std::string> targets;        // --targets, cluster mode
  bool self_cluster = false;               // spawn the cluster in-process
  std::size_t replicas = 2;                // --self-cluster replica count
  std::uint64_t max_epoch_lag = 0;         // ClusterClient staleness bound
  bool require_fanout = false;             // every target must serve a read
};

struct WorkerResult {
  std::vector<double> latencies_us;
  std::vector<double> read_latencies_us;  // subset: non-store endpoints
  std::uint64_t write_requests = 0;
  std::uint64_t errors = 0;
  std::vector<std::string> error_samples;  // first few messages for the log
  std::vector<std::uint64_t> reads_per_target;  // cluster mode only
};

/// Aggregated stats for one complete load run (one server configuration).
struct RunStats {
  std::size_t server_threads = 0;
  std::size_t total_requests = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t errors = 0;
  double wall_ms = 0.0;
  double requests_per_sec = 0.0;
  double read_requests_per_sec = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double read_p50 = 0.0;
  double read_p99 = 0.0;
  std::vector<std::uint64_t> reads_per_target;  // cluster mode only
};

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw ConfigError(flag + " needs a value");
      }
      return argv[++i];
    };
    if (flag == "--addr") {
      const std::string address = need_value();
      const std::size_t colon = address.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == address.size()) {
        throw ConfigError("--addr must be <host>:<port>");
      }
      options.host = address.substr(0, colon);
      options.port = static_cast<std::uint16_t>(
          util::parse_i64(address.substr(colon + 1)));
    } else if (flag == "--self-serve") {
      options.self_serve = true;
    } else if (flag == "--threads") {
      options.server_threads =
          static_cast<std::size_t>(util::parse_i64(need_value()));
    } else if (flag == "--connections") {
      options.connections =
          static_cast<std::size_t>(util::parse_i64(need_value()));
    } else if (flag == "--requests") {
      options.requests =
          static_cast<std::size_t>(util::parse_i64(need_value()));
    } else if (flag == "--write-fraction") {
      options.write_fraction = std::stod(need_value());
    } else if (flag == "--seed") {
      options.seed = static_cast<std::uint64_t>(util::parse_i64(need_value()));
    } else if (flag == "--json") {
      options.json_path = need_value();
    } else if (flag == "--sweep-threads") {
      for (const std::string& item : util::split(need_value(), ',')) {
        const std::int64_t count = util::parse_i64(item);
        if (count < 1) {
          throw ConfigError("--sweep-threads entries must be >= 1");
        }
        options.sweep_threads.push_back(static_cast<std::size_t>(count));
      }
      if (options.sweep_threads.empty()) {
        throw ConfigError("--sweep-threads needs at least one thread count");
      }
    } else if (flag == "--require-scaling") {
      options.require_scaling = std::stod(need_value());
      if (options.require_scaling <= 0.0) {
        throw ConfigError("--require-scaling must be > 0");
      }
    } else if (flag == "--targets") {
      for (const std::string& target : util::split(need_value(), ',')) {
        const std::size_t colon = target.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == target.size()) {
          throw ConfigError("--targets entries must be <host>:<port>");
        }
        options.targets.push_back(target);
      }
      if (options.targets.empty()) {
        throw ConfigError("--targets needs at least one address");
      }
    } else if (flag == "--self-cluster") {
      options.self_cluster = true;
    } else if (flag == "--replicas") {
      options.replicas = static_cast<std::size_t>(
          util::parse_i64(need_value()));
      if (options.replicas < 1) {
        throw ConfigError("--replicas must be >= 1");
      }
    } else if (flag == "--max-epoch-lag") {
      options.max_epoch_lag =
          static_cast<std::uint64_t>(util::parse_i64(need_value()));
    } else if (flag == "--require-fanout") {
      options.require_fanout = true;
    } else {
      throw ConfigError("unknown flag " + flag);
    }
  }
  if (!options.sweep_threads.empty()) {
    if (!options.host.empty() || options.self_cluster ||
        !options.targets.empty()) {
      throw ConfigError("--sweep-threads restarts the server per run; it "
                        "requires --self-serve, not --addr or cluster modes");
    }
    options.self_serve = true;
  }
  const int modes = (options.host.empty() ? 0 : 1) +
                    (options.self_serve ? 1 : 0) +
                    (options.self_cluster ? 1 : 0) +
                    (options.targets.empty() ? 0 : 1);
  if (modes != 1) {
    throw ConfigError("pass exactly one of --addr <host:port> | --self-serve "
                      "| --self-cluster | --targets <host:port,...>");
  }
  if (options.require_fanout && !options.self_cluster &&
      options.targets.empty()) {
    throw ConfigError("--require-fanout needs a cluster mode (--self-cluster "
                      "or --targets)");
  }
  if (options.require_scaling > 0.0 && options.sweep_threads.size() < 2) {
    throw ConfigError("--require-scaling needs --sweep-threads with at least "
                      "two thread counts to compare");
  }
  if (options.connections == 0 || options.requests == 0) {
    throw ConfigError("--connections and --requests must be >= 1");
  }
  if (options.write_fraction < 0.0 || options.write_fraction > 1.0) {
    throw ConfigError("--write-fraction must be within [0, 1]");
  }
  return options;
}

/// A synthetic IOR knowledge object; `index` varies transfer size, task
/// count, and bandwidth so predict/recommend have a real spread to mine.
knowledge::Knowledge synthetic_knowledge(std::uint64_t index) {
  knowledge::Knowledge object;
  object.benchmark = "IOR";
  const std::uint64_t transfer_kib = 256u << (index % 4);  // 256k..2m
  const std::uint32_t tasks = 8u << (index % 3);           // 8/16/32
  object.command = "ior -a " + std::string(index % 2 == 0 ? "posix" : "mpiio") +
                   " -b 4m -t " + std::to_string(transfer_kib) + "k -s 4 -N " +
                   std::to_string(tasks) + " -o /scratch/loadgen" +
                   std::to_string(index);
  object.api = index % 2 == 0 ? "POSIX" : "MPIIO";
  object.num_tasks = tasks;
  object.num_nodes = 1 + tasks / 16;
  knowledge::OpSummary write;
  write.operation = "write";
  write.mean_bw_mib = 800.0 + 180.0 * static_cast<double>(index % 5);
  object.summaries.push_back(write);
  knowledge::OpSummary read;
  read.operation = "read";
  read.mean_bw_mib = 1000.0 + 150.0 * static_cast<double>(index % 5);
  object.summaries.push_back(read);
  return object;
}

/// One worker: one connection, `requests` mixed calls, deterministic per
/// (seed, worker) so reruns replay the same request stream. In cluster mode
/// (non-empty targets) the connection is a ClusterClient — writes go to the
/// primary, reads round-robin across every target.
WorkerResult run_worker(const Options& options, std::size_t worker,
                        const std::vector<std::int64_t>& knowledge_ids) {
  WorkerResult result;
  result.latencies_us.reserve(options.requests);
  svc::ClientOptions client_options;
  client_options.connect_retries = 9;
  std::optional<svc::Client> client;
  std::optional<repl::ClusterClient> cluster;
  if (!options.targets.empty()) {
    repl::ClusterClientOptions cluster_options;
    cluster_options.client = client_options;
    cluster_options.max_epoch_lag = options.max_epoch_lag;
    cluster.emplace(options.targets, cluster_options);
  } else {
    client.emplace(
        svc::Client::connect(options.host, options.port, client_options));
  }
  const auto write_threshold = static_cast<std::uint64_t>(
      options.write_fraction * 1e9);
  for (std::size_t i = 0; i < options.requests; ++i) {
    const std::uint64_t roll = util::splitmix64(
        options.seed, worker * 1'000'003 + i);
    std::string endpoint;
    util::JsonObject params;
    bool is_write = false;
    if (roll % 1'000'000'000 < write_threshold) {
      endpoint = "knowledge/store";
      is_write = true;
      params.emplace_back(
          "object", synthetic_knowledge(roll % 97 + worker * 100).to_json());
    } else {
      switch ((roll >> 32) % 6) {
        case 0:
          endpoint = "health";
          break;
        case 1:
          endpoint = "stats";
          break;
        case 2:
          endpoint = "list";
          break;
        case 3:
          endpoint = "sql";
          params.emplace_back(
              "statement",
              util::JsonValue("SELECT id, command FROM performances"));
          break;
        case 4:
          if (!knowledge_ids.empty()) {
            endpoint = "anomaly";
            params.emplace_back(
                "id", util::JsonValue(
                          knowledge_ids[(roll >> 16) % knowledge_ids.size()]));
          } else {
            endpoint = "health";
          }
          break;
        default:
          endpoint = "predict";
          params.emplace_back(
              "command",
              util::JsonValue("ior -a posix -b 4m -t 1m -s 4 -N 16 -o /s/f"));
          break;
      }
    }
    const auto started = std::chrono::steady_clock::now();
    try {
      const svc::Response response =
          cluster ? cluster->call(endpoint, util::JsonValue(std::move(params)))
                  : client->call(endpoint, util::JsonValue(std::move(params)));
      if (!response.ok) {
        ++result.errors;
        if (result.error_samples.size() < 3) {
          result.error_samples.push_back(endpoint + ": " + response.error);
        }
      }
    } catch (const Error& error) {
      ++result.errors;
      if (result.error_samples.size() < 3) {
        result.error_samples.push_back(endpoint + ": " + error.what());
      }
      // The ClusterClient redials internally; only the plain client needs a
      // fresh connection after a transport failure.
      if (!cluster) {
        client = svc::Client::connect(options.host, options.port,
                                      client_options);
      }
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - started);
    const double latency_us = static_cast<double>(elapsed.count());
    result.latencies_us.push_back(latency_us);
    if (is_write) {
      ++result.write_requests;
    } else {
      result.read_latencies_us.push_back(latency_us);
    }
  }
  if (cluster) {
    result.reads_per_target = cluster->reads_per_target();
  }
  return result;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Runs one complete load (optionally self-serving a fresh server), prints a
/// human summary, and returns the aggregated stats for artifacts/gates.
RunStats run_load(const Options& options) {
  // --self-serve: in-process server over a seeded in-memory repository.
  std::optional<persist::KnowledgeRepository> repository;
  std::optional<svc::Server> server;
  Options live = options;
  if (live.self_serve) {
    repository.emplace();
    for (std::uint64_t i = 0; i < 12; ++i) {
      repository->store(synthetic_knowledge(i));
    }
    svc::ServerConfig config;
    config.threads = live.server_threads;
    server.emplace(*repository, config);
    server->start();
    // start() returning means the listener socket is bound; prove it before
    // any worker dials in, so a failed startup dies here with a clear
    // message instead of as N confusing connect errors later.
    if (!server->running() || server->port() == 0) {
      throw IoError("self-serve server failed to start a listener");
    }
    std::cout << "loadgen: self-serve listening on 127.0.0.1:"
              << server->port() << "\n";
    live.host = "127.0.0.1";
    live.port = server->port();
  }

  // --self-cluster: in-process primary + replicas over file-backed
  // repositories (the shipper needs a journal to ship). The primary is
  // seeded before the cluster starts, so replicas bootstrap the seed via
  // snapshot; traffic waits until every replica holds it.
  std::filesystem::path cluster_dir;
  std::optional<persist::KnowledgeRepository> primary_repo;
  std::optional<repl::PrimaryNode> primary_node;
  std::vector<std::unique_ptr<persist::KnowledgeRepository>> replica_repos;
  std::vector<std::unique_ptr<repl::ReplicaNode>> replica_nodes;
  if (live.self_cluster) {
    cluster_dir = std::filesystem::temp_directory_path() /
                  ("iokc_loadgen_cluster_" + std::to_string(::getpid()));
    std::filesystem::remove_all(cluster_dir);
    std::filesystem::create_directories(cluster_dir);
    primary_repo.emplace(persist::RepoTarget::parse(
        "file:" + (cluster_dir / "primary.db").string()));
    for (std::uint64_t i = 0; i < 12; ++i) {
      primary_repo->store(synthetic_knowledge(i));
    }
    repl::ShipperConfig ship;
    ship.ack_policy = repl::AckPolicy::kQuorum;
    ship.expected_replicas = live.replicas;
    svc::ServerConfig primary_config;
    primary_config.threads = live.server_threads;
    primary_node.emplace(*primary_repo, primary_config, ship);
    primary_node->start();
    live.targets.push_back("127.0.0.1:" +
                           std::to_string(primary_node->server().port()));
    for (std::size_t r = 0; r < live.replicas; ++r) {
      const std::string name = "replica" + std::to_string(r);
      replica_repos.push_back(std::make_unique<persist::KnowledgeRepository>(
          persist::RepoTarget::parse(
              "file:" + (cluster_dir / (name + ".db")).string())));
      svc::ServerConfig replica_config;
      replica_config.threads = live.server_threads;
      replica_config.primary_address = live.targets[0];
      repl::ReplicaConfig replication;
      replication.primary_port = primary_node->shipper().port();
      replication.reconnect_delay_ms = 100;
      replication.marker_path = (cluster_dir / (name + ".synced")).string();
      replica_nodes.push_back(std::make_unique<repl::ReplicaNode>(
          *replica_repos.back(), std::move(replica_config), replication));
      replica_nodes.back()->start();
      live.targets.push_back(
          "127.0.0.1:" + std::to_string(replica_nodes.back()->server().port()));
    }
    const std::uint64_t seed_seq = primary_repo->applied_seq();
    for (auto& node : replica_nodes) {
      if (!node->replication().wait_applied(seed_seq, 10000)) {
        throw IoError("self-cluster replica never caught up with the seed");
      }
    }
    std::cout << "loadgen: self-cluster primary + " << live.replicas
              << " replica(s) on " << util::join(live.targets, ",") << "\n";
  }

  // Discover knowledge ids once so anomaly requests target real objects.
  std::vector<std::int64_t> knowledge_ids;
  {
    svc::ClientOptions client_options;
    client_options.connect_retries = 9;
    svc::Response listed;
    if (!live.targets.empty()) {
      repl::ClusterClientOptions cluster_options;
      cluster_options.client = client_options;
      repl::ClusterClient probe(live.targets, cluster_options);
      listed = probe.call_primary("list",
                                  util::JsonValue(util::JsonObject{}));
    } else {
      svc::Client probe =
          svc::Client::connect(live.host, live.port, client_options);
      listed = probe.call("list");
    }
    if (listed.ok) {
      for (const util::JsonValue& entry :
           listed.result.at("knowledge").as_array()) {
        knowledge_ids.push_back(entry.at("id").as_int());
      }
    }
  }

  const auto started = std::chrono::steady_clock::now();
  std::vector<WorkerResult> results(live.connections);
  std::vector<std::thread> workers;
  workers.reserve(live.connections);
  for (std::size_t w = 0; w < live.connections; ++w) {
    workers.emplace_back([&, w] {
      try {
        results[w] = run_worker(live, w, knowledge_ids);
      } catch (const Error& error) {
        results[w].errors += 1;
        results[w].error_samples.push_back(error.what());
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double wall_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count()) /
      1000.0;

  std::vector<double> latencies;
  std::vector<double> read_latencies;
  RunStats stats;
  stats.server_threads = live.self_serve ? live.server_threads : 0;
  for (const WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    read_latencies.insert(read_latencies.end(),
                          result.read_latencies_us.begin(),
                          result.read_latencies_us.end());
    stats.write_requests += result.write_requests;
    stats.errors += result.errors;
    for (const std::string& sample : result.error_samples) {
      std::cerr << "request error: " << sample << "\n";
    }
    if (!result.reads_per_target.empty()) {
      if (stats.reads_per_target.size() < result.reads_per_target.size()) {
        stats.reads_per_target.resize(result.reads_per_target.size(), 0);
      }
      for (std::size_t t = 0; t < result.reads_per_target.size(); ++t) {
        stats.reads_per_target[t] += result.reads_per_target[t];
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(read_latencies.begin(), read_latencies.end());
  stats.total_requests = latencies.size();
  stats.read_requests = read_latencies.size();
  stats.wall_ms = wall_ms;
  stats.p50 = percentile(latencies, 0.50);
  stats.p90 = percentile(latencies, 0.90);
  stats.p99 = percentile(latencies, 0.99);
  stats.max = latencies.empty() ? 0.0 : latencies.back();
  stats.read_p50 = percentile(read_latencies, 0.50);
  stats.read_p99 = percentile(read_latencies, 0.99);
  if (wall_ms > 0.0) {
    stats.requests_per_sec =
        static_cast<double>(stats.total_requests) * 1000.0 / wall_ms;
    stats.read_requests_per_sec =
        static_cast<double>(stats.read_requests) * 1000.0 / wall_ms;
  }

  if (server.has_value()) {
    server->stop();  // graceful drain; also validates clean shutdown
  }
  for (auto& node : replica_nodes) {
    node->stop();
  }
  if (primary_node.has_value()) {
    primary_node->stop();
  }
  if (!cluster_dir.empty()) {
    std::filesystem::remove_all(cluster_dir);
  }

  std::cout << "loadgen: " << live.connections << " connection(s) x "
            << live.requests << " request(s), write-fraction "
            << util::format_double(options.write_fraction, 2);
  if (live.self_serve) {
    std::cout << ", " << live.server_threads << " server thread(s)";
  }
  std::cout << "\n"
            << "  completed " << stats.total_requests << " request(s) in "
            << util::format_double(stats.wall_ms, 1) << " ms ("
            << util::format_double(stats.requests_per_sec, 0) << " req/s, "
            << util::format_double(stats.read_requests_per_sec, 0)
            << " read req/s), " << stats.errors << " error(s)\n"
            << "  latency us: p50 " << util::format_double(stats.p50, 0)
            << ", p90 " << util::format_double(stats.p90, 0) << ", p99 "
            << util::format_double(stats.p99, 0) << ", max "
            << util::format_double(stats.max, 0) << " (reads: p50 "
            << util::format_double(stats.read_p50, 0) << ", p99 "
            << util::format_double(stats.read_p99, 0) << ")\n";
  if (!stats.reads_per_target.empty()) {
    std::cout << "  cluster read fan-out:";
    for (std::size_t t = 0; t < stats.reads_per_target.size(); ++t) {
      std::cout << " " << live.targets[t] << "=" << stats.reads_per_target[t];
    }
    std::cout << "\n";
  }
  return stats;
}

/// One run's JSON object; field names predate the sweep mode, so older
/// artifact consumers keep working on single-run output.
util::JsonValue stats_to_json(const Options& options, const RunStats& stats) {
  util::JsonObject artifact;
  artifact.emplace_back("connections", util::JsonValue(options.connections));
  artifact.emplace_back("requests_per_connection",
                        util::JsonValue(options.requests));
  artifact.emplace_back(
      "server_threads",
      util::JsonValue(options.self_serve
                          ? static_cast<std::int64_t>(stats.server_threads)
                          : -1));
  artifact.emplace_back("write_fraction",
                        util::JsonValue(options.write_fraction));
  artifact.emplace_back("seed", util::JsonValue(options.seed));
  artifact.emplace_back("total_requests",
                        util::JsonValue(stats.total_requests));
  artifact.emplace_back("read_requests", util::JsonValue(stats.read_requests));
  artifact.emplace_back("write_requests",
                        util::JsonValue(stats.write_requests));
  artifact.emplace_back("errors", util::JsonValue(stats.errors));
  artifact.emplace_back("wall_ms", util::JsonValue(stats.wall_ms));
  artifact.emplace_back("requests_per_sec",
                        util::JsonValue(stats.requests_per_sec));
  artifact.emplace_back("read_requests_per_sec",
                        util::JsonValue(stats.read_requests_per_sec));
  util::JsonObject latency;
  latency.emplace_back("p50", util::JsonValue(stats.p50));
  latency.emplace_back("p90", util::JsonValue(stats.p90));
  latency.emplace_back("p99", util::JsonValue(stats.p99));
  latency.emplace_back("max", util::JsonValue(stats.max));
  artifact.emplace_back("latency_us", util::JsonValue(std::move(latency)));
  util::JsonObject read_latency;
  read_latency.emplace_back("p50", util::JsonValue(stats.read_p50));
  read_latency.emplace_back("p99", util::JsonValue(stats.read_p99));
  artifact.emplace_back("read_latency_us",
                        util::JsonValue(std::move(read_latency)));
  if (!stats.reads_per_target.empty()) {
    artifact.emplace_back(
        "targets", util::JsonValue(static_cast<std::int64_t>(
                       stats.reads_per_target.size())));
    util::JsonArray fanout;
    for (const std::uint64_t count : stats.reads_per_target) {
      fanout.push_back(util::JsonValue(static_cast<std::int64_t>(count)));
    }
    artifact.emplace_back("reads_per_target",
                          util::JsonValue(std::move(fanout)));
  }
  return util::JsonValue(std::move(artifact));
}

void write_json(const std::string& path, util::JsonValue value) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw IoError("cannot write " + path);
  }
  out << value.dump(2) << "\n";
}

int run(int argc, char** argv) {
  const Options options = parse_args(argc, argv);

  if (options.sweep_threads.empty()) {
    const RunStats stats = run_load(options);
    if (!options.json_path.empty()) {
      write_json(options.json_path, stats_to_json(options, stats));
    }
    if (options.require_fanout) {
      for (std::size_t t = 0; t < stats.reads_per_target.size(); ++t) {
        if (stats.reads_per_target[t] == 0) {
          std::cerr << "iokc-loadgen: target " << t << " served no reads; "
                    << "the read split is not fanning out\n";
          return 3;
        }
      }
    }
    return stats.errors == 0 ? 0 : 1;
  }

  // Sweep mode: same client traffic against a fresh self-served server per
  // thread count, so runs differ only in server-side parallelism.
  std::vector<RunStats> runs;
  runs.reserve(options.sweep_threads.size());
  for (const std::size_t threads : options.sweep_threads) {
    Options per_run = options;
    per_run.server_threads = threads;
    runs.push_back(run_load(per_run));
  }

  std::uint64_t errors = 0;
  util::JsonObject artifact;
  artifact.emplace_back("mode", util::JsonValue("sweep"));
  util::JsonArray sweep;
  for (const RunStats& stats : runs) {
    errors += stats.errors;
    sweep.push_back(stats_to_json(options, stats));
  }
  artifact.emplace_back("sweep", util::JsonValue(std::move(sweep)));
  const double first_read_rps = runs.front().read_requests_per_sec;
  const double last_read_rps = runs.back().read_requests_per_sec;
  const double scaling =
      first_read_rps > 0.0 ? last_read_rps / first_read_rps : 0.0;
  artifact.emplace_back("read_scaling_last_vs_first",
                        util::JsonValue(scaling));
  if (!options.json_path.empty()) {
    write_json(options.json_path, util::JsonValue(std::move(artifact)));
  }

  std::cout << "loadgen: sweep read req/s:";
  for (const RunStats& stats : runs) {
    std::cout << " " << stats.server_threads << "t="
              << util::format_double(stats.read_requests_per_sec, 0);
  }
  std::cout << " (scaling x" << util::format_double(scaling, 2) << ")\n";

  if (options.require_scaling > 0.0 &&
      scaling < options.require_scaling) {
    std::cerr << "iokc-loadgen: read throughput at "
              << runs.back().server_threads << " thread(s) is x"
              << util::format_double(scaling, 2) << " of the "
              << runs.front().server_threads << "-thread run, below the "
              << "--require-scaling " <<
              util::format_double(options.require_scaling, 2)
              << " gate\n";
    return 3;
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const iokc::Error& error) {
    std::cerr << "iokc-loadgen: " << error.what() << "\n";
    return 2;
  }
}
