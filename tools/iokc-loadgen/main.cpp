// iokc-loadgen: drives a knowledge service with N concurrent connections x M
// requests each, mixing read endpoints with a configurable fraction of
// knowledge/store writes, and reports latency percentiles and throughput.
//
//   iokc-loadgen --addr <host:port> | --self-serve [--threads <n>]
//                [--connections <n>] [--requests <n>]
//                [--write-fraction <0..1>] [--seed <n>] [--json <file>]
//
// --self-serve starts an in-process server on an ephemeral loopback port over
// an in-memory repository seeded with synthetic IOR knowledge, which makes
// the smoke test (and quick benchmarking) a single command with no daemon to
// manage. Exit status is nonzero when any request failed.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/knowledge/knowledge.hpp"
#include "src/persist/repository.hpp"
#include "src/svc/client.hpp"
#include "src/svc/server.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace {

using namespace iokc;

struct Options {
  std::string host;
  std::uint16_t port = 0;
  bool self_serve = false;
  std::size_t server_threads = 4;  // --self-serve worker pool
  std::size_t connections = 4;
  std::size_t requests = 50;
  double write_fraction = 0.1;
  std::uint64_t seed = 0x10ADF00D;
  std::string json_path;
};

struct WorkerResult {
  std::vector<double> latencies_us;
  std::uint64_t errors = 0;
  std::vector<std::string> error_samples;  // first few messages for the log
};

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw ConfigError(flag + " needs a value");
      }
      return argv[++i];
    };
    if (flag == "--addr") {
      const std::string address = need_value();
      const std::size_t colon = address.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == address.size()) {
        throw ConfigError("--addr must be <host>:<port>");
      }
      options.host = address.substr(0, colon);
      options.port = static_cast<std::uint16_t>(
          util::parse_i64(address.substr(colon + 1)));
    } else if (flag == "--self-serve") {
      options.self_serve = true;
    } else if (flag == "--threads") {
      options.server_threads =
          static_cast<std::size_t>(util::parse_i64(need_value()));
    } else if (flag == "--connections") {
      options.connections =
          static_cast<std::size_t>(util::parse_i64(need_value()));
    } else if (flag == "--requests") {
      options.requests =
          static_cast<std::size_t>(util::parse_i64(need_value()));
    } else if (flag == "--write-fraction") {
      options.write_fraction = std::stod(need_value());
    } else if (flag == "--seed") {
      options.seed = static_cast<std::uint64_t>(util::parse_i64(need_value()));
    } else if (flag == "--json") {
      options.json_path = need_value();
    } else {
      throw ConfigError("unknown flag " + flag);
    }
  }
  if (options.self_serve != options.host.empty()) {
    throw ConfigError("pass exactly one of --addr <host:port> | --self-serve");
  }
  if (options.connections == 0 || options.requests == 0) {
    throw ConfigError("--connections and --requests must be >= 1");
  }
  if (options.write_fraction < 0.0 || options.write_fraction > 1.0) {
    throw ConfigError("--write-fraction must be within [0, 1]");
  }
  return options;
}

/// A synthetic IOR knowledge object; `index` varies transfer size, task
/// count, and bandwidth so predict/recommend have a real spread to mine.
knowledge::Knowledge synthetic_knowledge(std::uint64_t index) {
  knowledge::Knowledge object;
  object.benchmark = "IOR";
  const std::uint64_t transfer_kib = 256u << (index % 4);  // 256k..2m
  const std::uint32_t tasks = 8u << (index % 3);           // 8/16/32
  object.command = "ior -a " + std::string(index % 2 == 0 ? "posix" : "mpiio") +
                   " -b 4m -t " + std::to_string(transfer_kib) + "k -s 4 -N " +
                   std::to_string(tasks) + " -o /scratch/loadgen" +
                   std::to_string(index);
  object.api = index % 2 == 0 ? "POSIX" : "MPIIO";
  object.num_tasks = tasks;
  object.num_nodes = 1 + tasks / 16;
  knowledge::OpSummary write;
  write.operation = "write";
  write.mean_bw_mib = 800.0 + 180.0 * static_cast<double>(index % 5);
  object.summaries.push_back(write);
  knowledge::OpSummary read;
  read.operation = "read";
  read.mean_bw_mib = 1000.0 + 150.0 * static_cast<double>(index % 5);
  object.summaries.push_back(read);
  return object;
}

/// One worker: one connection, `requests` mixed calls, deterministic per
/// (seed, worker) so reruns replay the same request stream.
WorkerResult run_worker(const Options& options, std::size_t worker,
                        const std::vector<std::int64_t>& knowledge_ids) {
  WorkerResult result;
  result.latencies_us.reserve(options.requests);
  svc::ClientOptions client_options;
  client_options.connect_retries = 9;
  svc::Client client =
      svc::Client::connect(options.host, options.port, client_options);
  const auto write_threshold = static_cast<std::uint64_t>(
      options.write_fraction * 1e9);
  for (std::size_t i = 0; i < options.requests; ++i) {
    const std::uint64_t roll = util::splitmix64(
        options.seed, worker * 1'000'003 + i);
    std::string endpoint;
    util::JsonObject params;
    if (roll % 1'000'000'000 < write_threshold) {
      endpoint = "knowledge/store";
      params.emplace_back(
          "object", synthetic_knowledge(roll % 97 + worker * 100).to_json());
    } else {
      switch ((roll >> 32) % 6) {
        case 0:
          endpoint = "health";
          break;
        case 1:
          endpoint = "stats";
          break;
        case 2:
          endpoint = "list";
          break;
        case 3:
          endpoint = "sql";
          params.emplace_back(
              "statement",
              util::JsonValue("SELECT id, command FROM performances"));
          break;
        case 4:
          if (!knowledge_ids.empty()) {
            endpoint = "anomaly";
            params.emplace_back(
                "id", util::JsonValue(
                          knowledge_ids[(roll >> 16) % knowledge_ids.size()]));
          } else {
            endpoint = "health";
          }
          break;
        default:
          endpoint = "predict";
          params.emplace_back(
              "command",
              util::JsonValue("ior -a posix -b 4m -t 1m -s 4 -N 16 -o /s/f"));
          break;
      }
    }
    const auto started = std::chrono::steady_clock::now();
    try {
      const svc::Response response =
          client.call(endpoint, util::JsonValue(std::move(params)));
      if (!response.ok) {
        ++result.errors;
        if (result.error_samples.size() < 3) {
          result.error_samples.push_back(endpoint + ": " + response.error);
        }
      }
    } catch (const Error& error) {
      ++result.errors;
      if (result.error_samples.size() < 3) {
        result.error_samples.push_back(endpoint + ": " + error.what());
      }
      client = svc::Client::connect(options.host, options.port,
                                    client_options);
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - started);
    result.latencies_us.push_back(static_cast<double>(elapsed.count()));
  }
  return result;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

int run(int argc, char** argv) {
  const Options parsed = parse_args(argc, argv);
  Options options = parsed;

  // --self-serve: in-process server over a seeded in-memory repository.
  std::optional<persist::KnowledgeRepository> repository;
  std::optional<svc::Server> server;
  if (options.self_serve) {
    repository.emplace();
    for (std::uint64_t i = 0; i < 12; ++i) {
      repository->store(synthetic_knowledge(i));
    }
    svc::ServerConfig config;
    config.threads = options.server_threads;
    server.emplace(*repository, config);
    server->start();
    // start() returning means the listener socket is bound; prove it before
    // any worker dials in, so a failed startup dies here with a clear
    // message instead of as N confusing connect errors later.
    if (!server->running() || server->port() == 0) {
      throw IoError("self-serve server failed to start a listener");
    }
    std::cout << "loadgen: self-serve listening on 127.0.0.1:"
              << server->port() << "\n";
    options.host = "127.0.0.1";
    options.port = server->port();
  }

  // Discover knowledge ids once so anomaly requests target real objects.
  std::vector<std::int64_t> knowledge_ids;
  {
    svc::ClientOptions client_options;
    client_options.connect_retries = 9;
    svc::Client probe =
        svc::Client::connect(options.host, options.port, client_options);
    const svc::Response listed = probe.call("list");
    if (listed.ok) {
      for (const util::JsonValue& entry :
           listed.result.at("knowledge").as_array()) {
        knowledge_ids.push_back(entry.at("id").as_int());
      }
    }
  }

  const auto started = std::chrono::steady_clock::now();
  std::vector<WorkerResult> results(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t w = 0; w < options.connections; ++w) {
    workers.emplace_back([&, w] {
      try {
        results[w] = run_worker(options, w, knowledge_ids);
      } catch (const Error& error) {
        results[w].errors += 1;
        results[w].error_samples.push_back(error.what());
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double wall_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count()) /
      1000.0;

  std::vector<double> latencies;
  std::uint64_t errors = 0;
  for (const WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    errors += result.errors;
    for (const std::string& sample : result.error_samples) {
      std::cerr << "request error: " << sample << "\n";
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p90 = percentile(latencies, 0.90);
  const double p99 = percentile(latencies, 0.99);
  const double max = latencies.empty() ? 0.0 : latencies.back();
  const double throughput =
      wall_ms > 0.0 ? static_cast<double>(latencies.size()) * 1000.0 / wall_ms
                    : 0.0;

  if (server.has_value()) {
    server->stop();  // graceful drain; also validates clean shutdown
  }

  std::cout << "loadgen: " << options.connections << " connection(s) x "
            << options.requests << " request(s), write-fraction "
            << util::format_double(parsed.write_fraction, 2) << "\n"
            << "  completed " << latencies.size() << " request(s) in "
            << util::format_double(wall_ms, 1) << " ms ("
            << util::format_double(throughput, 0) << " req/s), " << errors
            << " error(s)\n"
            << "  latency us: p50 " << util::format_double(p50, 0) << ", p90 "
            << util::format_double(p90, 0) << ", p99 "
            << util::format_double(p99, 0) << ", max "
            << util::format_double(max, 0) << "\n";

  if (!options.json_path.empty()) {
    util::JsonObject artifact;
    artifact.emplace_back("connections",
                          util::JsonValue(options.connections));
    artifact.emplace_back("requests_per_connection",
                          util::JsonValue(options.requests));
    artifact.emplace_back(
        "server_threads",
        util::JsonValue(options.self_serve
                            ? static_cast<std::int64_t>(options.server_threads)
                            : -1));
    artifact.emplace_back("write_fraction",
                          util::JsonValue(parsed.write_fraction));
    artifact.emplace_back("seed", util::JsonValue(options.seed));
    artifact.emplace_back("total_requests",
                          util::JsonValue(latencies.size()));
    artifact.emplace_back("errors", util::JsonValue(errors));
    artifact.emplace_back("wall_ms", util::JsonValue(wall_ms));
    artifact.emplace_back("requests_per_sec", util::JsonValue(throughput));
    util::JsonObject latency;
    latency.emplace_back("p50", util::JsonValue(p50));
    latency.emplace_back("p90", util::JsonValue(p90));
    latency.emplace_back("p99", util::JsonValue(p99));
    latency.emplace_back("max", util::JsonValue(max));
    artifact.emplace_back("latency_us", util::JsonValue(std::move(latency)));
    std::ofstream out(options.json_path, std::ios::trunc);
    if (!out) {
      throw IoError("cannot write " + options.json_path);
    }
    out << util::JsonValue(std::move(artifact)).dump(2) << "\n";
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const iokc::Error& error) {
    std::cerr << "iokc-loadgen: " << error.what() << "\n";
    return 2;
  }
}
