// iokc-lint CLI. Usage:
//
//   iokc-lint [--no-layering] [--no-pragma-once] [--no-exceptions]
//             [--no-format-literals] <dir> [<dir>...]
//
// Lints every .hpp/.cpp under each directory and prints one diagnostic per
// line as `file:line: [rule] message`. Exits 0 when clean, 1 when any
// diagnostic fired, 2 on usage errors.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/iokc-lint/lint.hpp"

int main(int argc, char** argv) {
  iokc::lint::Options options;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-layering") {
      options.check_layering = false;
    } else if (arg == "--no-pragma-once") {
      options.check_pragma_once = false;
    } else if (arg == "--no-exceptions") {
      options.check_exceptions = false;
    } else if (arg == "--no-format-literals") {
      options.check_format_literals = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: iokc-lint [--no-layering] [--no-pragma-once] "
          "[--no-exceptions] [--no-format-literals] <dir> [<dir>...]\n");
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "iokc-lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "iokc-lint: no directories given (try --help)\n");
    return 2;
  }
  for (const std::string& root : roots) {
    if (!std::filesystem::is_directory(root)) {
      std::fprintf(stderr, "iokc-lint: not a directory: '%s'\n", root.c_str());
      return 2;
    }
  }

  std::size_t total = 0;
  for (const std::string& root : roots) {
    for (const iokc::lint::Diagnostic& diagnostic :
         iokc::lint::lint_tree(root, options)) {
      std::printf("%s\n", iokc::lint::to_string(diagnostic).c_str());
      ++total;
    }
  }
  if (total != 0) {
    std::fprintf(stderr, "iokc-lint: %zu diagnostic(s)\n", total);
    return 1;
  }
  return 0;
}
