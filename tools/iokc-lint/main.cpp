// iokc-lint CLI. Usage:
//
//   iokc-lint [--no-layering] [--no-pragma-once] [--no-exceptions]
//             [--no-format-literals] [--no-blocking-under-lock]
//             [--no-lock-order] [--no-raw-mutex]
//             [--lock-graph-dot <path>] <dir> [<dir>...]
//
// Lints every .hpp/.cpp under each directory and prints one diagnostic per
// line as `file:line: [rule] message`. All roots are analyzed as one tree:
// blocking markers and mutex names declared in one root apply in the others,
// and the lock-order graph is global. `--lock-graph-dot` writes the
// acquisition graph as Graphviz DOT (written even when diagnostics fire, so
// CI can always archive it). Exits 0 when clean, 1 when any diagnostic
// fired, 2 on usage errors.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tools/iokc-lint/lint.hpp"

int main(int argc, char** argv) {
  iokc::lint::Options options;
  std::vector<std::string> roots;
  std::string dot_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-layering") {
      options.check_layering = false;
    } else if (arg == "--no-pragma-once") {
      options.check_pragma_once = false;
    } else if (arg == "--no-exceptions") {
      options.check_exceptions = false;
    } else if (arg == "--no-format-literals") {
      options.check_format_literals = false;
    } else if (arg == "--no-blocking-under-lock") {
      options.check_blocking_under_lock = false;
    } else if (arg == "--no-lock-order") {
      options.check_lock_order = false;
    } else if (arg == "--no-raw-mutex") {
      options.check_raw_mutex = false;
    } else if (arg == "--lock-graph-dot") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "iokc-lint: --lock-graph-dot needs a path\n");
        return 2;
      }
      dot_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: iokc-lint [--no-layering] [--no-pragma-once] "
          "[--no-exceptions] [--no-format-literals]\n"
          "                 [--no-blocking-under-lock] [--no-lock-order] "
          "[--no-raw-mutex]\n"
          "                 [--lock-graph-dot <path>] <dir> [<dir>...]\n");
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "iokc-lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "iokc-lint: no directories given (try --help)\n");
    return 2;
  }
  for (const std::string& root : roots) {
    if (!std::filesystem::is_directory(root)) {
      std::fprintf(stderr, "iokc-lint: not a directory: '%s'\n", root.c_str());
      return 2;
    }
  }

  const iokc::lint::TreeAnalysis analysis =
      iokc::lint::analyze_tree(roots, options);
  if (!dot_path.empty()) {
    std::ofstream out(dot_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "iokc-lint: cannot write '%s'\n", dot_path.c_str());
      return 2;
    }
    out << iokc::lint::lock_graph_dot(analysis.lock_nodes,
                                      analysis.lock_edges);
  }
  for (const iokc::lint::Diagnostic& diagnostic : analysis.diagnostics) {
    std::printf("%s\n", iokc::lint::to_string(diagnostic).c_str());
  }
  if (!analysis.diagnostics.empty()) {
    std::fprintf(stderr, "iokc-lint: %zu diagnostic(s)\n",
                 analysis.diagnostics.size());
    return 1;
  }
  return 0;
}
