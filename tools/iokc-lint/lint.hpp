// iokc-lint: repo-specific static checks that no generic tool knows about.
//
// Seven rules, each reported as `file:line: [rule] message`:
//
//   layering             A module may only include modules from strictly
//                        lower layers (see kModules in lint.cpp):
//                          util
//                          < sim/db/jube/knowledge < fs < iostack
//                          < generators/extract/persist
//                          < analysis < usage < cycle < cli
//   pragma-once          Every .hpp must contain `#pragma once`.
//   exception-ownership  Exception subclasses from src/util/error.hpp may
//                        only be thrown by their owning subsystems; the root
//                        iokc::Error and raw std:: exceptions may not be
//                        thrown at all.
//   format-literal       The format argument of printf-family calls must be
//                        a string literal.
//   blocking-under-lock  No blocking call (fsync/send/recv/poll/..., plus
//                        any function whose declaration carries an
//                        `iokc-lint: blocking` marker comment) lexically
//                        inside a util::LockGuard/UniqueLock scope.
//   lock-order           The lock-acquisition graph built from nested guard
//                        scopes must respect the declared LockRank order
//                        (inner lock strictly lower) and must be acyclic.
//   raw-mutex            Bare std::mutex / std::lock_guard & friends are
//                        banned outside util/; use the annotated wrappers
//                        from src/util/mutex.hpp.
//
// blocking-under-lock, lock-order, and raw-mutex findings can be waived with
// a marker comment on the flagged line or the line above:
//   `iokc-lint: allow(<rule>): <justification>`
// (as a `//` comment). The justification is mandatory: an allow() without
// one is itself a diagnostic. This keeps accepted debt — e.g. the WAL
// fsync-on-commit — visible and searchable instead of silently waived.
//
// The checks operate on a "scrubbed" copy of each source file (comments and
// string-literal bodies blanked, offsets preserved) so commented-out code and
// string contents cannot trigger false positives; the marker comments above
// are the one thing read from the raw text.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace iokc::lint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Renders a diagnostic as `file:line: [rule] message`.
std::string to_string(const Diagnostic& diagnostic);

struct Options {
  bool check_layering = true;
  bool check_pragma_once = true;
  bool check_exceptions = true;
  bool check_format_literals = true;
  bool check_blocking_under_lock = true;
  bool check_lock_order = true;
  bool check_raw_mutex = true;
  /// Function names treated as blocking by blocking-under-lock, in addition
  /// to the built-in syscall list. analyze_tree seeds this from
  /// `iokc-lint: blocking` declaration markers across every root.
  std::vector<std::string> blocking_functions;
};

/// One declared util::Mutex / util::SharedMutex: its diagnostic name and
/// LockRank as written in the declaration.
struct LockNode {
  std::string name;  // e.g. "db.journal"
  int rank = -1;     // resolved LockRank value; -1 when unknown
  std::string file;
  std::size_t line = 0;
};

/// One edge of the lock-acquisition graph: a guard on `to` declared
/// lexically inside the scope of a guard on `from`.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  std::size_t line = 0;  // line acquiring `to`
};

/// Whole-tree analysis result: diagnostics plus the lock graph (for the
/// `--lock-graph-dot` export and the CI artifact).
struct TreeAnalysis {
  std::vector<Diagnostic> diagnostics;
  std::vector<LockNode> lock_nodes;
  std::vector<LockEdge> lock_edges;
};

/// Names whose declaration line carries an `iokc-lint: blocking` marker.
std::vector<std::string> collect_blocking_markers(std::string_view text);

/// Renders the lock graph as Graphviz DOT (nodes labelled with their rank,
/// edges with the acquisition site).
std::string lock_graph_dot(const std::vector<LockNode>& nodes,
                           const std::vector<LockEdge>& edges);

/// Layer rank of a module directory under src/ (0 = lowest). Returns -1 for
/// unknown modules, which are exempt from the layering rule.
int module_rank(std::string_view module);

/// Blanks comments and string/char-literal bodies (quotes retained) while
/// preserving every byte offset and newline, so diagnostics computed on the
/// scrubbed text map 1:1 onto the original file.
std::string scrub_source(std::string_view text);

/// Lints one in-memory file. `module` is the layering module the file belongs
/// to ("" when unknown; layering is then skipped for this file).
std::vector<Diagnostic> lint_file(const std::string& path,
                                  std::string_view text,
                                  const std::string& module,
                                  const Options& options = {});

/// Walks `root` recursively and lints every .hpp/.cpp file. The first
/// directory component below `root` names the file's module when it matches
/// a known module.
std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& options = {});

/// Lints every root in one analysis: blocking markers and mutex declarations
/// collected anywhere apply everywhere, and the lock graph (rank order +
/// cycle check) is global. This is what the CLI runs.
TreeAnalysis analyze_tree(const std::vector<std::string>& roots,
                          const Options& options = {});

}  // namespace iokc::lint
