// iokc-lint: repo-specific static checks that no generic tool knows about.
//
// Four rules, each reported as `file:line: [rule] message`:
//
//   layering             A module may only include modules from strictly
//                        lower layers (see kModules in lint.cpp):
//                          util
//                          < sim/db/jube/knowledge < fs < iostack
//                          < generators/extract/persist
//                          < analysis < usage < cycle < cli
//   pragma-once          Every .hpp must contain `#pragma once`.
//   exception-ownership  Exception subclasses from src/util/error.hpp may
//                        only be thrown by their owning subsystems; the root
//                        iokc::Error and raw std:: exceptions may not be
//                        thrown at all.
//   format-literal       The format argument of printf-family calls must be
//                        a string literal.
//
// The checks operate on a "scrubbed" copy of each source file (comments and
// string-literal bodies blanked, offsets preserved) so commented-out code and
// string contents cannot trigger false positives.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace iokc::lint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Renders a diagnostic as `file:line: [rule] message`.
std::string to_string(const Diagnostic& diagnostic);

struct Options {
  bool check_layering = true;
  bool check_pragma_once = true;
  bool check_exceptions = true;
  bool check_format_literals = true;
};

/// Layer rank of a module directory under src/ (0 = lowest). Returns -1 for
/// unknown modules, which are exempt from the layering rule.
int module_rank(std::string_view module);

/// Blanks comments and string/char-literal bodies (quotes retained) while
/// preserving every byte offset and newline, so diagnostics computed on the
/// scrubbed text map 1:1 onto the original file.
std::string scrub_source(std::string_view text);

/// Lints one in-memory file. `module` is the layering module the file belongs
/// to ("" when unknown; layering is then skipped for this file).
std::vector<Diagnostic> lint_file(const std::string& path,
                                  std::string_view text,
                                  const std::string& module,
                                  const Options& options = {});

/// Walks `root` recursively and lints every .hpp/.cpp file. The first
/// directory component below `root` names the file's module when it matches
/// a known module.
std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& options = {});

}  // namespace iokc::lint
