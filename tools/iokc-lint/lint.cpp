#include "tools/iokc-lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace iokc::lint {

namespace {

// ---------------------------------------------------------------------------
// Layering table. Modules may include themselves and strictly lower ranks.
// Parallel siblings share a rank, so cross-includes between them (e.g.
// extract <-> persist) are upward edges and rejected.
// ---------------------------------------------------------------------------

constexpr std::array<std::pair<std::string_view, int>, 17> kModules = {{
    {"util", 0},
    {"obs", 1},
    {"sim", 2},
    {"db", 2},
    {"jube", 2},
    {"knowledge", 2},
    {"fs", 3},
    {"iostack", 4},
    {"generators", 5},
    {"extract", 5},
    {"persist", 5},
    {"analysis", 6},
    {"usage", 7},
    {"cycle", 8},
    {"svc", 8},   // knowledge service; sibling of cycle, never includes it
    {"repl", 9},  // replication/sharding drives servers, repositories
    {"cli", 10},
}};

// ---------------------------------------------------------------------------
// Intra-db file layering. src/db is itself a layered stack — the planner
// consults indexes but indexes never see the planner, and only database.cpp
// ties everything together. A db file may include its own header and
// strictly lower-ranked db files. Every src/db file must appear here, so
// adding a file without deciding its layer is itself a diagnostic.
// ---------------------------------------------------------------------------

constexpr std::array<std::pair<std::string_view, int>, 9> kDbFiles = {{
    {"value", 0},
    {"schema", 1},
    {"expr", 2},
    {"index", 3},
    {"table", 4},
    {"sql", 5},
    {"planner", 6},
    {"journal", 7},
    {"database", 8},
}};

int db_file_rank(std::string_view stem) {
  for (const auto& [name, rank] : kDbFiles) {
    if (name == stem) {
      return rank;
    }
  }
  return -1;
}

/// The JSON stack inside src/util is itself layered: the buffer primitive
/// under the writer, the writer under the stage-1 scanner, the scanner
/// under the tree parser. Unlike kDbFiles this table is not exhaustive for
/// its directory — util files outside it are unconstrained — so only pairs
/// where BOTH stems appear are ranked.
constexpr std::array<std::pair<std::string_view, int>, 4> kUtilJsonFiles = {{
    {"padded_string", 0},
    {"json_writer", 1},
    {"json_index", 2},
    {"json", 3},
}};

int util_json_file_rank(std::string_view stem) {
  for (const auto& [name, rank] : kUtilJsonFiles) {
    if (name == stem) {
      return rank;
    }
  }
  return -1;
}

/// "src/db/sql.hpp" -> "sql"; "src/db/table.cpp" -> "table".
std::string_view file_stem(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  if (slash != std::string_view::npos) {
    path.remove_prefix(slash + 1);
  }
  const std::size_t dot = path.rfind('.');
  if (dot != std::string_view::npos) {
    path = path.substr(0, dot);
  }
  return path;
}

// ---------------------------------------------------------------------------
// Exception ownership. Maps each error type from src/util/error.hpp to the
// modules allowed to throw it. ConfigError is cross-cutting (any module
// validates caller configuration) and therefore absent from the table.
// ---------------------------------------------------------------------------

struct ErrorOwners {
  std::string_view error;
  std::vector<std::string_view> owners;
};

const std::vector<ErrorOwners>& exception_owners() {
  static const std::vector<ErrorOwners> kOwners = {
      // Malformed input text: the parsing layers.
      {"ParseError",
       {"util", "db", "fs", "iostack", "generators", "jube", "knowledge",
        "extract", "svc", "repl"}},
      // Database constraint violations: the store and its persistence layer.
      {"DbError", {"db", "persist"}},
      // Simulation invariants: the simulated cluster stack.
      {"SimError", {"sim", "fs", "iostack", "generators"}},
      // Host filesystem I/O: only layers that touch the real filesystem.
      // sim/fs/iostack/generators/knowledge/usage are pure in-memory models.
      {"IoError",
       {"util", "obs", "db", "jube", "extract", "persist", "analysis",
        "cycle", "svc", "repl", "cli"}},
      // CheckError is reserved for the IOKC_CHECK machinery in util.
      {"CheckError", {"util"}},
  };
  return kOwners;
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t line_of_offset(std::string_view text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(offset, text.size())),
                            '\n'));
}

// ---------------------------------------------------------------------------
// Per-rule scanners. All operate on the scrubbed text; `raw` is consulted
// only where literal contents matter (include paths).
// ---------------------------------------------------------------------------

void check_layering(const std::string& path, std::string_view raw,
                    std::string_view scrubbed, const std::string& module,
                    std::vector<Diagnostic>& out) {
  const int rank = module_rank(module);
  if (rank < 0) {
    return;
  }
  std::size_t pos = 0;
  while ((pos = scrubbed.find("#include", pos)) != std::string_view::npos) {
    const std::size_t directive = pos;
    pos += 8;
    // Read the include path from the raw text: the scrubber blanks string
    // bodies, and quoted include paths are lexed as string literals.
    std::size_t open = directive + 8;
    while (open < raw.size() && (raw[open] == ' ' || raw[open] == '\t')) {
      ++open;
    }
    if (open >= raw.size() || raw[open] != '"') {
      continue;  // <system> include or malformed; not our concern
    }
    const std::size_t close = raw.find('"', open + 1);
    if (close == std::string_view::npos) {
      continue;
    }
    const std::string_view target = raw.substr(open + 1, close - open - 1);
    if (target.substr(0, 4) != "src/") {
      continue;
    }
    const std::size_t slash = target.find('/', 4);
    if (slash == std::string_view::npos) {
      continue;
    }
    const std::string_view included(target.substr(4, slash - 4));
    if (included == module) {
      if (module == "db") {
        // db-internal include: enforce the intra-db file ranks (own header
        // always allowed).
        const std::string_view own_stem = file_stem(path);
        const std::string_view target_stem = file_stem(target);
        if (own_stem != target_stem) {
          const int own = db_file_rank(own_stem);
          const int dep = db_file_rank(target_stem);
          if (own < 0 || dep < 0) {
            out.push_back(
                {path, line_of_offset(scrubbed, directive), "layering",
                 "db file '" +
                     std::string(own < 0 ? own_stem : target_stem) +
                     "' is not in the intra-db layering table"});
          } else if (dep >= own) {
            out.push_back(
                {path, line_of_offset(scrubbed, directive), "layering",
                 "db file '" + std::string(own_stem) + "' (layer " +
                     std::to_string(own) + ") must not include '" +
                     std::string(target_stem) + "' (layer " +
                     std::to_string(dep) + "): " + std::string(target)});
          }
        }
      } else if (module == "util") {
        // util-internal include: enforce the JSON-stack file ranks when
        // both ends are in the table (own header always allowed; util
        // files outside the table are unconstrained).
        const std::string_view own_stem = file_stem(path);
        const std::string_view target_stem = file_stem(target);
        if (own_stem != target_stem) {
          const int own = util_json_file_rank(own_stem);
          const int dep = util_json_file_rank(target_stem);
          if (own >= 0 && dep >= 0 && dep >= own) {
            out.push_back(
                {path, line_of_offset(scrubbed, directive), "layering",
                 "util json file '" + std::string(own_stem) + "' (layer " +
                     std::to_string(own) + ") must not include '" +
                     std::string(target_stem) + "' (layer " +
                     std::to_string(dep) + "): " + std::string(target)});
          }
        }
      }
      continue;
    }
    const int included_rank = module_rank(included);
    if (included_rank < 0) {
      out.push_back({path, line_of_offset(scrubbed, directive), "layering",
                     "include of unknown module '" + std::string(included) +
                         "' (" + std::string(target) + ")"});
      continue;
    }
    if (included_rank >= rank) {
      out.push_back(
          {path, line_of_offset(scrubbed, directive), "layering",
           "module '" + module + "' (layer " + std::to_string(rank) +
               ") must not include '" + std::string(included) + "' (layer " +
               std::to_string(included_rank) + "): " + std::string(target)});
    }
  }
}

void check_pragma_once(const std::string& path, std::string_view scrubbed,
                       std::vector<Diagnostic>& out) {
  if (scrubbed.find("#pragma once") == std::string_view::npos) {
    out.push_back(
        {path, 1, "pragma-once", "header is missing '#pragma once'"});
  }
}

void check_exceptions(const std::string& path, std::string_view scrubbed,
                      const std::string& module,
                      std::vector<Diagnostic>& out) {
  std::size_t pos = 0;
  while ((pos = scrubbed.find("throw", pos)) != std::string_view::npos) {
    const std::size_t keyword = pos;
    pos += 5;
    if (keyword > 0 && is_identifier_char(scrubbed[keyword - 1])) {
      continue;  // e.g. "rethrow"
    }
    if (pos < scrubbed.size() && is_identifier_char(scrubbed[pos])) {
      continue;  // e.g. "throwing"
    }
    std::size_t cursor = pos;
    while (cursor < scrubbed.size() &&
           std::isspace(static_cast<unsigned char>(scrubbed[cursor]))) {
      ++cursor;
    }
    if (cursor >= scrubbed.size() || scrubbed[cursor] == ';') {
      continue;  // bare rethrow: `throw;`
    }
    // Collect the thrown type name: identifiers and `::`.
    std::size_t name_end = cursor;
    while (name_end < scrubbed.size() &&
           (is_identifier_char(scrubbed[name_end]) ||
            scrubbed[name_end] == ':')) {
      ++name_end;
    }
    std::string name(scrubbed.substr(cursor, name_end - cursor));
    const std::size_t line = line_of_offset(scrubbed, keyword);
    if (name.rfind("std::", 0) == 0) {
      out.push_back({path, line, "exception-ownership",
                     "raw '" + name +
                         "' thrown; use the iokc::Error hierarchy from "
                         "src/util/error.hpp"});
      continue;
    }
    // Normalise `iokc::X` / `::iokc::X` to `X`.
    for (const std::string_view prefix : {"::iokc::", "iokc::"}) {
      if (name.rfind(prefix, 0) == 0) {
        name = name.substr(prefix.size());
        break;
      }
    }
    if (name == "Error") {
      out.push_back({path, line, "exception-ownership",
                     "the root iokc::Error must not be thrown directly; "
                     "throw a subsystem-specific subclass"});
      continue;
    }
    for (const ErrorOwners& entry : exception_owners()) {
      if (name != entry.error) {
        continue;
      }
      const bool owned = module.empty() ||
                         std::find(entry.owners.begin(), entry.owners.end(),
                                   module) != entry.owners.end();
      if (!owned) {
        std::string owners;
        for (const std::string_view owner : entry.owners) {
          owners += owners.empty() ? "" : ", ";
          owners += owner;
        }
        out.push_back({path, line, "exception-ownership",
                       "module '" + module + "' must not throw " + name +
                           " (owned by: " + owners + ")"});
      }
      break;
    }
  }
}

// Format-string argument position for each printf-family function.
constexpr std::array<std::pair<std::string_view, std::size_t>, 6> kPrintfLike =
    {{
        {"printf", 0},
        {"vprintf", 0},
        {"fprintf", 1},
        {"dprintf", 1},
        {"sprintf", 1},
        {"snprintf", 2},
    }};

// Splits the top-level comma-separated argument list starting at the opening
// parenthesis. Returns the trimmed arguments, or nullopt-ish empty on
// unbalanced input.
std::vector<std::string_view> split_call_args(std::string_view scrubbed,
                                              std::size_t open_paren) {
  std::vector<std::string_view> args;
  int depth = 0;
  std::size_t arg_start = open_paren + 1;
  for (std::size_t i = open_paren; i < scrubbed.size(); ++i) {
    const char c = scrubbed[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        args.push_back(scrubbed.substr(arg_start, i - arg_start));
        return args;
      }
    } else if (c == ',' && depth == 1) {
      args.push_back(scrubbed.substr(arg_start, i - arg_start));
      arg_start = i + 1;
    }
  }
  return {};  // unbalanced; give up quietly
}

std::string_view trim_view(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

void check_format_literals(const std::string& path, std::string_view scrubbed,
                           std::vector<Diagnostic>& out) {
  for (const auto& [function, format_index] : kPrintfLike) {
    std::size_t pos = 0;
    while ((pos = scrubbed.find(function, pos)) != std::string_view::npos) {
      const std::size_t name_start = pos;
      pos += function.size();
      // Must be a standalone identifier (allow std:: / :: qualification,
      // which ends in ':' right before the name).
      if (name_start > 0 && is_identifier_char(scrubbed[name_start - 1])) {
        continue;
      }
      std::size_t cursor = name_start + function.size();
      while (cursor < scrubbed.size() &&
             std::isspace(static_cast<unsigned char>(scrubbed[cursor]))) {
        ++cursor;
      }
      if (cursor >= scrubbed.size() || scrubbed[cursor] != '(') {
        continue;  // declaration, comment mention, function pointer, ...
      }
      const std::vector<std::string_view> args =
          split_call_args(scrubbed, cursor);
      if (args.size() <= format_index) {
        continue;  // wrong arity: not the libc function
      }
      const std::string_view format = trim_view(args[format_index]);
      if (format.empty() || format.front() != '"') {
        out.push_back(
            {path, line_of_offset(scrubbed, name_start), "format-literal",
             "format argument of " + std::string(function) +
                 " must be a string literal, got '" + std::string(format) +
                 "'"});
      }
    }
  }
}

bool has_extension(const std::filesystem::path& path,
                   std::string_view extension) {
  return path.extension().string() == extension;
}

// ---------------------------------------------------------------------------
// Concurrency passes: blocking-under-lock, lock-order, raw-mutex.
// ---------------------------------------------------------------------------

// The marker strings are assembled from two pieces so that this file — which
// the repo check lints too — never contains the full marker sequence itself.
const std::string& allow_marker() {
  static const std::string kMarker = std::string("iokc-lint: ") + "allow(";
  return kMarker;
}

const std::string& blocking_marker() {
  static const std::string kMarker = std::string("iokc-lint: ") + "blocking";
  return kMarker;
}

// Syscall-ish names that block by nature. Matched as free-function calls
// (optionally ::-qualified, never behind `.` or `->`), so member functions
// sharing a name do not collide; repo-specific blocking *methods* are opted
// in via declaration markers instead, and those do match member calls.
const std::vector<std::string>& builtin_blocking_functions() {
  static const std::vector<std::string> kNames = {
      "fsync",  "fdatasync", "recv",      "send",        "poll",
      "select", "accept",    "connect",   "system",      "fopen",
      "fread",  "fwrite",    "fflush",    "fclose",      "sleep",
      "usleep", "nanosleep", "sleep_for", "sleep_until",
  };
  return kNames;
}

// LockRank values, mirrored from src/util/mutex.hpp.
constexpr std::array<std::pair<std::string_view, int>, 7> kLockRanks = {{
    {"kUtil", 0},
    {"kObs", 10},
    {"kDb", 20},
    {"kPersist", 30},
    {"kSim", 40},
    {"kCycle", 50},
    {"kSvc", 60},
}};

int lock_rank_value(std::string_view token) {
  for (const auto& [name, value] : kLockRanks) {
    if (name == token) {
      return value;
    }
  }
  return -1;
}

/// True when text[pos, pos + name.size()) is `name` as a whole identifier.
bool token_at(std::string_view text, std::size_t pos, std::string_view name) {
  if (text.compare(pos, name.size(), name) != 0) {
    return false;
  }
  if (pos > 0 && is_identifier_char(text[pos - 1])) {
    return false;
  }
  const std::size_t end = pos + name.size();
  return end >= text.size() || !is_identifier_char(text[end]);
}

std::size_t skip_spaces(std::string_view text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

std::size_t scan_identifier(std::string_view text, std::size_t pos) {
  while (pos < text.size() && is_identifier_char(text[pos])) {
    ++pos;
  }
  return pos;
}

/// Matching closer for the bracket at `open`, tracking (), {} and [].
std::size_t find_balanced_close(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '{' || c == '[') {
      ++depth;
    } else if (c == ')' || c == '}' || c == ']') {
      --depth;
      if (depth == 0) {
        return i;
      }
    }
  }
  return std::string_view::npos;
}

/// The trailing identifier of an expression: "self->write_mutex_" -> the
/// member name. Empty when the expression does not end in an identifier.
std::string trailing_identifier(std::string_view expr) {
  std::size_t end = expr.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(expr[end - 1]))) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && is_identifier_char(expr[begin - 1])) {
    --begin;
  }
  return std::string(expr.substr(begin, end - begin));
}

/// One lexical guard scope: from the guard declaration to the end of its
/// enclosing block.
struct GuardScope {
  std::size_t decl = 0;  // offset of the guard type token
  std::size_t end = 0;   // offset of the enclosing block's closing brace
  std::string mutex_var;  // trailing identifier of the guarded expression
};

std::vector<GuardScope> find_guard_scopes(std::string_view scrubbed) {
  std::vector<GuardScope> scopes;
  for (const std::string_view token :
       {std::string_view("LockGuard"), std::string_view("SharedLockGuard"),
        std::string_view("UniqueLock")}) {
    std::size_t pos = 0;
    while ((pos = scrubbed.find(token, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += token.size();
      if (!token_at(scrubbed, start, token)) {
        continue;
      }
      // A declaration reads `<token> <variable>(<mutex expr>)` (or with
      // braces). Anything else — the class definition, a deleted copy ctor
      // parameter — lacks the variable name and is skipped.
      std::size_t cursor = skip_spaces(scrubbed, start + token.size());
      const std::size_t var_begin = cursor;
      cursor = scan_identifier(scrubbed, cursor);
      if (cursor == var_begin) {
        continue;
      }
      cursor = skip_spaces(scrubbed, cursor);
      if (cursor >= scrubbed.size() ||
          (scrubbed[cursor] != '(' && scrubbed[cursor] != '{')) {
        continue;
      }
      const std::size_t close = find_balanced_close(scrubbed, cursor);
      if (close == std::string_view::npos) {
        continue;
      }
      const std::string mutex_var = trailing_identifier(
          scrubbed.substr(cursor + 1, close - cursor - 1));
      if (mutex_var.empty()) {
        continue;
      }
      // The scope runs to the end of the enclosing block: the first '}'
      // that closes a brace opened *before* the declaration.
      std::size_t scope_end = scrubbed.size();
      int depth = 0;
      for (std::size_t i = close; i < scrubbed.size(); ++i) {
        const char c = scrubbed[i];
        if (c == '{') {
          ++depth;
        } else if (c == '}') {
          if (depth == 0) {
            scope_end = i;
            break;
          }
          --depth;
        }
      }
      scopes.push_back({start, scope_end, mutex_var});
    }
  }
  std::sort(scopes.begin(), scopes.end(),
            [](const GuardScope& a, const GuardScope& b) {
              return a.decl < b.decl;
            });
  return scopes;
}

/// One `util::Mutex name_{LockRank::kX, "diag.name"};` declaration.
struct MutexDecl {
  std::string var;
  std::string name;
  int rank = -1;
  std::size_t line = 0;
};

std::vector<MutexDecl> find_mutex_decls(std::string_view raw,
                                        std::string_view scrubbed) {
  std::vector<MutexDecl> decls;
  for (const std::string_view token :
       {std::string_view("Mutex"), std::string_view("SharedMutex")}) {
    std::size_t pos = 0;
    while ((pos = scrubbed.find(token, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += token.size();
      if (!token_at(scrubbed, start, token)) {
        continue;
      }
      std::size_t cursor = skip_spaces(scrubbed, start + token.size());
      const std::size_t var_begin = cursor;
      cursor = scan_identifier(scrubbed, cursor);
      if (cursor == var_begin) {
        continue;  // the class definition or a ctor signature, not a variable
      }
      const std::string var(scrubbed.substr(var_begin, cursor - var_begin));
      cursor = skip_spaces(scrubbed, cursor);
      if (cursor >= scrubbed.size() ||
          (scrubbed[cursor] != '(' && scrubbed[cursor] != '{')) {
        continue;
      }
      const std::size_t close = find_balanced_close(scrubbed, cursor);
      if (close == std::string_view::npos) {
        continue;
      }
      // Rank: the LockRank:: token inside the initializer (scrubbed text).
      const std::string_view init = scrubbed.substr(cursor, close - cursor);
      const std::size_t rank_pos = init.find("LockRank::");
      if (rank_pos == std::string_view::npos) {
        continue;  // not a ranked util mutex (e.g. an unrelated type)
      }
      const std::size_t rank_begin = rank_pos + 10;
      const std::size_t rank_end =
          scan_identifier(init, rank_begin) + 0;
      const int rank =
          lock_rank_value(init.substr(rank_begin, rank_end - rank_begin));
      // Diagnostic name: the string literal, read from the raw text because
      // the scrubber blanks literal bodies.
      std::string name;
      const std::size_t q1 = raw.find('"', cursor);
      if (q1 != std::string_view::npos && q1 < close) {
        const std::size_t q2 = raw.find('"', q1 + 1);
        if (q2 != std::string_view::npos && q2 <= close) {
          name = std::string(raw.substr(q1 + 1, q2 - q1 - 1));
        }
      }
      if (name.empty()) {
        name = var;
      }
      decls.push_back({var, name, rank, line_of_offset(scrubbed, start)});
    }
  }
  return decls;
}

/// var -> (diagnostic name, rank) for resolving guard expressions.
struct ResolvedMutex {
  std::string name;
  int rank = -1;
};
using VarMap = std::map<std::string, ResolvedMutex>;

ResolvedMutex resolve_mutex_var(const VarMap& file_vars,
                                const VarMap& shared_vars,
                                const std::string& module,
                                const std::string& var) {
  if (const auto it = file_vars.find(var); it != file_vars.end()) {
    return it->second;
  }
  if (const auto it = shared_vars.find(var); it != shared_vars.end()) {
    return it->second;
  }
  return {module.empty() ? var : module + ":" + var, -1};
}

// -- Suppressions -----------------------------------------------------------

/// line -> rule -> justified. An allow marker suppresses matching findings
/// on its own line and on the first code line after its comment block.
using AllowMap = std::map<std::size_t, std::map<std::string, bool>>;

AllowMap collect_allows(const std::string& path, std::string_view raw,
                        std::vector<Diagnostic>& out) {
  AllowMap allows;
  std::size_t line_no = 1;
  std::size_t line_begin = 0;
  while (line_begin <= raw.size()) {
    std::size_t line_end = raw.find('\n', line_begin);
    if (line_end == std::string_view::npos) {
      line_end = raw.size();
    }
    const std::string_view line = raw.substr(line_begin, line_end - line_begin);
    const std::size_t marker_pos = line.find(allow_marker());
    if (marker_pos != std::string_view::npos) {
      const std::size_t rule_begin = marker_pos + allow_marker().size();
      const std::size_t rule_end = line.find(')', rule_begin);
      if (rule_end != std::string_view::npos) {
        const std::string rule(
            trim_view(line.substr(rule_begin, rule_end - rule_begin)));
        std::string_view rest = line.substr(rule_end + 1);
        const bool justified = rest.size() > 1 && rest.front() == ':' &&
                               !trim_view(rest.substr(1)).empty();
        if (!justified) {
          out.push_back({path, line_no, "suppression",
                         "allow(" + rule +
                             ") needs a justification: append `: <why this "
                             "finding is accepted>`"});
        }
        allows[line_no][rule] = justified;
      }
    }
    line_no += 1;
    line_begin = line_end + 1;
  }
  return allows;
}

/// Lines that contain nothing but a // comment (candidates for a multi-line
/// justification block above a flagged line).
std::vector<bool> comment_only_lines(std::string_view raw) {
  std::vector<bool> flags(1, false);  // 1-indexed
  std::size_t line_begin = 0;
  while (line_begin <= raw.size()) {
    std::size_t line_end = raw.find('\n', line_begin);
    if (line_end == std::string_view::npos) {
      line_end = raw.size();
    }
    const std::string_view line =
        trim_view(raw.substr(line_begin, line_end - line_begin));
    flags.push_back(line.size() >= 2 && line.substr(0, 2) == "//");
    line_begin = line_end + 1;
  }
  return flags;
}

bool is_suppressed(const AllowMap& allows, const std::vector<bool>& comments,
                   std::size_t line, const std::string& rule) {
  const auto allowed_at = [&](std::size_t l) {
    const auto it = allows.find(l);
    return it != allows.end() && it->second.contains(rule);
  };
  if (allowed_at(line)) {
    return true;
  }
  // Walk up through the immediately preceding comment block.
  for (std::size_t l = line; l > 1;) {
    --l;
    if (l >= comments.size() || !comments[l]) {
      return false;
    }
    if (allowed_at(l)) {
      return true;
    }
  }
  return false;
}

// -- The passes -------------------------------------------------------------

void check_blocking_under_lock(const std::string& path,
                               std::string_view scrubbed,
                               const std::vector<GuardScope>& scopes,
                               const std::vector<std::string>& marked,
                               std::vector<Diagnostic>& out) {
  std::set<std::size_t> reported;
  const auto scan = [&](const std::string& name, bool allow_member_call) {
    std::size_t pos = 0;
    while ((pos = scrubbed.find(name, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += name.size();
      if (!token_at(scrubbed, start, name)) {
        continue;
      }
      const std::size_t after = skip_spaces(scrubbed, start + name.size());
      if (after >= scrubbed.size() || scrubbed[after] != '(') {
        continue;  // not a call
      }
      if (!allow_member_call && start >= 1) {
        const char prev = scrubbed[start - 1];
        const bool member = prev == '.' ||
                            (start >= 2 && prev == '>' &&
                             scrubbed[start - 2] == '-');
        if (member) {
          continue;  // a member function that merely shares the name
        }
      }
      for (const GuardScope& scope : scopes) {
        if (start > scope.decl && start < scope.end) {
          if (reported.insert(start).second) {
            out.push_back(
                {path, line_of_offset(scrubbed, start), "blocking-under-lock",
                 "blocking call '" + name + "' inside the scope of the guard "
                     "on '" + scope.mutex_var + "' (line " +
                     std::to_string(line_of_offset(scrubbed, scope.decl)) +
                     "); hoist it out of the critical section or justify "
                     "the wait"});
          }
          break;
        }
      }
    }
  };
  for (const std::string& name : builtin_blocking_functions()) {
    scan(name, /*allow_member_call=*/false);
  }
  for (const std::string& name : marked) {
    scan(name, /*allow_member_call=*/true);
  }
}

void collect_lock_edges(const std::string& path, std::string_view scrubbed,
                        const std::vector<GuardScope>& scopes,
                        const VarMap& file_vars, const VarMap& shared_vars,
                        const std::string& module,
                        std::vector<LockEdge>& edges) {
  std::set<std::pair<std::string, std::string>> seen;
  for (const GuardScope& outer : scopes) {
    for (const GuardScope& inner : scopes) {
      if (inner.decl <= outer.decl || inner.decl >= outer.end) {
        continue;
      }
      const ResolvedMutex from =
          resolve_mutex_var(file_vars, shared_vars, module, outer.mutex_var);
      const ResolvedMutex to =
          resolve_mutex_var(file_vars, shared_vars, module, inner.mutex_var);
      if (seen.insert({from.name, to.name}).second) {
        edges.push_back({from.name, to.name, path,
                         line_of_offset(scrubbed, inner.decl)});
      }
    }
  }
}

void check_raw_mutex(const std::string& path, std::string_view scrubbed,
                     const std::string& module,
                     std::vector<Diagnostic>& out) {
  if (module == "util") {
    return;  // the wrappers themselves live here
  }
  static const std::vector<std::string> kBanned = {
      "std::mutex",          "std::shared_mutex",    "std::recursive_mutex",
      "std::timed_mutex",    "std::lock_guard",      "std::unique_lock",
      "std::shared_lock",    "std::scoped_lock",     "std::condition_variable",
  };
  for (const std::string& token : kBanned) {
    std::size_t pos = 0;
    while ((pos = scrubbed.find(token, pos)) != std::string_view::npos) {
      const std::size_t start = pos;
      pos += token.size();
      if (start > 0 && (is_identifier_char(scrubbed[start - 1]) ||
                        scrubbed[start - 1] == ':')) {
        continue;
      }
      if (pos < scrubbed.size() && is_identifier_char(scrubbed[pos])) {
        continue;  // e.g. std::condition_variable_any
      }
      out.push_back({path, line_of_offset(scrubbed, start), "raw-mutex",
                     "bare '" + token + "' outside util/; use the annotated "
                         "wrappers from src/util/mutex.hpp so lock ranks and "
                         "thread-safety analysis apply"});
    }
  }
}

/// Rank-order and cycle check over a lock graph.
void check_lock_graph(const std::vector<LockNode>& nodes,
                      const std::vector<LockEdge>& edges,
                      std::vector<Diagnostic>& out) {
  std::map<std::string, int> ranks;
  for (const LockNode& node : nodes) {
    ranks.emplace(node.name, node.rank);
  }
  for (const LockEdge& edge : edges) {
    const auto from = ranks.find(edge.from);
    const auto to = ranks.find(edge.to);
    if (from == ranks.end() || to == ranks.end() || from->second < 0 ||
        to->second < 0) {
      continue;  // unranked; the cycle check below still covers it
    }
    if (to->second >= from->second) {
      out.push_back(
          {edge.file, edge.line, "lock-order",
           "acquiring '" + edge.to + "' (rank " +
               std::to_string(to->second) + ") while holding '" + edge.from +
               "' (rank " + std::to_string(from->second) +
               "); nested locks must rank strictly lower"});
    }
  }
  // Cycle detection (DFS, three colors). Each cycle is reported once, at
  // the edge that closes it.
  std::map<std::string, std::vector<const LockEdge*>> adjacency;
  std::set<std::string> vertices;
  for (const LockEdge& edge : edges) {
    adjacency[edge.from].push_back(&edge);
    vertices.insert(edge.from);
    vertices.insert(edge.to);
  }
  std::map<std::string, int> color;  // 0 new, 1 on stack, 2 done
  std::set<std::string> reported_cycles;
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> visit =
      [&](const std::string& vertex) {
        color[vertex] = 1;
        stack.push_back(vertex);
        for (const LockEdge* edge : adjacency[vertex]) {
          const int state = color[edge->to];
          if (state == 1) {
            // Reconstruct the cycle from the stack tail.
            const auto begin =
                std::find(stack.begin(), stack.end(), edge->to);
            std::string cycle;
            for (auto it = begin; it != stack.end(); ++it) {
              cycle += *it + " -> ";
            }
            cycle += edge->to;
            if (reported_cycles.insert(cycle).second) {
              out.push_back({edge->file, edge->line, "lock-order",
                             "lock acquisition cycle: " + cycle});
            }
          } else if (state == 0) {
            visit(edge->to);
          }
        }
        stack.pop_back();
        color[vertex] = 2;
      };
  for (const std::string& vertex : vertices) {
    if (color[vertex] == 0) {
      visit(vertex);
    }
  }
}

const std::vector<std::string> kSuppressibleRules = {
    "blocking-under-lock", "lock-order", "raw-mutex"};

bool rule_suppressible(const std::string& rule) {
  return std::find(kSuppressibleRules.begin(), kSuppressibleRules.end(),
                   rule) != kSuppressibleRules.end();
}

void filter_suppressed(std::vector<Diagnostic>& diagnostics,
                       const AllowMap& allows,
                       const std::vector<bool>& comments) {
  diagnostics.erase(
      std::remove_if(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return rule_suppressible(d.rule) &&
                              is_suppressed(allows, comments, d.line, d.rule);
                     }),
      diagnostics.end());
}

}  // namespace

int module_rank(std::string_view module) {
  for (const auto& [name, rank] : kModules) {
    if (name == module) {
      return rank;
    }
  }
  return -1;
}

std::string scrub_source(std::string_view text) {
  std::string out(text);
  std::size_t i = 0;
  const auto blank = [&out](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < out.size(); ++k) {
      if (out[k] != '\n') {
        out[k] = ' ';
      }
    }
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      const std::size_t end = text.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? text.size() : end;
      blank(i, stop);
      i = stop;
    } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t end = text.find("*/", i + 2);
      const std::size_t stop =
          end == std::string_view::npos ? text.size() : end + 2;
      blank(i, stop);
      i = stop;
    } else if (c == 'R' && i + 1 < text.size() && text[i + 1] == '"' &&
               (i == 0 || !is_identifier_char(text[i - 1]))) {
      // Raw string literal: R"delim( ... )delim"
      const std::size_t open = text.find('(', i + 2);
      if (open == std::string_view::npos) {
        ++i;
        continue;
      }
      const std::string closer =
          ")" + std::string(text.substr(i + 2, open - i - 2)) + "\"";
      const std::size_t end = text.find(closer, open + 1);
      const std::size_t stop = end == std::string_view::npos
                                   ? text.size()
                                   : end + closer.size();
      // Keep the opening R" and the final " so the scrubbed text still reads
      // as a string literal for the format-literal rule.
      blank(i + 2, stop - 1);
      i = stop;
    } else if (c == '\'' && i > 0 && is_identifier_char(text[i - 1])) {
      ++i;  // digit separator (500'000) or suffix position, not a char literal
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != quote) {
        j += text[j] == '\\' ? 2u : 1u;
      }
      const std::size_t stop = std::min(j + 1, text.size());
      blank(i + 1, stop > i + 1 ? stop - 1 : i + 1);
      i = stop;
    } else {
      ++i;
    }
  }
  return out;
}

std::string to_string(const Diagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) + ": [" +
         diagnostic.rule + "] " + diagnostic.message;
}

std::vector<std::string> collect_blocking_markers(std::string_view text) {
  std::vector<std::string> names;
  std::size_t line_begin = 0;
  while (line_begin <= text.size()) {
    std::size_t line_end = text.find('\n', line_begin);
    if (line_end == std::string_view::npos) {
      line_end = text.size();
    }
    const std::string_view line =
        text.substr(line_begin, line_end - line_begin);
    const std::size_t marker_pos = line.find(blocking_marker());
    line_begin = line_end + 1;
    if (marker_pos == std::string_view::npos) {
      continue;
    }
    const std::size_t comment = line.rfind("//", marker_pos);
    if (comment == std::string_view::npos) {
      continue;  // not in a // comment: ignore
    }
    // The marked declaration's name: the identifier before the first '('
    // of the code part.
    const std::string_view code = line.substr(0, comment);
    const std::size_t paren = code.find('(');
    if (paren == std::string_view::npos) {
      continue;
    }
    std::size_t begin = paren;
    while (begin > 0 && is_identifier_char(code[begin - 1])) {
      --begin;
    }
    if (begin == paren) {
      continue;
    }
    const std::string name(code.substr(begin, paren - begin));
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  return names;
}

std::string lock_graph_dot(const std::vector<LockNode>& nodes,
                           const std::vector<LockEdge>& edges) {
  std::string out = "digraph iokc_locks {\n  rankdir=TB;\n";
  std::set<std::string> named;
  for (const LockNode& node : nodes) {
    if (!named.insert(node.name).second) {
      continue;
    }
    out += "  \"" + node.name + "\" [label=\"" + node.name;
    if (node.rank >= 0) {
      out += "\\nrank " + std::to_string(node.rank);
    }
    out += "\"];\n";
  }
  for (const LockEdge& edge : edges) {
    out += "  \"" + edge.from + "\" -> \"" + edge.to + "\" [label=\"" +
           edge.file + ":" + std::to_string(edge.line) + "\"];\n";
  }
  out += "}\n";
  return out;
}

namespace {

/// Shared per-file analysis; graph checks and suppression filtering are the
/// caller's job (file-local in lint_file, global in analyze_tree).
void analyze_file(const std::string& path, std::string_view text,
                  std::string_view scrubbed, const std::string& module,
                  const Options& options,
                  const std::vector<std::string>& blocking,
                  const VarMap& file_vars, const VarMap& shared_vars,
                  std::vector<Diagnostic>& out,
                  std::vector<LockEdge>& edges) {
  if (options.check_layering) {
    check_layering(path, text, scrubbed, module, out);
  }
  if (options.check_pragma_once &&
      has_extension(std::filesystem::path(path), ".hpp")) {
    check_pragma_once(path, scrubbed, out);
  }
  if (options.check_exceptions) {
    check_exceptions(path, scrubbed, module, out);
  }
  if (options.check_format_literals) {
    check_format_literals(path, scrubbed, out);
  }
  if (options.check_blocking_under_lock || options.check_lock_order) {
    const std::vector<GuardScope> scopes = find_guard_scopes(scrubbed);
    if (options.check_blocking_under_lock) {
      check_blocking_under_lock(path, scrubbed, scopes, blocking, out);
    }
    if (options.check_lock_order) {
      collect_lock_edges(path, scrubbed, scopes, file_vars, shared_vars,
                         module, edges);
    }
  }
  if (options.check_raw_mutex) {
    check_raw_mutex(path, scrubbed, module, out);
  }
}

VarMap var_map_of(const std::vector<MutexDecl>& decls) {
  VarMap map;
  for (const MutexDecl& decl : decls) {
    map.emplace(decl.var, ResolvedMutex{decl.name, decl.rank});
  }
  return map;
}

}  // namespace

std::vector<Diagnostic> lint_file(const std::string& path,
                                  std::string_view text,
                                  const std::string& module,
                                  const Options& options) {
  std::vector<Diagnostic> out;
  const std::string scrubbed = scrub_source(text);
  const AllowMap allows = collect_allows(path, text, out);
  const std::vector<bool> comments = comment_only_lines(text);

  std::vector<std::string> blocking = options.blocking_functions;
  for (std::string& name : collect_blocking_markers(text)) {
    if (std::find(blocking.begin(), blocking.end(), name) == blocking.end()) {
      blocking.push_back(std::move(name));
    }
  }
  const std::vector<MutexDecl> decls = find_mutex_decls(text, scrubbed);
  const VarMap file_vars = var_map_of(decls);

  std::vector<LockEdge> edges;
  analyze_file(path, text, scrubbed, module, options, blocking, file_vars,
               VarMap{}, out, edges);
  if (options.check_lock_order) {
    std::vector<LockNode> nodes;
    for (const MutexDecl& decl : decls) {
      nodes.push_back({decl.name, decl.rank, path, decl.line});
    }
    check_lock_graph(nodes, edges, out);
  }
  filter_suppressed(out, allows, comments);
  return out;
}

TreeAnalysis analyze_tree(const std::vector<std::string>& roots,
                          const Options& options) {
  namespace fs = std::filesystem;
  TreeAnalysis analysis;

  struct FileRecord {
    std::string path;
    std::string module;
    std::string text;
    std::string scrubbed;
    AllowMap allows;
    std::vector<bool> comments;
    VarMap vars;
  };
  std::vector<FileRecord> records;
  std::error_code ec;
  for (const std::string& root : roots) {
    std::vector<fs::path> files;
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        break;
      }
      if (it->is_regular_file() && (has_extension(it->path(), ".hpp") ||
                                    has_extension(it->path(), ".cpp"))) {
        files.push_back(it->path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      const fs::path relative = fs::relative(file, root, ec);
      std::string module;
      if (!ec && relative.begin() != relative.end()) {
        const std::string first = relative.begin()->string();
        if (module_rank(first) >= 0) {
          module = first;
        }
      }
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        analysis.diagnostics.push_back(
            {file.string(), 0, "io", "cannot read file"});
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      records.push_back({file.string(), module, buffer.str(), "", {}, {}, {}});
    }
  }

  // Pass 1: collect markers, mutex declarations, and suppression maps
  // everywhere before linting anywhere — a blocking marker in src/db must
  // fire on calls in src/persist.
  std::vector<std::string> blocking = options.blocking_functions;
  VarMap shared_vars;
  std::set<std::string> ambiguous_vars;
  for (FileRecord& record : records) {
    record.scrubbed = scrub_source(record.text);
    record.allows =
        collect_allows(record.path, record.text, analysis.diagnostics);
    record.comments = comment_only_lines(record.text);
    for (std::string& name : collect_blocking_markers(record.text)) {
      if (std::find(blocking.begin(), blocking.end(), name) ==
          blocking.end()) {
        blocking.push_back(std::move(name));
      }
    }
    const std::vector<MutexDecl> decls =
        find_mutex_decls(record.text, record.scrubbed);
    record.vars = var_map_of(decls);
    for (const MutexDecl& decl : decls) {
      analysis.lock_nodes.push_back(
          {decl.name, decl.rank, record.path, decl.line});
      const auto [it, inserted] =
          shared_vars.emplace(decl.var, ResolvedMutex{decl.name, decl.rank});
      if (!inserted && it->second.name != decl.name) {
        ambiguous_vars.insert(decl.var);
      }
    }
  }
  // A member name declared with different diagnostic names in different
  // classes cannot be resolved across files; fall back to file-local only.
  for (const std::string& var : ambiguous_vars) {
    shared_vars.erase(var);
  }

  // Pass 2: lint with full cross-file knowledge.
  for (FileRecord& record : records) {
    std::vector<Diagnostic> file_diagnostics;
    analyze_file(record.path, record.text, record.scrubbed, record.module,
                 options, blocking, record.vars, shared_vars,
                 file_diagnostics, analysis.lock_edges);
    filter_suppressed(file_diagnostics, record.allows, record.comments);
    analysis.diagnostics.insert(
        analysis.diagnostics.end(),
        std::make_move_iterator(file_diagnostics.begin()),
        std::make_move_iterator(file_diagnostics.end()));
  }

  // Global lock graph: rank order + cycles, then per-site suppressions.
  if (options.check_lock_order) {
    std::vector<Diagnostic> graph_diagnostics;
    check_lock_graph(analysis.lock_nodes, analysis.lock_edges,
                     graph_diagnostics);
    for (Diagnostic& diagnostic : graph_diagnostics) {
      const auto record =
          std::find_if(records.begin(), records.end(),
                       [&](const FileRecord& r) {
                         return r.path == diagnostic.file;
                       });
      if (record != records.end() &&
          is_suppressed(record->allows, record->comments, diagnostic.line,
                        diagnostic.rule)) {
        continue;
      }
      analysis.diagnostics.push_back(std::move(diagnostic));
    }
  }
  return analysis;
}

std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& options) {
  return analyze_tree({root}, options).diagnostics;
}

}  // namespace iokc::lint
