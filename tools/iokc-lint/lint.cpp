#include "tools/iokc-lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace iokc::lint {

namespace {

// ---------------------------------------------------------------------------
// Layering table. Modules may include themselves and strictly lower ranks.
// Parallel siblings share a rank, so cross-includes between them (e.g.
// extract <-> persist) are upward edges and rejected.
// ---------------------------------------------------------------------------

constexpr std::array<std::pair<std::string_view, int>, 16> kModules = {{
    {"util", 0},
    {"obs", 1},
    {"sim", 2},
    {"db", 2},
    {"jube", 2},
    {"knowledge", 2},
    {"fs", 3},
    {"iostack", 4},
    {"generators", 5},
    {"extract", 5},
    {"persist", 5},
    {"analysis", 6},
    {"usage", 7},
    {"cycle", 8},
    {"svc", 8},  // knowledge service; sibling of cycle, never includes it
    {"cli", 9},
}};

// ---------------------------------------------------------------------------
// Exception ownership. Maps each error type from src/util/error.hpp to the
// modules allowed to throw it. ConfigError is cross-cutting (any module
// validates caller configuration) and therefore absent from the table.
// ---------------------------------------------------------------------------

struct ErrorOwners {
  std::string_view error;
  std::vector<std::string_view> owners;
};

const std::vector<ErrorOwners>& exception_owners() {
  static const std::vector<ErrorOwners> kOwners = {
      // Malformed input text: the parsing layers.
      {"ParseError",
       {"util", "db", "fs", "iostack", "generators", "jube", "knowledge",
        "extract", "svc"}},
      // Database constraint violations: the store and its persistence layer.
      {"DbError", {"db", "persist"}},
      // Simulation invariants: the simulated cluster stack.
      {"SimError", {"sim", "fs", "iostack", "generators"}},
      // Host filesystem I/O: only layers that touch the real filesystem.
      // sim/fs/iostack/generators/knowledge/usage are pure in-memory models.
      {"IoError",
       {"util", "obs", "db", "jube", "extract", "persist", "analysis",
        "cycle", "svc", "cli"}},
      // CheckError is reserved for the IOKC_CHECK machinery in util.
      {"CheckError", {"util"}},
  };
  return kOwners;
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t line_of_offset(std::string_view text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(offset, text.size())),
                            '\n'));
}

// ---------------------------------------------------------------------------
// Per-rule scanners. All operate on the scrubbed text; `raw` is consulted
// only where literal contents matter (include paths).
// ---------------------------------------------------------------------------

void check_layering(const std::string& path, std::string_view raw,
                    std::string_view scrubbed, const std::string& module,
                    std::vector<Diagnostic>& out) {
  const int rank = module_rank(module);
  if (rank < 0) {
    return;
  }
  std::size_t pos = 0;
  while ((pos = scrubbed.find("#include", pos)) != std::string_view::npos) {
    const std::size_t directive = pos;
    pos += 8;
    // Read the include path from the raw text: the scrubber blanks string
    // bodies, and quoted include paths are lexed as string literals.
    std::size_t open = directive + 8;
    while (open < raw.size() && (raw[open] == ' ' || raw[open] == '\t')) {
      ++open;
    }
    if (open >= raw.size() || raw[open] != '"') {
      continue;  // <system> include or malformed; not our concern
    }
    const std::size_t close = raw.find('"', open + 1);
    if (close == std::string_view::npos) {
      continue;
    }
    const std::string_view target = raw.substr(open + 1, close - open - 1);
    if (target.substr(0, 4) != "src/") {
      continue;
    }
    const std::size_t slash = target.find('/', 4);
    if (slash == std::string_view::npos) {
      continue;
    }
    const std::string_view included(target.substr(4, slash - 4));
    if (included == module) {
      continue;
    }
    const int included_rank = module_rank(included);
    if (included_rank < 0) {
      out.push_back({path, line_of_offset(scrubbed, directive), "layering",
                     "include of unknown module '" + std::string(included) +
                         "' (" + std::string(target) + ")"});
      continue;
    }
    if (included_rank >= rank) {
      out.push_back(
          {path, line_of_offset(scrubbed, directive), "layering",
           "module '" + module + "' (layer " + std::to_string(rank) +
               ") must not include '" + std::string(included) + "' (layer " +
               std::to_string(included_rank) + "): " + std::string(target)});
    }
  }
}

void check_pragma_once(const std::string& path, std::string_view scrubbed,
                       std::vector<Diagnostic>& out) {
  if (scrubbed.find("#pragma once") == std::string_view::npos) {
    out.push_back(
        {path, 1, "pragma-once", "header is missing '#pragma once'"});
  }
}

void check_exceptions(const std::string& path, std::string_view scrubbed,
                      const std::string& module,
                      std::vector<Diagnostic>& out) {
  std::size_t pos = 0;
  while ((pos = scrubbed.find("throw", pos)) != std::string_view::npos) {
    const std::size_t keyword = pos;
    pos += 5;
    if (keyword > 0 && is_identifier_char(scrubbed[keyword - 1])) {
      continue;  // e.g. "rethrow"
    }
    if (pos < scrubbed.size() && is_identifier_char(scrubbed[pos])) {
      continue;  // e.g. "throwing"
    }
    std::size_t cursor = pos;
    while (cursor < scrubbed.size() &&
           std::isspace(static_cast<unsigned char>(scrubbed[cursor]))) {
      ++cursor;
    }
    if (cursor >= scrubbed.size() || scrubbed[cursor] == ';') {
      continue;  // bare rethrow: `throw;`
    }
    // Collect the thrown type name: identifiers and `::`.
    std::size_t name_end = cursor;
    while (name_end < scrubbed.size() &&
           (is_identifier_char(scrubbed[name_end]) ||
            scrubbed[name_end] == ':')) {
      ++name_end;
    }
    std::string name(scrubbed.substr(cursor, name_end - cursor));
    const std::size_t line = line_of_offset(scrubbed, keyword);
    if (name.rfind("std::", 0) == 0) {
      out.push_back({path, line, "exception-ownership",
                     "raw '" + name +
                         "' thrown; use the iokc::Error hierarchy from "
                         "src/util/error.hpp"});
      continue;
    }
    // Normalise `iokc::X` / `::iokc::X` to `X`.
    for (const std::string_view prefix : {"::iokc::", "iokc::"}) {
      if (name.rfind(prefix, 0) == 0) {
        name = name.substr(prefix.size());
        break;
      }
    }
    if (name == "Error") {
      out.push_back({path, line, "exception-ownership",
                     "the root iokc::Error must not be thrown directly; "
                     "throw a subsystem-specific subclass"});
      continue;
    }
    for (const ErrorOwners& entry : exception_owners()) {
      if (name != entry.error) {
        continue;
      }
      const bool owned = module.empty() ||
                         std::find(entry.owners.begin(), entry.owners.end(),
                                   module) != entry.owners.end();
      if (!owned) {
        std::string owners;
        for (const std::string_view owner : entry.owners) {
          owners += owners.empty() ? "" : ", ";
          owners += owner;
        }
        out.push_back({path, line, "exception-ownership",
                       "module '" + module + "' must not throw " + name +
                           " (owned by: " + owners + ")"});
      }
      break;
    }
  }
}

// Format-string argument position for each printf-family function.
constexpr std::array<std::pair<std::string_view, std::size_t>, 6> kPrintfLike =
    {{
        {"printf", 0},
        {"vprintf", 0},
        {"fprintf", 1},
        {"dprintf", 1},
        {"sprintf", 1},
        {"snprintf", 2},
    }};

// Splits the top-level comma-separated argument list starting at the opening
// parenthesis. Returns the trimmed arguments, or nullopt-ish empty on
// unbalanced input.
std::vector<std::string_view> split_call_args(std::string_view scrubbed,
                                              std::size_t open_paren) {
  std::vector<std::string_view> args;
  int depth = 0;
  std::size_t arg_start = open_paren + 1;
  for (std::size_t i = open_paren; i < scrubbed.size(); ++i) {
    const char c = scrubbed[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        args.push_back(scrubbed.substr(arg_start, i - arg_start));
        return args;
      }
    } else if (c == ',' && depth == 1) {
      args.push_back(scrubbed.substr(arg_start, i - arg_start));
      arg_start = i + 1;
    }
  }
  return {};  // unbalanced; give up quietly
}

std::string_view trim_view(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

void check_format_literals(const std::string& path, std::string_view scrubbed,
                           std::vector<Diagnostic>& out) {
  for (const auto& [function, format_index] : kPrintfLike) {
    std::size_t pos = 0;
    while ((pos = scrubbed.find(function, pos)) != std::string_view::npos) {
      const std::size_t name_start = pos;
      pos += function.size();
      // Must be a standalone identifier (allow std:: / :: qualification,
      // which ends in ':' right before the name).
      if (name_start > 0 && is_identifier_char(scrubbed[name_start - 1])) {
        continue;
      }
      std::size_t cursor = name_start + function.size();
      while (cursor < scrubbed.size() &&
             std::isspace(static_cast<unsigned char>(scrubbed[cursor]))) {
        ++cursor;
      }
      if (cursor >= scrubbed.size() || scrubbed[cursor] != '(') {
        continue;  // declaration, comment mention, function pointer, ...
      }
      const std::vector<std::string_view> args =
          split_call_args(scrubbed, cursor);
      if (args.size() <= format_index) {
        continue;  // wrong arity: not the libc function
      }
      const std::string_view format = trim_view(args[format_index]);
      if (format.empty() || format.front() != '"') {
        out.push_back(
            {path, line_of_offset(scrubbed, name_start), "format-literal",
             "format argument of " + std::string(function) +
                 " must be a string literal, got '" + std::string(format) +
                 "'"});
      }
    }
  }
}

bool has_extension(const std::filesystem::path& path,
                   std::string_view extension) {
  return path.extension().string() == extension;
}

}  // namespace

int module_rank(std::string_view module) {
  for (const auto& [name, rank] : kModules) {
    if (name == module) {
      return rank;
    }
  }
  return -1;
}

std::string scrub_source(std::string_view text) {
  std::string out(text);
  std::size_t i = 0;
  const auto blank = [&out](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < out.size(); ++k) {
      if (out[k] != '\n') {
        out[k] = ' ';
      }
    }
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      const std::size_t end = text.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? text.size() : end;
      blank(i, stop);
      i = stop;
    } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t end = text.find("*/", i + 2);
      const std::size_t stop =
          end == std::string_view::npos ? text.size() : end + 2;
      blank(i, stop);
      i = stop;
    } else if (c == 'R' && i + 1 < text.size() && text[i + 1] == '"' &&
               (i == 0 || !is_identifier_char(text[i - 1]))) {
      // Raw string literal: R"delim( ... )delim"
      const std::size_t open = text.find('(', i + 2);
      if (open == std::string_view::npos) {
        ++i;
        continue;
      }
      const std::string closer =
          ")" + std::string(text.substr(i + 2, open - i - 2)) + "\"";
      const std::size_t end = text.find(closer, open + 1);
      const std::size_t stop = end == std::string_view::npos
                                   ? text.size()
                                   : end + closer.size();
      // Keep the opening R" and the final " so the scrubbed text still reads
      // as a string literal for the format-literal rule.
      blank(i + 2, stop - 1);
      i = stop;
    } else if (c == '\'' && i > 0 && is_identifier_char(text[i - 1])) {
      ++i;  // digit separator (500'000) or suffix position, not a char literal
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != quote) {
        j += text[j] == '\\' ? 2u : 1u;
      }
      const std::size_t stop = std::min(j + 1, text.size());
      blank(i + 1, stop > i + 1 ? stop - 1 : i + 1);
      i = stop;
    } else {
      ++i;
    }
  }
  return out;
}

std::string to_string(const Diagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) + ": [" +
         diagnostic.rule + "] " + diagnostic.message;
}

std::vector<Diagnostic> lint_file(const std::string& path,
                                  std::string_view text,
                                  const std::string& module,
                                  const Options& options) {
  std::vector<Diagnostic> out;
  const std::string scrubbed = scrub_source(text);
  if (options.check_layering) {
    check_layering(path, text, scrubbed, module, out);
  }
  if (options.check_pragma_once &&
      has_extension(std::filesystem::path(path), ".hpp")) {
    check_pragma_once(path, scrubbed, out);
  }
  if (options.check_exceptions) {
    check_exceptions(path, scrubbed, module, out);
  }
  if (options.check_format_literals) {
    check_format_literals(path, scrubbed, out);
  }
  return out;
}

std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& options) {
  namespace fs = std::filesystem;
  std::vector<Diagnostic> out;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      break;
    }
    if (it->is_regular_file() && (has_extension(it->path(), ".hpp") ||
                                  has_extension(it->path(), ".cpp"))) {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    const fs::path relative = fs::relative(file, root, ec);
    std::string module;
    if (!ec && relative.begin() != relative.end()) {
      const std::string first = relative.begin()->string();
      if (module_rank(first) >= 0) {
        module = first;
      }
    }
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      out.push_back({file.string(), 0, "io", "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::vector<Diagnostic> diagnostics =
        lint_file(file.string(), text, module, options);
    out.insert(out.end(), std::make_move_iterator(diagnostics.begin()),
               std::make_move_iterator(diagnostics.end()));
  }
  return out;
}

}  // namespace iokc::lint
