#include <gtest/gtest.h>

#include "src/analysis/anomaly.hpp"
#include "src/analysis/bounding_box.hpp"
#include "src/util/error.hpp"

namespace iokc::analysis {
namespace {

knowledge::Io500Knowledge sample_run() {
  knowledge::Io500Knowledge k;
  k.command = "io500 -N 40";
  k.num_tasks = 40;
  auto add = [&k](const char* name, double value, const char* unit) {
    knowledge::Io500Testcase testcase;
    testcase.name = name;
    testcase.value = value;
    testcase.unit = unit;
    k.testcases.push_back(testcase);
  };
  add("ior-easy-write", 2.9, "GiB/s");
  add("ior-hard-write", 0.1, "GiB/s");
  add("ior-easy-read", 3.3, "GiB/s");
  add("ior-hard-read", 0.4, "GiB/s");
  add("mdtest-easy-write", 4.4, "kIOPS");
  add("mdtest-hard-write", 2.2, "kIOPS");
  add("mdtest-easy-stat", 13.3, "kIOPS");
  add("mdtest-hard-stat", 6.6, "kIOPS");
  return k;
}

TEST(BoundingBox, BandwidthBoxFromBoundaryCases) {
  const BoundingBox1D box = make_bandwidth_box(sample_run(), "write");
  EXPECT_EQ(box.dimension, "bandwidth-write");
  EXPECT_DOUBLE_EQ(box.lower, 0.1);
  EXPECT_DOUBLE_EQ(box.upper, 2.9);
  EXPECT_TRUE(box.contains(1.0));
  EXPECT_FALSE(box.contains(0.05));
  EXPECT_FALSE(box.contains(3.5));
  EXPECT_NEAR(box.position(1.5), 0.5, 1e-9);
  EXPECT_LT(box.position(0.05), 0.0);
  EXPECT_GT(box.position(3.5), 1.0);
}

TEST(BoundingBox, MetadataBox) {
  const BoundingBox1D box = make_metadata_box(sample_run(), "stat");
  EXPECT_DOUBLE_EQ(box.lower, 6.6);
  EXPECT_DOUBLE_EQ(box.upper, 13.3);
  EXPECT_EQ(box.unit, "kIOPS");
}

TEST(BoundingBox, MissingBoundaryCaseThrows) {
  knowledge::Io500Knowledge k;
  EXPECT_THROW(make_bandwidth_box(k, "write"), ConfigError);
}

TEST(BoundingBox, InvertedBoundsAreSwapped) {
  knowledge::Io500Knowledge k = sample_run();
  // Easy slower than hard: itself anomalous, but the box stays well-formed.
  for (auto& testcase : k.testcases) {
    if (testcase.name == "ior-easy-write") {
      testcase.value = 0.05;
    }
  }
  const BoundingBox1D box = make_bandwidth_box(k, "write");
  EXPECT_LE(box.lower, box.upper);
}

TEST(BoundingBox, PlacementAssessments) {
  const BoundingBox2D box = make_bounding_box(sample_run());
  const BoxPlacement inside = place_application(box, 1.5, 3.0);
  EXPECT_TRUE(inside.within_bandwidth);
  EXPECT_TRUE(inside.within_metadata);
  EXPECT_NE(inside.assessment.find("within expectations"), std::string::npos);

  const BoxPlacement below = place_application(box, 0.01, 3.0);
  EXPECT_FALSE(below.within_bandwidth);
  EXPECT_NE(below.assessment.find("below the suboptimal bound"),
            std::string::npos);

  const BoxPlacement above = place_application(box, 5.0, 3.0);
  EXPECT_FALSE(above.within_bandwidth);
  EXPECT_NE(above.assessment.find("above the optimized bound"),
            std::string::npos);
}

TEST(BoundingBox, RenderShowsBoundsAndPlacement) {
  const BoundingBox2D box = make_bounding_box(sample_run());
  const BoxPlacement placement = place_application(box, 1.5, 3.0);
  const std::string text = render_bounding_box(box, &placement);
  EXPECT_NE(text.find("bandwidth-write"), std::string::npos);
  EXPECT_NE(text.find("metadata-write"), std::string::npos);
  EXPECT_NE(text.find("assessment:"), std::string::npos);
}

TEST(BoundingBox, SvgRenderingShowsBoxAndMarkers) {
  const BoundingBox2D box = make_bounding_box(sample_run());
  const std::string svg = render_svg_bounding_box(
      box, {{"app-ok", 1.5, 3.0}, {"app-bad", 0.02, 1.0}});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("expectation bounding box"), std::string::npos);
  EXPECT_NE(svg.find("app-ok"), std::string::npos);
  EXPECT_NE(svg.find("app-bad"), std::string::npos);
  EXPECT_NE(svg.find("#59a14f"), std::string::npos);  // inside marker
  EXPECT_NE(svg.find("#e15759"), std::string::npos);  // outside marker
  // Renders without application markers too.
  EXPECT_NE(render_svg_bounding_box(box).find("</svg>"), std::string::npos);
}

TEST(Anomaly, IqrOutlierDetection) {
  const std::vector<double> values{2850.0, 1251.0, 2850.0,
                                   2851.0, 2849.0, 2850.0};
  const AnomalyReport report = detect_iqr_outliers("write bw", values);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.anomalies[0].location, "iteration 1");
  EXPECT_DOUBLE_EQ(report.anomalies[0].value, 1251.0);
  EXPECT_EQ(report.anomalies[0].severity, AnomalySeverity::kCritical);
}

TEST(Anomaly, IqrNeedsFourSamples) {
  const std::vector<double> values{1.0, 100.0, 1.0};
  EXPECT_TRUE(detect_iqr_outliers("x", values).empty());
}

TEST(Anomaly, ZScoreDetection) {
  std::vector<double> values(20, 100.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] += static_cast<double>(i % 3);  // small noise
  }
  values[7] = 250.0;
  const AnomalyReport report = detect_zscore("metric", values, 2.5);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.anomalies[0].location, "iteration 7");
}

TEST(Anomaly, RelativeDropMatchesPaperObservation) {
  // The paper's Fig. 5: iteration 2 writes at 1251 vs ~2850 MiB/s average,
  // "less than half the average throughput".
  const std::vector<double> values{2850.0, 1251.0, 2850.0,
                                   2850.0, 2850.0, 2850.0};
  const AnomalyReport report = detect_relative_drop("write bw", values, 0.5);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.anomalies[0].location, "iteration 1");
  EXPECT_LT(report.anomalies[0].deviation, -0.5);
}

TEST(Anomaly, TinyRelativeDeviationsAreSuppressed) {
  // A hyper-tight series makes Tukey fences flag sub-percent wobble; such
  // findings are immaterial and must be filtered.
  const std::vector<double> values{3221.0, 3221.5, 3221.2, 3187.0,
                                   3222.0, 3221.4};
  EXPECT_TRUE(detect_iqr_outliers("read bw", values).empty());
  EXPECT_TRUE(detect_zscore("read bw", values).empty());
}

TEST(Anomaly, NoFalsePositivesOnCleanSeries) {
  const std::vector<double> values{2850.0, 2851.0, 2849.0,
                                   2850.5, 2850.2, 2849.8};
  EXPECT_TRUE(detect_relative_drop("x", values).empty());
  EXPECT_TRUE(detect_iqr_outliers("x", values).empty());
}

TEST(Anomaly, KnowledgeLevelDetectionDeduplicates) {
  knowledge::Knowledge k;
  knowledge::OpSummary write;
  write.operation = "write";
  for (int i = 0; i < 6; ++i) {
    knowledge::OpResult r;
    r.iteration = i;
    r.bw_mib = i == 1 ? 1251.0 : 2850.0;
    r.iops = i == 1 ? 625.0 : 1425.0;
    write.results.push_back(r);
  }
  write.recompute();
  k.summaries.push_back(write);
  const AnomalyReport report = detect_in_knowledge(k);
  // bw caught by two detectors (deduplicated) + iops drop = 2 findings.
  EXPECT_EQ(report.size(), 2u);
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("write bw_mib"), std::string::npos);
  EXPECT_NE(rendered.find("write iops"), std::string::npos);
}

TEST(Anomaly, EmptyReportRenders) {
  EXPECT_EQ(AnomalyReport{}.render(), "no anomalies detected\n");
}

TEST(Anomaly, Io500RunComparison) {
  const knowledge::Io500Knowledge reference = sample_run();
  knowledge::Io500Knowledge probe = sample_run();
  for (auto& testcase : probe.testcases) {
    if (testcase.name == "ior-easy-read") {
      testcase.value *= 0.3;  // badly regressed
    }
  }
  const AnomalyReport report = compare_io500_runs(reference, probe, 0.3);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NE(report.anomalies[0].metric.find("ior-easy-read"),
            std::string::npos);
  EXPECT_NE(report.anomalies[0].description.find("regressed"),
            std::string::npos);
}

TEST(Anomaly, BoxViolationDetection) {
  const BoundingBox2D box = make_bounding_box(sample_run());
  EXPECT_TRUE(detect_box_violation(box, 1.5, 3.0).empty());
  const AnomalyReport below = detect_box_violation(box, 0.01, 3.0);
  ASSERT_EQ(below.size(), 1u);
  EXPECT_EQ(below.anomalies[0].severity, AnomalySeverity::kCritical);
  const AnomalyReport above = detect_box_violation(box, 5.0, 50.0);
  EXPECT_EQ(above.size(), 2u);
  EXPECT_EQ(above.anomalies[0].severity, AnomalySeverity::kInfo);
}

}  // namespace
}  // namespace iokc::analysis
