#include "src/analysis/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace iokc::analysis {
namespace {

TEST(Boxplot, FiveNumberSummary) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const BoxplotStats box = boxplot(values);
  EXPECT_DOUBLE_EQ(box.median, 4.5);
  EXPECT_DOUBLE_EQ(box.q1, 2.75);
  EXPECT_DOUBLE_EQ(box.q3, 6.25);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 8.0);
  EXPECT_DOUBLE_EQ(box.mean, 4.5);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(Boxplot, DetectsTukeyOutliers) {
  // Five tight values plus one far-away point.
  const std::vector<double> values{10.0, 10.1, 10.2, 10.3, 10.4, 30.0};
  const BoxplotStats box = boxplot(values);
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers[0], 30.0);
  // Whiskers exclude the outlier.
  EXPECT_DOUBLE_EQ(box.max, 10.4);
}

TEST(Boxplot, SingleValue) {
  const std::vector<double> values{5.0};
  const BoxplotStats box = boxplot(values);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  EXPECT_DOUBLE_EQ(box.min, 5.0);
  EXPECT_DOUBLE_EQ(box.max, 5.0);
}

TEST(Boxplot, EmptyThrows) {
  EXPECT_THROW(boxplot({}), ConfigError);
}

TEST(ZScores, KnownValues) {
  const std::vector<double> values{10.0, 20.0, 30.0};
  const std::vector<double> scores = z_scores(values);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_NEAR(scores[0], -1.0, 1e-9);
  EXPECT_NEAR(scores[1], 0.0, 1e-9);
  EXPECT_NEAR(scores[2], 1.0, 1e-9);
}

TEST(ZScores, ConstantSampleGivesZeros) {
  const std::vector<double> values{5.0, 5.0, 5.0};
  for (const double score : z_scores(values)) {
    EXPECT_DOUBLE_EQ(score, 0.0);
  }
}

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y;
  for (const double v : x) {
    y.push_back(3.0 + 2.0 * v);
  }
  const LinearModel model = fit_linear(x, y);
  EXPECT_NEAR(model.intercept, 3.0, 1e-9);
  EXPECT_NEAR(model.slope, 2.0, 1e-9);
  EXPECT_NEAR(model.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(model.predict(10.0), 23.0, 1e-9);
}

TEST(LinearFit, NoisyDataStillClose) {
  util::Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double v = static_cast<double>(i);
    x.push_back(v);
    y.push_back(1.5 * v - 4.0 + rng.normal(0.0, 2.0));
  }
  const LinearModel model = fit_linear(x, y);
  EXPECT_NEAR(model.slope, 1.5, 0.05);
  EXPECT_NEAR(model.intercept, -4.0, 3.0);
  EXPECT_GT(model.r_squared, 0.98);
}

TEST(LinearFit, Errors) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(fit_linear(one, one), ConfigError);
  const std::vector<double> constant{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_linear(constant, y), ConfigError);
}

TEST(Multilinear, RecoversPlane) {
  // y = 1 + 2*a - 3*b
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (double a = 0.0; a < 4.0; a += 1.0) {
    for (double b = 0.0; b < 4.0; b += 1.0) {
      rows.push_back({a, b});
      y.push_back(1.0 + 2.0 * a - 3.0 * b);
    }
  }
  const std::vector<double> coefficients = fit_multilinear(rows, y);
  ASSERT_EQ(coefficients.size(), 3u);
  EXPECT_NEAR(coefficients[0], 1.0, 1e-9);
  EXPECT_NEAR(coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(coefficients[2], -3.0, 1e-9);
}

TEST(Multilinear, Errors) {
  EXPECT_THROW(fit_multilinear({}, {}), ConfigError);
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(fit_multilinear({{1.0}, {1.0, 2.0}}, y), ConfigError);
  // Singular: duplicated feature column.
  std::vector<std::vector<double>> rows{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  const std::vector<double> y3{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_multilinear(rows, y3), ConfigError);
}

}  // namespace
}  // namespace iokc::analysis
