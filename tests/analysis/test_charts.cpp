#include "src/analysis/charts.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "src/util/error.hpp"

namespace iokc::analysis {
namespace {

Chart sample_chart() {
  Chart chart;
  chart.title = "throughput per iteration";
  chart.x_label = "iteration";
  chart.y_label = "MiB/s";
  chart.categories = {"1", "2", "3"};
  chart.series.push_back(Series{"write", {2850.0, 1251.0, 2850.0}});
  chart.series.push_back(Series{"read", {3000.0, 3010.0, 2990.0}});
  return chart;
}

TEST(Charts, ValidateCatchesLengthMismatch) {
  Chart chart = sample_chart();
  chart.series[0].values.pop_back();
  EXPECT_THROW(chart.validate(), ConfigError);
  Chart empty;
  empty.title = "e";
  EXPECT_THROW(empty.validate(), ConfigError);
}

TEST(Charts, LineChartSvgStructure) {
  const std::string svg = render_svg_line(sample_chart());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("throughput per iteration"), std::string::npos);
  EXPECT_NE(svg.find("write"), std::string::npos);  // legend
  EXPECT_NE(svg.find("read"), std::string::npos);
  // Two series -> two polylines.
  std::size_t count = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Charts, BarChartSvgStructure) {
  const std::string svg = render_svg_bar(sample_chart());
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  // 3 categories x 2 series = 6 bars plus background + legend swatches.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, 6u);
}

TEST(Charts, BoxplotSvgStructure) {
  BoxplotChart chart;
  chart.title = "boundary cases";
  chart.y_label = "GiB/s";
  BoxplotStats a;
  a.min = 1.0;
  a.q1 = 2.0;
  a.median = 3.0;
  a.q3 = 4.0;
  a.max = 5.0;
  a.outliers = {9.0};
  chart.boxes.emplace_back("ior-easy-write", a);
  chart.boxes.emplace_back("ior-hard-write", a);
  const std::string svg = render_svg_boxplot(chart);
  EXPECT_NE(svg.find("ior-easy-write"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);  // outlier markers
  EXPECT_NE(svg.find("<rect"), std::string::npos);    // boxes
}

TEST(Charts, BoxplotEmptyThrows) {
  BoxplotChart chart;
  EXPECT_THROW(render_svg_boxplot(chart), ConfigError);
}

TEST(Charts, SvgEscapesMarkup) {
  Chart chart = sample_chart();
  chart.title = "a < b & c";
  const std::string svg = render_svg_line(chart);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(svg.find("a < b"), std::string::npos);
}

TEST(Charts, AsciiBarShowsValuesAndBars) {
  const std::string text = render_ascii_bar(sample_chart());
  EXPECT_NE(text.find("throughput per iteration"), std::string::npos);
  EXPECT_NE(text.find("1/write"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
  EXPECT_NE(text.find("2850"), std::string::npos);
}

TEST(Charts, HeatmapSvgStructure) {
  HeatmapChart chart;
  chart.title = "bw by transfer x tasks";
  chart.x_label = "tasks";
  chart.y_label = "transfer";
  chart.columns = {"40", "80"};
  chart.rows = {"1m", "2m", "4m"};
  chart.values = {{100.0, 200.0}, {300.0, 400.0}, {500.0, 600.0}};
  const std::string svg = render_svg_heatmap(chart);
  // 6 data cells.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, 6u);
  EXPECT_NE(svg.find("bw by transfer x tasks"), std::string::npos);
  EXPECT_NE(svg.find("4m"), std::string::npos);
  EXPECT_NE(svg.find("600"), std::string::npos);
}

TEST(Charts, HeatmapValidation) {
  HeatmapChart chart;
  chart.title = "x";
  EXPECT_THROW(chart.validate(), ConfigError);
  chart.columns = {"a"};
  chart.rows = {"r"};
  chart.values = {{1.0, 2.0}};  // ragged vs one column
  EXPECT_THROW(chart.validate(), ConfigError);
  chart.values = {{1.0}};
  EXPECT_NO_THROW(chart.validate());
}

TEST(Charts, SaveSvgCreatesParentDirs) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("iokc_chart_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  const std::filesystem::path path = dir / "nested" / "chart.svg";
  save_svg(path.string(), render_svg_line(sample_chart()));
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 500u);
  std::filesystem::remove_all(dir);
}

TEST(Charts, NegativeValuesRenderInBarChart) {
  Chart chart;
  chart.title = "deviation";
  chart.categories = {"a", "b"};
  chart.series.push_back(Series{"delta", {-5.0, 10.0}});
  const std::string svg = render_svg_bar(chart);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
}

TEST(Charts, SingleCategorySingleSeries) {
  Chart chart;
  chart.title = "one";
  chart.categories = {"only"};
  chart.series.push_back(Series{"s", {42.0}});
  EXPECT_NO_THROW(render_svg_line(chart));
  EXPECT_NO_THROW(render_svg_bar(chart));
  EXPECT_NO_THROW(render_ascii_bar(chart));
}

}  // namespace
}  // namespace iokc::analysis
