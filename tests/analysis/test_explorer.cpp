#include "src/analysis/explorer.hpp"

#include <gtest/gtest.h>

#include "src/util/error.hpp"

namespace iokc::analysis {
namespace {

knowledge::Knowledge make_knowledge(const std::string& command,
                                    std::uint32_t tasks, double base_bw) {
  knowledge::Knowledge k;
  k.command = command;
  k.benchmark = "IOR";
  k.api = "MPIIO";
  k.test_file = "/s/t";
  k.num_tasks = tasks;
  k.num_nodes = tasks / 20 + 1;
  for (const char* op : {"write", "read"}) {
    knowledge::OpSummary summary;
    summary.operation = op;
    summary.api = "MPIIO";
    for (int i = 0; i < 6; ++i) {
      knowledge::OpResult r;
      r.iteration = i;
      r.bw_mib = base_bw + 10.0 * i + (op == std::string("read") ? 200.0 : 0.0);
      r.iops = r.bw_mib / 2.0;
      r.latency_sec = 0.05;
      r.total_sec = 4.4;
      summary.results.push_back(r);
    }
    summary.recompute();
    k.summaries.push_back(summary);
  }
  return k;
}

knowledge::Io500Knowledge make_io500(double easy_write) {
  knowledge::Io500Knowledge k;
  k.command = "io500 -N 40";
  k.num_tasks = 40;
  auto add = [&k](const std::string& name, double value,
                  const std::string& unit) {
    knowledge::Io500Testcase testcase;
    testcase.name = name;
    testcase.value = value;
    testcase.unit = unit;
    testcase.time_sec = 10.0;
    k.testcases.push_back(testcase);
  };
  add("ior-easy-write", easy_write, "GiB/s");
  add("ior-hard-write", 0.1, "GiB/s");
  add("ior-easy-read", 3.2, "GiB/s");
  add("ior-hard-read", 0.4, "GiB/s");
  k.score_bw_gib = 0.7;
  k.score_md_kiops = 9.0;
  k.score_total = 2.5;
  return k;
}

class ExplorerTest : public ::testing::Test {
 protected:
  ExplorerTest() : explorer_(repo_) {
    id_a_ = repo_.store(make_knowledge("ior -t 1m -N 40", 40, 2000.0));
    id_b_ = repo_.store(make_knowledge("ior -t 2m -N 80", 80, 2800.0));
    io500_a_ = repo_.store(make_io500(2.9));
    io500_b_ = repo_.store(make_io500(2.5));
  }

  persist::KnowledgeRepository repo_;
  KnowledgeExplorer explorer_;
  std::int64_t id_a_ = 0;
  std::int64_t id_b_ = 0;
  std::int64_t io500_a_ = 0;
  std::int64_t io500_b_ = 0;
};

TEST_F(ExplorerTest, MetricAccessors) {
  knowledge::OpResult r;
  r.bw_mib = 1.0;
  r.iops = 2.0;
  r.latency_sec = 3.0;
  r.open_sec = 4.0;
  r.wrrd_sec = 5.0;
  r.close_sec = 6.0;
  r.total_sec = 7.0;
  EXPECT_DOUBLE_EQ(op_result_metric(r, "bw_mib"), 1.0);
  EXPECT_DOUBLE_EQ(op_result_metric(r, "iops"), 2.0);
  EXPECT_DOUBLE_EQ(op_result_metric(r, "latency_sec"), 3.0);
  EXPECT_DOUBLE_EQ(op_result_metric(r, "total_sec"), 7.0);
  EXPECT_THROW(op_result_metric(r, "bogus"), ConfigError);

  knowledge::OpSummary s;
  s.mean_bw_mib = 8.0;
  s.max_ops = 9.0;
  EXPECT_DOUBLE_EQ(op_summary_metric(s, "mean_bw_mib"), 8.0);
  EXPECT_DOUBLE_EQ(op_summary_metric(s, "max_ops"), 9.0);
  EXPECT_THROW(op_summary_metric(s, "bogus"), ConfigError);
}

TEST_F(ExplorerTest, KnowledgeViewShowsEverything) {
  const std::string view = explorer_.render_knowledge_view(id_a_);
  EXPECT_NE(view.find("ior -t 1m -N 40"), std::string::npos);
  EXPECT_NE(view.find("write"), std::string::npos);
  EXPECT_NE(view.find("read"), std::string::npos);
  EXPECT_NE(view.find("max(MiB/s)"), std::string::npos);
}

TEST_F(ExplorerTest, IterationDetailsListEveryIteration) {
  const std::string details = explorer_.render_iteration_details(id_a_);
  // 6 iterations x 2 operations = 12 data rows.
  std::size_t write_rows = 0;
  std::size_t read_rows = 0;
  for (std::size_t pos = details.find("| write"); pos != std::string::npos;
       pos = details.find("| write", pos + 1)) {
    ++write_rows;
  }
  for (std::size_t pos = details.find("| read"); pos != std::string::npos;
       pos = details.find("| read", pos + 1)) {
    ++read_rows;
  }
  EXPECT_EQ(write_rows, 6u);
  EXPECT_EQ(read_rows, 6u);
}

TEST_F(ExplorerTest, IterationChartHasSeriesPerOperation) {
  const Chart chart = explorer_.iteration_chart(id_a_, "bw_mib");
  EXPECT_EQ(chart.categories.size(), 6u);
  ASSERT_EQ(chart.series.size(), 2u);
  EXPECT_EQ(chart.series[0].label, "write");
  EXPECT_DOUBLE_EQ(chart.series[0].values[0], 2000.0);
  EXPECT_DOUBLE_EQ(chart.series[1].values[0], 2200.0);
  EXPECT_NO_THROW(explorer_.iteration_chart(id_a_, "iops"));
  EXPECT_THROW(explorer_.iteration_chart(id_a_, "bogus"), ConfigError);
}

TEST_F(ExplorerTest, ComparisonChartSelectableAxes) {
  const Chart chart = explorer_.comparison_chart({id_a_, id_b_},
                                                 "mean_bw_mib", {"write"});
  ASSERT_EQ(chart.categories.size(), 2u);
  ASSERT_EQ(chart.series.size(), 1u);
  EXPECT_LT(chart.series[0].values[0], chart.series[0].values[1]);
  // Different metric on demand.
  const Chart ops = explorer_.comparison_chart({id_a_, id_b_}, "mean_ops",
                                               {"write", "read"});
  EXPECT_EQ(ops.series.size(), 2u);
}

TEST_F(ExplorerTest, OverviewBoxplotPerObject) {
  const BoxplotChart chart =
      explorer_.overview_boxplot({id_a_, id_b_}, "write");
  ASSERT_EQ(chart.boxes.size(), 2u);
  EXPECT_LT(chart.boxes[0].second.median, chart.boxes[1].second.median);
  EXPECT_THROW(explorer_.overview_boxplot({id_a_}, "bogus-op"), ConfigError);
}

TEST_F(ExplorerTest, FilterIdsWithSqlTail) {
  EXPECT_EQ(explorer_.filter_ids("num_tasks = 80"),
            (std::vector<std::int64_t>{id_b_}));
  EXPECT_EQ(explorer_.filter_ids("ORDER BY num_tasks DESC").front(), id_b_);
  EXPECT_EQ(explorer_.filter_ids("").size(), 2u);
  EXPECT_THROW(explorer_.filter_ids("bogus ="), ParseError);
}

TEST_F(ExplorerTest, Io500ViewAndChart) {
  const std::string view = explorer_.render_io500_view(io500_a_);
  EXPECT_NE(view.find("score"), std::string::npos);
  EXPECT_NE(view.find("ior-easy-write"), std::string::npos);
  const Chart chart = explorer_.io500_testcase_chart(io500_a_);
  EXPECT_EQ(chart.categories.size(), 4u);
}

TEST_F(ExplorerTest, BoundaryBoxplotAcrossRuns) {
  const BoxplotChart chart =
      explorer_.io500_boundary_boxplot({io500_a_, io500_b_});
  ASSERT_EQ(chart.boxes.size(), 4u);
  EXPECT_EQ(chart.boxes[0].first, "ior-easy-write");
  // Two runs with 2.9 / 2.5 -> median 2.7.
  EXPECT_NEAR(chart.boxes[0].second.median, 2.7, 1e-9);
}

TEST_F(ExplorerTest, UnknownIdsPropagateDbErrors) {
  EXPECT_THROW(explorer_.render_knowledge_view(999), DbError);
  EXPECT_THROW(explorer_.render_io500_view(999), DbError);
}

}  // namespace
}  // namespace iokc::analysis
