#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/error.hpp"

namespace iokc::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleFurtherEvents) {
  EventQueue queue;
  std::vector<double> times;
  queue.schedule_in(1.0, [&] {
    times.push_back(queue.now());
    queue.schedule_in(1.0, [&] { times.push_back(queue.now()); });
  });
  queue.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue queue;
  double fired_at = -1.0;
  queue.schedule_at(5.0, [&] {
    queue.schedule_at(1.0, [&] { fired_at = queue.now(); });  // in the past
  });
  queue.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, NegativeDelayClampsToZero) {
  EventQueue queue;
  bool fired = false;
  queue.schedule_in(-3.0, [&] { fired = true; });
  queue.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

TEST(EventQueue, CountsExecutedEvents) {
  EventQueue queue;
  for (int i = 0; i < 10; ++i) {
    queue.schedule_in(0.1 * i, [] {});
  }
  queue.run();
  EXPECT_EQ(queue.executed_events(), 10u);
}

TEST(EventQueue, EventBudgetGuardsRunawayModels) {
  EventQueue queue;
  std::function<void()> loop = [&] { queue.schedule_in(1.0, loop); };
  queue.schedule_in(1.0, loop);
  EXPECT_THROW(queue.run(/*max_events=*/100), iokc::SimError);
}

// Regression test for the heap extraction rework: equal-priority events must
// run in FIFO order even when interleaved with other priorities and when
// handlers schedule more work at the current time.
TEST(EventQueue, EqualPriorityFifoUnderInterleavedLoad) {
  EventQueue queue;
  std::vector<int> order;
  // Alternate between t=5 and t=1/t=9 so the heap reshuffles repeatedly.
  for (int i = 0; i < 20; ++i) {
    queue.schedule_at(5.0, [&order, i] { order.push_back(i); });
    queue.schedule_at(i % 2 == 0 ? 1.0 : 9.0, [] {});
  }
  queue.run();
  std::vector<int> expected(20);
  for (int i = 0; i < 20; ++i) {
    expected[static_cast<std::size_t>(i)] = i;
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, SameTimeReschedulingKeepsFifo) {
  EventQueue queue;
  std::vector<std::string> order;
  queue.schedule_at(1.0, [&] {
    order.push_back("first");
    // Scheduled mid-run at the current time: must run after already-queued
    // same-time events, not jump the line.
    queue.schedule_at(1.0, [&] { order.push_back("nested"); });
  });
  queue.schedule_at(1.0, [&] { order.push_back("second"); });
  queue.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"first", "second", "nested"}));
}

TEST(EventQueue, EmptyAndPending) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.schedule_in(1.0, [] {});
  EXPECT_FALSE(queue.empty());
  EXPECT_EQ(queue.pending(), 1u);
  queue.run();
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace iokc::sim
