#include "src/sim/cluster.hpp"

#include <gtest/gtest.h>

#include "src/sim/interference.hpp"
#include "src/sim/slurm.hpp"
#include "src/sim/sysinfo.hpp"
#include "src/util/error.hpp"

namespace iokc::sim {
namespace {

ClusterSpec small_spec() {
  ClusterSpec spec;
  spec.node_count = 4;
  spec.jitter_sigma = 0.0;
  return spec;
}

TEST(Cluster, FuchsSpecMatchesPaper) {
  const ClusterSpec spec = ClusterSpec::fuchs_csc();
  EXPECT_EQ(spec.node_count, 198u);
  EXPECT_EQ(spec.node.cpu.total_cores(), 20);
  EXPECT_EQ(spec.node.memory_bytes, 128ull * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(spec.fabric_bytes_per_sec, 27.0e9);
  EXPECT_EQ(spec.interconnect, "InfiniBand FDR");
}

TEST(Cluster, SkipsBrokenNodesOnly) {
  EventQueue queue;
  Cluster cluster(queue, small_spec(), 1);
  cluster.set_health(0, NodeHealth::kBroken);
  cluster.set_health(1, NodeHealth::kDegraded);
  // The degraded node looks healthy to the scheduler and is allocated in id
  // order; only the drained (broken) node is skipped.
  const auto nodes = cluster.allocate_nodes(2);
  EXPECT_EQ(nodes, (std::vector<std::size_t>{1, 2}));
}

TEST(Cluster, RefusesBrokenNodes) {
  EventQueue queue;
  Cluster cluster(queue, small_spec(), 1);
  for (std::size_t n = 0; n < 3; ++n) {
    cluster.set_health(n, NodeHealth::kBroken);
  }
  EXPECT_THROW(cluster.allocate_nodes(2), iokc::SimError);
  EXPECT_EQ(cluster.healthy_node_count(), 1u);
}

TEST(Cluster, DegradedNodeNicIsSlower) {
  EventQueue queue;
  ClusterSpec spec = small_spec();
  spec.node.nic_bytes_per_sec = 1.0e6;
  spec.node.nic_op_overhead_sec = 0.0;
  spec.degraded_rate_fraction = 0.25;
  Cluster cluster(queue, spec, 1);
  cluster.set_health(1, NodeHealth::kDegraded);

  SimTime healthy_done = 0.0;
  SimTime degraded_done = 0.0;
  cluster.nic(0).transfer(1'000'000, [&](SimTime t) { healthy_done = t; });
  cluster.nic(1).transfer(1'000'000, [&](SimTime t) { degraded_done = t; });
  queue.run();
  EXPECT_DOUBLE_EQ(healthy_done, 1.0);
  EXPECT_DOUBLE_EQ(degraded_done, 4.0);
}

TEST(Cluster, NodeIdValidation) {
  EventQueue queue;
  Cluster cluster(queue, small_spec(), 1);
  EXPECT_THROW(cluster.nic(4), iokc::SimError);
  EXPECT_THROW(cluster.health(99), iokc::SimError);
  EXPECT_THROW(cluster.set_health(99, NodeHealth::kBroken), iokc::SimError);
}

TEST(Cluster, JitterIsNearOne) {
  EventQueue queue;
  ClusterSpec spec = small_spec();
  spec.jitter_sigma = 0.02;
  Cluster cluster(queue, spec, 42);
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double j = cluster.jitter();
    EXPECT_GT(j, 0.8);
    EXPECT_LT(j, 1.2);
    sum += j;
  }
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.01);
}

TEST(Cluster, ZeroJitterSigmaGivesExactlyOne) {
  EventQueue queue;
  Cluster cluster(queue, small_spec(), 42);
  EXPECT_DOUBLE_EQ(cluster.jitter(), 1.0);
}

TEST(Interference, MultiplierComposesActiveWindows) {
  InterferenceSchedule schedule;
  schedule.add_window({1.0, 3.0, 0.5, "burst A"});
  schedule.add_window({2.0, 4.0, 0.5, "burst B"});
  EXPECT_DOUBLE_EQ(schedule.multiplier_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(schedule.multiplier_at(1.5), 0.5);
  EXPECT_DOUBLE_EQ(schedule.multiplier_at(2.5), 0.25);
  EXPECT_DOUBLE_EQ(schedule.multiplier_at(3.5), 0.5);
  EXPECT_DOUBLE_EQ(schedule.multiplier_at(4.0), 1.0);  // end-exclusive
}

TEST(Interference, RejectsBadWindows) {
  InterferenceSchedule schedule;
  EXPECT_THROW(schedule.add_window({2.0, 1.0, 0.5, ""}), iokc::SimError);
  EXPECT_THROW(schedule.add_window({0.0, 1.0, 1.0, ""}), iokc::SimError);
  EXPECT_THROW(schedule.add_window({0.0, 1.0, -0.1, ""}), iokc::SimError);
}

TEST(SysInfo, SnapshotReflectsSpec) {
  const ClusterSpec spec = ClusterSpec::fuchs_csc();
  const SystemInfo info = collect_system_info(spec, 3);
  EXPECT_EQ(info.hostname, "FUCHS-CSC-sim-node003");
  EXPECT_EQ(info.total_cores, 20);
  EXPECT_EQ(info.sockets, 2);
  EXPECT_DOUBLE_EQ(info.frequency_mhz, 2500.0);
  EXPECT_EQ(info.interconnect, "InfiniBand FDR");
}

TEST(SysInfo, RendersProcFormats) {
  const SystemInfo info =
      collect_system_info(ClusterSpec::fuchs_csc(), 0);
  const std::string cpuinfo = render_proc_cpuinfo(info);
  EXPECT_NE(cpuinfo.find("processor\t: 0"), std::string::npos);
  EXPECT_NE(cpuinfo.find("processor\t: 19"), std::string::npos);
  EXPECT_NE(cpuinfo.find("E5-2670 v2"), std::string::npos);
  const std::string meminfo = render_proc_meminfo(info);
  EXPECT_NE(meminfo.find("MemTotal:"), std::string::npos);
  const std::string summary = render_sysinfo_summary(info);
  EXPECT_NE(summary.find("total_cores: 20"), std::string::npos);
  EXPECT_NE(summary.find("memory_bytes: 137438953472"), std::string::npos);
}

TEST(Slurm, CompressesNodeLists) {
  EXPECT_EQ(compress_node_list("node", {0, 1, 2, 3}), "node[000-003]");
  EXPECT_EQ(compress_node_list("node", {5}), "node[005]");
  EXPECT_EQ(compress_node_list("node", {0, 1, 2, 5, 7, 8}),
            "node[000-002,005,007-008]");
  EXPECT_EQ(compress_node_list("node", {3, 1, 2, 1}), "node[001-003]");
  EXPECT_EQ(compress_node_list("n", {}), "n[]");
}

TEST(Slurm, RegistersJobsWithIncreasingIds) {
  SlurmContext slurm(100);
  const SlurmJobInfo a = slurm.register_job("ior", {0, 0, 1, 1}, 4, 1.5);
  const SlurmJobInfo b = slurm.register_job("io500", {2}, 20, 9.0);
  EXPECT_EQ(a.job_id, 100u);
  EXPECT_EQ(b.job_id, 101u);
  EXPECT_EQ(a.num_nodes, 2u);
  EXPECT_EQ(a.num_tasks, 4u);
  EXPECT_EQ(a.node_list, "node[000-001]");
  EXPECT_DOUBLE_EQ(a.start_time, 1.5);
  EXPECT_EQ(slurm.jobs_registered(), 2u);
}

TEST(Slurm, ScontrolRenderingShape) {
  SlurmContext slurm;
  const SlurmJobInfo job = slurm.register_job("ior", {0, 1}, 40, 2.0);
  const std::string text = job.render_scontrol();
  EXPECT_NE(text.find("JobId=4242 JobName=ior"), std::string::npos);
  EXPECT_NE(text.find("Partition=parallel"), std::string::npos);
  EXPECT_NE(text.find("NumNodes=2 NumTasks=40"), std::string::npos);
  EXPECT_NE(text.find("NodeList=node[000-001]"), std::string::npos);
  EXPECT_NE(text.find("StartTime=t+2.000"), std::string::npos);
}

}  // namespace
}  // namespace iokc::sim
