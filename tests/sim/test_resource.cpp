#include "src/sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/error.hpp"

namespace iokc::sim {
namespace {

TEST(QueuedResource, SingleSlotSerializesRequests) {
  EventQueue queue;
  QueuedResource server(queue, "mds", 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    server.submit(1.0, [&](SimTime t) { completions.push_back(t); });
  }
  queue.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 2.0);
  EXPECT_DOUBLE_EQ(completions[2], 3.0);
}

TEST(QueuedResource, ParallelSlotsOverlap) {
  EventQueue queue;
  QueuedResource server(queue, "mds", 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    server.submit(1.0, [&](SimTime t) { completions.push_back(t); });
  }
  queue.run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 1.0);
  EXPECT_DOUBLE_EQ(completions[2], 2.0);
  EXPECT_DOUBLE_EQ(completions[3], 2.0);
}

TEST(QueuedResource, TracksBusyTimeAndOps) {
  EventQueue queue;
  QueuedResource server(queue, "mds", 1);
  server.submit(2.0, [](SimTime) {});
  server.submit(3.0, [](SimTime) {});
  queue.run();
  EXPECT_DOUBLE_EQ(server.busy_time(), 5.0);
  EXPECT_EQ(server.completed_ops(), 2u);
}

TEST(QueuedResource, RejectsZeroCapacityAndNegativeService) {
  EventQueue queue;
  EXPECT_THROW(QueuedResource(queue, "x", 0), iokc::SimError);
  QueuedResource server(queue, "x", 1);
  EXPECT_THROW(server.submit(-1.0, [](SimTime) {}), iokc::SimError);
}

TEST(BandwidthPipe, TransferTimeMatchesRatePlusOverhead) {
  EventQueue queue;
  BandwidthPipe pipe(queue, "nic", /*rate=*/1.0e6, /*overhead=*/0.5);
  SimTime done = 0.0;
  pipe.transfer(1'000'000, [&](SimTime t) { done = t; });
  queue.run();
  EXPECT_DOUBLE_EQ(done, 1.5);  // 0.5 overhead + 1e6 / 1e6
}

TEST(BandwidthPipe, BackToBackTransfersQueueUp) {
  EventQueue queue;
  BandwidthPipe pipe(queue, "nic", 1.0e6, 0.0);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    pipe.transfer(500'000, [&](SimTime t) { completions.push_back(t); });
  }
  queue.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[2], 1.5);  // aggregate = rate-bound
  EXPECT_EQ(pipe.transferred_bytes(), 1'500'000u);
}

TEST(BandwidthPipe, RateMultiplierSlowsServiceAtStartTime) {
  EventQueue queue;
  BandwidthPipe pipe(queue, "target", 1.0e6, 0.0);
  pipe.set_rate_multiplier([](SimTime t) { return t < 1.0 ? 1.0 : 0.5; });
  std::vector<SimTime> completions;
  // First transfer starts at t=0 (full rate), second at t=1 (half rate).
  pipe.transfer(1'000'000, [&](SimTime t) { completions.push_back(t); });
  pipe.transfer(1'000'000, [&](SimTime t) { completions.push_back(t); });
  queue.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 3.0);  // 1.0 + 1e6 / (1e6 * 0.5)
}

TEST(BandwidthPipe, JitterScalesServiceTime) {
  EventQueue queue;
  BandwidthPipe pipe(queue, "target", 1.0e6, 0.0);
  SimTime done = 0.0;
  pipe.transfer(1'000'000, [&](SimTime t) { done = t; }, /*jitter=*/2.0);
  queue.run();
  EXPECT_DOUBLE_EQ(done, 2.0);
}

TEST(BandwidthPipe, MultiLanePipeSharesAggregate) {
  EventQueue queue;
  // 2 lanes at 0.5 MB/s each = 1 MB/s aggregate.
  BandwidthPipe pipe(queue, "fabric", 0.5e6, 0.0, /*capacity=*/2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    pipe.transfer(500'000, [&](SimTime t) { completions.push_back(t); });
  }
  queue.run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_DOUBLE_EQ(completions[3], 2.0);  // 2 MB total / 1 MB/s
}

TEST(BandwidthPipe, RejectsNonPositiveRate) {
  EventQueue queue;
  EXPECT_THROW(BandwidthPipe(queue, "x", 0.0, 0.0), iokc::SimError);
  EXPECT_THROW(BandwidthPipe(queue, "x", -5.0, 0.0), iokc::SimError);
  EXPECT_THROW(BandwidthPipe(queue, "x", 1.0, -0.1), iokc::SimError);
}

}  // namespace
}  // namespace iokc::sim
