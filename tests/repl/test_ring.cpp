#include "src/repl/ring.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/error.hpp"

namespace iokc::repl {
namespace {

std::vector<std::string> sample_keys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    keys.push_back(HashRing::knowledge_key(
        i % 2 == 0 ? "ior" : "io500", "node" + std::to_string(i) + ".hpc"));
  }
  return keys;
}

TEST(HashRingTest, MappingIsDeterministicAcrossInstances) {
  const HashRing a(5), b(5);
  for (const std::string& key : sample_keys(500)) {
    EXPECT_EQ(a.shard_for(key), b.shard_for(key)) << key;
  }
}

TEST(HashRingTest, SingleShardTakesEverything) {
  const HashRing ring(1);
  for (const std::string& key : sample_keys(100)) {
    EXPECT_EQ(ring.shard_for(key), 0u);
  }
}

TEST(HashRingTest, EmptyRingThrows) {
  const HashRing ring(0);
  EXPECT_THROW(ring.shard_for("anything"), ConfigError);
}

TEST(HashRingTest, KeysSpreadAcrossShards) {
  constexpr std::size_t kShards = 3;
  constexpr int kKeys = 3000;
  const HashRing ring(kShards);
  std::vector<int> counts(kShards, 0);
  for (const std::string& key : sample_keys(kKeys)) {
    ++counts[ring.shard_for(key)];
  }
  // Perfect balance would be ~1000 each; 64 vnodes per shard keeps every
  // shard within a loose band of that.
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(counts[shard], kKeys / 10) << "shard " << shard << " starved";
    EXPECT_LT(counts[shard], kKeys * 6 / 10) << "shard " << shard << " hot";
  }
}

TEST(HashRingTest, GrowingTheRingRemapsRoughlyOneOverN) {
  const HashRing before(3), after(4);
  const std::vector<std::string> keys = sample_keys(4000);
  int moved = 0;
  for (const std::string& key : keys) {
    if (before.shard_for(key) != after.shard_for(key)) {
      ++moved;
    }
  }
  const double fraction = static_cast<double>(moved) /
                          static_cast<double>(keys.size());
  // Consistent hashing moves ~1/4 of the keyspace to the new shard; modulo
  // hashing would move ~3/4. The band is generous for vnode placement noise.
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.45);
  // Keys that moved all moved TO the new shard — nothing shuffles between
  // surviving shards.
  for (const std::string& key : keys) {
    if (before.shard_for(key) != after.shard_for(key)) {
      EXPECT_EQ(after.shard_for(key), 3u) << key;
    }
  }
}

TEST(HashRingTest, KnowledgeKeySeparatesFields) {
  // The separator keeps ("ab", "c") and ("a", "bc") distinct.
  EXPECT_NE(HashRing::knowledge_key("ab", "c"),
            HashRing::knowledge_key("a", "bc"));
  EXPECT_EQ(HashRing::knowledge_key("ior", "n1"),
            HashRing::knowledge_key("ior", "n1"));
}

}  // namespace
}  // namespace iokc::repl
