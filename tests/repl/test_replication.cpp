// End-to-end WAL shipping over real sockets: bootstrap snapshots, the
// batch/ack stream, commit-gate ack policies, fencing of diverged
// subscribers, the replica's write refusal + redirect, and the wire codecs
// everything rides on.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/knowledge/knowledge.hpp"
#include "src/persist/repository.hpp"
#include "src/repl/cluster_client.hpp"
#include "src/repl/node.hpp"
#include "src/repl/wire.hpp"
#include "src/svc/client.hpp"
#include "src/util/error.hpp"

namespace iokc::repl {
namespace {

knowledge::Knowledge make_ior_knowledge(int index) {
  knowledge::Knowledge object;
  object.benchmark = "IOR";
  object.command = "ior -a posix -b 4m -t 1m -s 4 -N " +
                   std::to_string(8 << (index % 3)) + " -o /s/repl" +
                   std::to_string(index);
  object.num_tasks = static_cast<std::uint32_t>(8 << (index % 3));
  knowledge::OpSummary write;
  write.operation = "write";
  write.mean_bw_mib = 700.0 + 90.0 * index;
  object.summaries.push_back(write);
  return object;
}

util::JsonValue store_params(int index) {
  util::JsonObject object;
  object.emplace_back("object", make_ior_knowledge(index).to_json());
  return util::JsonValue(std::move(object));
}

TEST(ReplWireTest, SubscribeRoundTrip) {
  SubscribeMsg msg;
  msg.last_seq = 42;
  msg.synced = true;
  const SubscribeMsg parsed = parse_subscribe(encode_subscribe(msg));
  EXPECT_EQ(parsed.last_seq, 42u);
  EXPECT_TRUE(parsed.synced);
  EXPECT_THROW(parse_subscribe(encode_ack(1)), ParseError);
}

TEST(ReplWireTest, HandshakeReplyRoundTrips) {
  const HandshakeReply snapshot =
      parse_handshake_reply(encode_snapshot(7, "CREATE TABLE t (x INTEGER)"));
  EXPECT_EQ(snapshot.kind, HandshakeReply::Kind::kSnapshot);
  EXPECT_EQ(snapshot.seq, 7u);
  EXPECT_EQ(snapshot.dump, "CREATE TABLE t (x INTEGER)");

  const HandshakeReply uptodate = parse_handshake_reply(encode_uptodate(9));
  EXPECT_EQ(uptodate.kind, HandshakeReply::Kind::kUpToDate);
  EXPECT_EQ(uptodate.seq, 9u);

  EXPECT_EQ(parse_handshake_reply(encode_fence()).kind,
            HandshakeReply::Kind::kFence);
  EXPECT_THROW(parse_handshake_reply(encode_ack(3)), ParseError);
}

TEST(ReplWireTest, BatchRoundTripPreservesOrderAndEscapes) {
  std::vector<db::JournalRecord> records;
  db::JournalRecord first;
  first.seq = 5;
  first.statements = {"INSERT INTO t VALUES ('it''s \"quoted\"')",
                      "UPDATE t SET x = 2"};
  db::JournalRecord second;
  second.seq = 6;
  second.statements = {"DELETE FROM t"};
  records.push_back(first);
  records.push_back(second);

  const BatchMsg parsed = parse_batch(encode_batch(records));
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0].seq, 5u);
  EXPECT_EQ(parsed.records[0].statements, first.statements);
  EXPECT_EQ(parsed.records[1].seq, 6u);
  EXPECT_EQ(parsed.records[1].statements, second.statements);

  const AckMsg ack = parse_ack(encode_ack(6));
  EXPECT_EQ(ack.seq, 6u);
}

TEST(ReplWireTest, ParseHostPort) {
  const auto [host, port] = parse_host_port("127.0.0.1:8042");
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8042);
  // IPv6-ish and hostname forms split on the LAST colon.
  EXPECT_EQ(parse_host_port("node-a.cluster:1").second, 1);

  EXPECT_THROW(parse_host_port("no-port"), ConfigError);
  EXPECT_THROW(parse_host_port(":80"), ConfigError);
  EXPECT_THROW(parse_host_port("h:"), ConfigError);
  EXPECT_THROW(parse_host_port("h:abc"), ConfigError);
  EXPECT_THROW(parse_host_port("h:0"), ConfigError);
  EXPECT_THROW(parse_host_port("h:70000"), ConfigError);
}

TEST(ReplWireTest, ParsePrimaryRedirect) {
  EXPECT_EQ(parse_primary_redirect(
                "read-only replica; write to primary at 10.0.0.1:9000"),
            "10.0.0.1:9000");
  EXPECT_EQ(parse_primary_redirect("write to primary at h:1.\n"), "h:1");
  EXPECT_FALSE(parse_primary_redirect("some other error").has_value());
  EXPECT_FALSE(
      parse_primary_redirect("write to primary at unknown").has_value());
}

// The retry pacing contract behind svc::Client::connect: refusal retries at
// the fixed base (the listener is just not up yet), timeouts back off
// exponentially with bounded jitter so fleets don't retry in lockstep.
TEST(ReplWireTest, ConnectRetryDelayPolicy) {
  svc::ClientOptions options;
  options.retry_delay_ms = 100;
  options.max_retry_delay_ms = 2000;
  std::uint64_t jitter = 12345;

  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(svc::connect_retry_delay_ms(
                  options, attempt, "connect: connection refused", jitter),
              100);
  }

  int previous = 0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const int delay = svc::connect_retry_delay_ms(
        options, attempt, "connect to 10.0.0.1:1 timed out", jitter);
    // Exponential base doubling, jitter adds at most half on top, and the
    // cap bounds everything.
    const int base = std::min(100 << (attempt - 1), 2000);
    EXPECT_GE(delay, base) << "attempt " << attempt;
    EXPECT_LE(delay, 2000) << "attempt " << attempt;
    if (attempt > 1 && previous < 1000) {
      EXPECT_GT(delay, previous / 2);  // trend upward despite jitter
    }
    previous = delay;
  }
}

/// Spins up a file-backed primary (service + WAL shipper) and N file-backed
/// replicas in one process, all talking over loopback sockets.
class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("iokc_repl_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }

  ~ReplicationTest() override {
    replicas_.clear();
    primary_.reset();
    std::filesystem::remove_all(root_);
  }

  persist::RepoTarget file_target(const std::string& name) const {
    return persist::RepoTarget::parse("file:" + (root_ / name).string());
  }

  void start_primary(AckPolicy policy, std::size_t expected_replicas,
                     int ack_timeout_ms = 3000) {
    primary_repo_ = std::make_unique<persist::KnowledgeRepository>(
        file_target("primary.db"));
    ShipperConfig ship;
    ship.ack_policy = policy;
    ship.expected_replicas = expected_replicas;
    ship.ack_timeout_ms = ack_timeout_ms;
    primary_ = std::make_unique<PrimaryNode>(*primary_repo_,
                                             svc::ServerConfig{}, ship);
    primary_->start();
  }

  std::string primary_service_address() const {
    return "127.0.0.1:" + std::to_string(primary_->server().port());
  }

  struct Replica {
    std::unique_ptr<persist::KnowledgeRepository> repo;
    std::unique_ptr<ReplicaNode> node;
  };

  Replica& start_replica(const std::string& name) {
    auto replica = std::make_unique<Replica>();
    replica->repo = std::make_unique<persist::KnowledgeRepository>(
        file_target(name + ".db"));
    svc::ServerConfig server;
    server.primary_address = primary_service_address();
    ReplicaConfig config;
    config.primary_host = "127.0.0.1";
    config.primary_port = primary_->shipper().port();
    config.reconnect_delay_ms = 100;
    config.marker_path = (root_ / (name + ".synced")).string();
    replica->node = std::make_unique<ReplicaNode>(*replica->repo,
                                                  std::move(server), config);
    replica->node->start();
    replicas_.push_back(std::move(replica));
    return *replicas_.back();
  }

  /// Blocks until `replica` has applied the primary's current position.
  void wait_caught_up(Replica& replica, int timeout_ms = 10000) {
    ASSERT_TRUE(replica.node->replication().wait_applied(
        primary_repo_->applied_seq(), timeout_ms))
        << "replica stuck at "
        << replica.node->replication().applied_seq() << ", primary at "
        << primary_repo_->applied_seq();
  }

  std::filesystem::path root_;
  std::unique_ptr<persist::KnowledgeRepository> primary_repo_;
  std::unique_ptr<PrimaryNode> primary_;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

TEST_F(ReplicationTest, BootstrapThenStreamThenCatchUpAfterRestart) {
  start_primary(AckPolicy::kOne, 1);
  for (int i = 0; i < 3; ++i) {
    primary_repo_->store(make_ior_knowledge(i));
  }

  // The replica joins AFTER the writes: it must bootstrap from a snapshot.
  Replica& replica = start_replica("r1");
  wait_caught_up(replica);
  EXPECT_EQ(replica.repo->knowledge_ids().size(), 3u);

  // A write over the service wire now streams to the replica and the ack
  // policy (one) confirms remote durability in the response.
  svc::Client client =
      svc::Client::connect("127.0.0.1", primary_->server().port());
  const svc::Response stored = client.call("knowledge/store", store_params(3));
  ASSERT_TRUE(stored.ok) << stored.error;
  EXPECT_EQ(stored.result.at("replication").as_string(), "acked");
  wait_caught_up(replica);
  EXPECT_EQ(replica.repo->knowledge_ids().size(), 4u);

  // Replicated state is byte-identical, not just same-cardinality.
  EXPECT_EQ(primary_repo_->dump_with_epoch().dump,
            replica.repo->dump_with_epoch().dump);

  // Restart the replica: the synced marker short-circuits re-bootstrap
  // bookkeeping, and writes made while it was down stream across on rejoin.
  replica.node->stop();
  client.call("knowledge/store", store_params(4));
  replica.node->start();
  wait_caught_up(replica);
  EXPECT_EQ(replica.repo->knowledge_ids().size(), 5u);
  EXPECT_EQ(primary_repo_->dump_with_epoch().dump,
            replica.repo->dump_with_epoch().dump);
}

TEST_F(ReplicationTest, ReplicaRefusesWritesWithRedirect) {
  start_primary(AckPolicy::kNone, 1);
  primary_repo_->store(make_ior_knowledge(0));
  Replica& replica = start_replica("r1");
  wait_caught_up(replica);

  svc::Client client =
      svc::Client::connect("127.0.0.1", replica.node->server().port());
  const svc::Response refused = client.call("knowledge/store", store_params(9));
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(parse_primary_redirect(refused.error), primary_service_address());
  // Reads keep working on the same connection.
  EXPECT_TRUE(client.call("list").ok);

  // The replica's health carries its role and replication position.
  const svc::Response health = client.call("health");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.result.at("role").as_string(), "replica");
  EXPECT_TRUE(health.result.at("connected").as_bool());
  EXPECT_EQ(static_cast<std::uint64_t>(
                health.result.at("journal_offset").as_int()),
            primary_repo_->applied_seq());
}

TEST_F(ReplicationTest, QuorumGateAcksAndTimesOutWithoutReplicas) {
  // expected_replicas=2 -> quorum of the 3-node cluster needs 1 replica ack.
  start_primary(AckPolicy::kQuorum, 2, /*ack_timeout_ms=*/300);
  Replica& r1 = start_replica("r1");
  Replica& r2 = start_replica("r2");

  svc::Client client =
      svc::Client::connect("127.0.0.1", primary_->server().port());
  const svc::Response acked = client.call("knowledge/store", store_params(0));
  ASSERT_TRUE(acked.ok) << acked.error;
  EXPECT_EQ(acked.result.at("replication").as_string(), "acked");
  wait_caught_up(r1);
  wait_caught_up(r2);

  // With every replica gone the quorum can't form: the write is still
  // locally durable (it succeeds) but the response reports the ack timeout.
  r1.node->stop();
  r2.node->stop();
  const svc::Response lonely = client.call("knowledge/store", store_params(1));
  ASSERT_TRUE(lonely.ok) << lonely.error;
  EXPECT_EQ(lonely.result.at("replication").as_string(), "ack-timeout");

  // Primary stats expose the shipping counters and ack accounting.
  const svc::Response stats = client.call("stats");
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.result.at("role").as_string(), "primary");
  EXPECT_EQ(stats.result.at("ack_policy").as_string(), "quorum");
  EXPECT_GE(stats.result.at("shipped_batches").as_int(), 1);
  EXPECT_GE(stats.result.at("ack_timeouts").as_int(), 1);
}

TEST_F(ReplicationTest, DivergedSubscriberIsFencedAndReBootstraps) {
  start_primary(AckPolicy::kNone, 1);
  primary_repo_->store(make_ior_knowledge(0));
  Replica& replica = start_replica("r1");
  wait_caught_up(replica);

  // Simulate a stale ex-primary: while disconnected, the replica's database
  // grows records the real primary never saw.
  replica.node->stop();
  db::JournalRecord rogue;
  rogue.seq = replica.repo->applied_seq() + 1;
  rogue.statements = {
      "INSERT INTO performances (benchmark, command) VALUES ('IOR', 'rogue')"};
  replica.repo->wait_journal_durable(replica.repo->apply_replicated(rogue));
  ASSERT_GT(replica.repo->applied_seq(), primary_repo_->applied_seq());

  // On rejoin the primary fences it; the replica drops its synced marker,
  // re-bootstraps from a fresh snapshot, and converges on the primary's
  // timeline — the rogue write is gone. wait_applied can't express "moved
  // BACK to the primary's position", so poll for convergence.
  replica.node->start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (replica.repo->applied_seq() != primary_repo_->applied_seq() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(replica.repo->applied_seq(), primary_repo_->applied_seq());
  EXPECT_EQ(primary_repo_->dump_with_epoch().dump,
            replica.repo->dump_with_epoch().dump);

  // The repo position converges before the client's counters update (the
  // synced-marker fsync sits in between), so poll the stats too.
  svc::Client client =
      svc::Client::connect("127.0.0.1", replica.node->server().port());
  svc::Response stats = client.call("stats");
  while ((!stats.ok || stats.result.at("bootstraps").as_int() < 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stats = client.call("stats");
  }
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_GE(stats.result.at("fences").as_int(), 1);
  EXPECT_GE(stats.result.at("bootstraps").as_int(), 2);
}

TEST_F(ReplicationTest, ClusterClientSplitsReadsAndFollowsWriteRedirect) {
  start_primary(AckPolicy::kOne, 2);
  Replica& r1 = start_replica("r1");
  Replica& r2 = start_replica("r2");

  const std::string primary_addr = primary_service_address();
  const std::string r1_addr =
      "127.0.0.1:" + std::to_string(r1.node->server().port());
  const std::string r2_addr =
      "127.0.0.1:" + std::to_string(r2.node->server().port());

  ClusterClient cluster({primary_addr, r1_addr, r2_addr});
  const svc::Response stored =
      cluster.call("knowledge/store", store_params(0));
  ASSERT_TRUE(stored.ok) << stored.error;
  wait_caught_up(r1);
  wait_caught_up(r2);

  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(cluster.call("list").ok);
  }
  // Round-robin: every target served some reads.
  const std::vector<std::uint64_t>& reads = cluster.reads_per_target();
  ASSERT_EQ(reads.size(), 3u);
  for (std::size_t target = 0; target < reads.size(); ++target) {
    EXPECT_GE(reads[target], 3u) << "target " << target;
  }

  // A client configured with a replica as its "primary" follows the
  // redirect, lands the write, and adopts the real primary address.
  ClusterClient misconfigured({r1_addr, r2_addr});
  const svc::Response redirected =
      misconfigured.call("knowledge/store", store_params(1));
  ASSERT_TRUE(redirected.ok) << redirected.error;
  EXPECT_EQ(misconfigured.primary_address(), primary_addr);
  wait_caught_up(r1);
  EXPECT_EQ(r1.repo->knowledge_ids().size(), 2u);
}

TEST_F(ReplicationTest, StaleReadBoundSkipsLaggingReplica) {
  start_primary(AckPolicy::kNone, 1);
  primary_repo_->store(make_ior_knowledge(0));
  Replica& replica = start_replica("r1");
  wait_caught_up(replica);

  // Stop the replica's replication (its service keeps answering) and write
  // more on the primary: the replica now lags by > 0 sequences.
  replica.node->replication().stop();
  svc::Client direct =
      svc::Client::connect("127.0.0.1", primary_->server().port());
  ASSERT_TRUE(direct.call("knowledge/store", store_params(1)).ok);
  ASSERT_TRUE(direct.call("knowledge/store", store_params(2)).ok);

  ClusterClientOptions options;
  options.max_epoch_lag = 1;
  options.probe_interval_ms = 0;  // probe every read; no caching window
  ClusterClient cluster(
      {primary_service_address(),
       "127.0.0.1:" + std::to_string(replica.node->server().port())},
      options);
  for (int i = 0; i < 6; ++i) {
    const svc::Response listed = cluster.call("list");
    ASSERT_TRUE(listed.ok) << listed.error;
    // Every bounded read must see all 3 objects — the lagging replica
    // (still at 1 object) is skipped.
    EXPECT_EQ(listed.result.at("knowledge").as_array().size(), 3u);
  }
  EXPECT_EQ(cluster.reads_per_target()[1], 0u);
}

}  // namespace
}  // namespace iokc::repl
