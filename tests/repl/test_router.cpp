// The shard router: consistent placement of stored objects, first-success id
// scans, fan-out merges, best-evidence model queries, and one dead shard not
// poisoning the rest.
#include "src/repl/router.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/knowledge/knowledge.hpp"
#include "src/persist/repository.hpp"
#include "src/repl/ring.hpp"
#include "src/svc/client.hpp"
#include "src/svc/server.hpp"
#include "src/util/json.hpp"

namespace iokc::repl {
namespace {

knowledge::Knowledge make_knowledge(const std::string& hostname, int index) {
  knowledge::Knowledge object;
  object.benchmark = "IOR";
  object.command = "ior -a posix -b 4m -t 1m -s 4 -N " +
                   std::to_string(8 << (index % 3)) + " -o /s/rt" +
                   std::to_string(index);
  object.num_tasks = static_cast<std::uint32_t>(8 << (index % 3));
  knowledge::SystemInfoRecord system;
  system.hostname = hostname;
  object.system = system;
  knowledge::OpSummary write;
  write.operation = "write";
  write.mean_bw_mib = 800.0 + 110.0 * index;
  object.summaries.push_back(write);
  return object;
}

util::JsonValue store_params(const knowledge::Knowledge& object) {
  util::JsonObject params;
  params.emplace_back("object", object.to_json());
  return util::JsonValue(std::move(params));
}

svc::Request make_request(const std::string& endpoint,
                          util::JsonValue params =
                              util::JsonValue(util::JsonObject{})) {
  svc::Request request;
  request.endpoint = endpoint;
  request.params = std::move(params);
  return request;
}

TEST(RouterPlacementTest, ShardForObjectIsStableAndKeyDriven) {
  RouterConfig config;
  config.shards = {"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"};
  const Router router(config);

  const util::JsonValue object = make_knowledge("nodeA", 0).to_json();
  const std::size_t shard = router.shard_for_object(object);
  EXPECT_EQ(router.shard_for_object(object), shard);
  // Placement matches the ring applied to the knowledge key directly.
  const HashRing ring(3, config.vnodes);
  EXPECT_EQ(shard, ring.shard_for(HashRing::knowledge_key("IOR", "nodeA")));

  // Different hostnames spread across shards.
  std::set<std::size_t> used;
  for (int i = 0; i < 64; ++i) {
    used.insert(router.shard_for_object(
        make_knowledge("host" + std::to_string(i), i).to_json()));
  }
  EXPECT_EQ(used.size(), 3u);
}

/// Two live in-memory shard servers fronted by one router.
class RouterTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kShards = 2;

  void SetUp() override {
    RouterConfig config;
    for (std::size_t shard = 0; shard < kShards; ++shard) {
      repos_.push_back(std::make_unique<persist::KnowledgeRepository>());
      servers_.push_back(
          std::make_unique<svc::Server>(*repos_.back()));
      servers_.back()->start();
      config.shards.push_back("127.0.0.1:" +
                              std::to_string(servers_.back()->port()));
    }
    router_ = std::make_unique<Router>(std::move(config));
    router_->start();
  }

  void TearDown() override {
    router_->stop();
    for (auto& server : servers_) {
      server->stop();
    }
  }

  std::vector<std::unique_ptr<persist::KnowledgeRepository>> repos_;
  std::vector<std::unique_ptr<svc::Server>> servers_;
  std::unique_ptr<Router> router_;
};

TEST_F(RouterTest, StoreRoutesToOwningShardAndTagsResponse) {
  int stored = 0;
  std::set<std::size_t> used;
  for (int i = 0; i < 12; ++i) {
    const knowledge::Knowledge object =
        make_knowledge("host" + std::to_string(i), i);
    const std::size_t expected = router_->shard_for_object(object.to_json());
    const svc::Response response =
        router_->dispatch(make_request("knowledge/store",
                                       store_params(object)));
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(static_cast<std::size_t>(response.result.at("shard").as_int()),
              expected);
    used.insert(expected);
    ++stored;
  }
  EXPECT_EQ(used.size(), kShards) << "placement never used one of the shards";

  // Every object landed on exactly one shard.
  std::size_t total = 0;
  for (const auto& repo : repos_) {
    total += repo->knowledge_ids().size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(stored));
}

TEST_F(RouterTest, ListMergesShardsWithTags) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(router_
                    ->dispatch(make_request(
                        "knowledge/store",
                        store_params(make_knowledge("h" + std::to_string(i),
                                                    i))))
                    .ok);
  }
  const svc::Response listed = router_->dispatch(make_request("list"));
  ASSERT_TRUE(listed.ok) << listed.error;
  EXPECT_EQ(listed.result.at("shards").as_int(),
            static_cast<std::int64_t>(kShards));
  const util::JsonArray& entries = listed.result.at("knowledge").as_array();
  EXPECT_EQ(entries.size(), 8u);
  std::set<std::int64_t> tags;
  for (const util::JsonValue& entry : entries) {
    tags.insert(entry.at("shard").as_int());
  }
  EXPECT_EQ(tags.size(), kShards);
}

TEST_F(RouterTest, SqlConcatenatesRowsAcrossShards) {
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(router_
                    ->dispatch(make_request(
                        "knowledge/store",
                        store_params(make_knowledge("q" + std::to_string(i),
                                                    i))))
                    .ok);
  }
  util::JsonObject params;
  params.emplace_back(
      "statement", util::JsonValue("SELECT command FROM performances"));
  const svc::Response rows = router_->dispatch(
      make_request("sql", util::JsonValue(std::move(params))));
  ASSERT_TRUE(rows.ok) << rows.error;
  EXPECT_EQ(rows.result.at("rows").as_array().size(), 6u);
}

TEST_F(RouterTest, GetScansShardsForShardLocalIds) {
  const knowledge::Knowledge object = make_knowledge("scan-host", 1);
  const svc::Response stored = router_->dispatch(
      make_request("knowledge/store", store_params(object)));
  ASSERT_TRUE(stored.ok) << stored.error;
  const std::int64_t id = stored.result.at("id").as_int();
  const std::int64_t shard = stored.result.at("shard").as_int();

  // Undirected: the router scans shards until one has the id.
  util::JsonObject lookup;
  lookup.emplace_back("id", util::JsonValue(id));
  const svc::Response scanned = router_->dispatch(
      make_request("knowledge/get", util::JsonValue(lookup)));
  ASSERT_TRUE(scanned.ok) << scanned.error;
  EXPECT_EQ(knowledge::Knowledge::from_json(scanned.result.at("object")),
            object);

  // Directed: the remembered shard tag skips the scan.
  lookup.emplace_back("shard", util::JsonValue(shard));
  const svc::Response directed = router_->dispatch(
      make_request("knowledge/get", util::JsonValue(std::move(lookup))));
  ASSERT_TRUE(directed.ok) << directed.error;

  util::JsonObject missing;
  missing.emplace_back("id", util::JsonValue(std::int64_t{424242}));
  EXPECT_FALSE(router_
                   ->dispatch(make_request("knowledge/get",
                                           util::JsonValue(missing)))
                   .ok);
}

TEST_F(RouterTest, PredictAnswersFromShardWithMostEvidence) {
  // All samples share one hostname, so one shard holds every IOR run and
  // the other stays empty — predict must come from the populated model.
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(router_
                    ->dispatch(make_request(
                        "knowledge/store",
                        store_params(make_knowledge("evidence-host", i))))
                    .ok);
  }
  util::JsonObject params;
  params.emplace_back(
      "command",
      util::JsonValue("ior -a posix -b 4m -t 1m -s 4 -N 16 -o /s/q"));
  const svc::Response predicted = router_->dispatch(
      make_request("predict", util::JsonValue(std::move(params))));
  ASSERT_TRUE(predicted.ok) << predicted.error;
  EXPECT_EQ(predicted.result.at("samples").as_int(), 9);
}

TEST_F(RouterTest, HealthAndStatsReportRouterRoleAndShardResults) {
  svc::Client client = svc::Client::connect("127.0.0.1", router_->port());
  const svc::Response health = client.call("health");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.result.at("role").as_string(), "router");
  const util::JsonArray& results =
      health.result.at("shard_results").as_array();
  ASSERT_EQ(results.size(), kShards);
  for (const util::JsonValue& entry : results) {
    EXPECT_TRUE(entry.at("ok").as_bool());
    EXPECT_EQ(entry.at("result").at("status").as_string(), "ok");
  }

  const svc::Response stats = client.call("stats");
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.result.at("role").as_string(), "router");
  EXPECT_GE(stats.result.at("requests").as_int(), 1);
}

TEST(RouterFaultTest, DeadShardDoesNotPoisonTheFanOut) {
  persist::KnowledgeRepository repo;
  svc::Server live(repo);
  live.start();
  // Reserve a port with a listener, then close it: connecting is refused.
  std::uint16_t dead_port = 0;
  {
    persist::KnowledgeRepository scratch;
    svc::Server placeholder(scratch);
    placeholder.start();
    dead_port = placeholder.port();
    placeholder.stop();
  }

  RouterConfig config;
  config.shards = {"127.0.0.1:" + std::to_string(live.port()),
                   "127.0.0.1:" + std::to_string(dead_port)};
  Router router(std::move(config));
  router.start();

  svc::Request request;
  request.endpoint = "health";
  request.params = util::JsonValue(util::JsonObject{});
  const svc::Response health = router.dispatch(request);
  ASSERT_TRUE(health.ok) << health.error;
  const util::JsonArray& results =
      health.result.at("shard_results").as_array();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].at("ok").as_bool());
  EXPECT_FALSE(results[1].at("ok").as_bool());
  EXPECT_NE(results[1].at("error").as_string().find("unreachable"),
            std::string::npos);

  // list still answers from the live shard.
  svc::Request list;
  list.endpoint = "list";
  list.params = util::JsonValue(util::JsonObject{});
  EXPECT_TRUE(router.dispatch(list).ok);

  router.stop();
  live.stop();
}

}  // namespace
}  // namespace iokc::repl
