// End-to-end integration tests: the five phases of the knowledge cycle wired
// together, including the paper's two use cases (new-knowledge generation and
// anomaly detection).
#include "src/cycle/cycle.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "src/analysis/anomaly.hpp"
#include "src/analysis/bounding_box.hpp"
#include "src/cycle/replay.hpp"
#include "src/usage/config_generator.hpp"
#include "src/usage/workload_generator.hpp"
#include "src/util/error.hpp"

namespace iokc::cycle {
namespace {

class CycleTest : public ::testing::Test {
 protected:
  CycleTest() {
    workspace_ = std::filesystem::temp_directory_path() /
                 ("iokc_cycle_test_" + std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(workspace_);
  }
  ~CycleTest() override { std::filesystem::remove_all(workspace_); }

  std::filesystem::path workspace_;
};

TEST_F(CycleTest, FullCycleGenerateExtractPersistAnalyze) {
  SimEnvironment env;
  KnowledgeCycle cycle(env, workspace_, persist::RepoTarget::parse("mem:"));

  // Phase 1: generation.
  const jube::JubeRunResult run = cycle.generate_command(
      "quick", "ior -a mpiio -b 1m -t 256k -s 2 -F -C -i 2 -N 8 -o "
               "/scratch/q -k");
  EXPECT_EQ(run.packages.size(), 1u);
  EXPECT_TRUE(std::filesystem::exists(run.packages[0].stdout_path));
  EXPECT_TRUE(
      std::filesystem::exists(run.packages[0].dir / "sysinfo.txt"));
  EXPECT_TRUE(std::filesystem::exists(run.packages[0].dir / "fsinfo.txt"));
  EXPECT_TRUE(std::filesystem::exists(run.packages[0].dir / "jobinfo.txt"));

  // Phases 2+3: extraction + persistence.
  const extract::ExtractionResult extracted = cycle.extract_and_persist();
  ASSERT_EQ(extracted.knowledge.size(), 1u);
  ASSERT_EQ(cycle.stored_knowledge_ids().size(), 1u);

  // Phase 4: analysis — knowledge object carries fs + system info.
  const std::int64_t id = cycle.stored_knowledge_ids().front();
  const knowledge::Knowledge k = cycle.repository().load_knowledge(id);
  EXPECT_EQ(k.num_tasks, 8u);
  ASSERT_TRUE(k.system.has_value());
  EXPECT_EQ(k.system->total_cores, 20);
  ASSERT_TRUE(k.filesystem.has_value());
  EXPECT_EQ(k.filesystem->fs_name, "beegfs-sim");
  EXPECT_EQ(k.filesystem->num_targets, 4u);
  ASSERT_TRUE(k.job.has_value());
  EXPECT_EQ(k.job->job_name, "ior");
  EXPECT_EQ(k.job->num_tasks, 8u);
  EXPECT_FALSE(k.job->node_list.empty());
  const std::string view = cycle.explorer().render_knowledge_view(id);
  EXPECT_NE(view.find("beegfs-sim"), std::string::npos);
  EXPECT_NE(view.find("job context (Slurm)"), std::string::npos);

  // Re-extraction is idempotent: nothing new discovered.
  EXPECT_EQ(cycle.extract_and_persist().total(), 0u);
}

TEST_F(CycleTest, JubeSweepProducesOneKnowledgePerWorkPackage) {
  SimEnvironment env;
  KnowledgeCycle cycle(env, workspace_, persist::RepoTarget::parse("mem:"));
  jube::JubeBenchmarkConfig config;
  config.name = "sweep";
  config.space.add_csv("transfer", "256k,512k,1m");
  config.steps.push_back(jube::JubeStep{
      "run", "ior -a posix -b 1m -t $transfer -s 1 -F -w -i 1 -N 4 -o "
             "/scratch/sw_$transfer"});
  cycle.generate(config);
  const extract::ExtractionResult extracted = cycle.extract_and_persist();
  EXPECT_EQ(extracted.knowledge.size(), 3u);
  EXPECT_EQ(cycle.repository().knowledge_ids().size(), 3u);
}

TEST_F(CycleTest, Fig5AnomalyDetectedEndToEnd) {
  // The paper's Example II: interference during one iteration shows up as a
  // throughput collapse that the analysis phase flags.
  SimEnvironment env;
  env.interference().add_window({4.0, 9.0, 0.7, "competing job"});
  KnowledgeCycle cycle(env, workspace_, persist::RepoTarget::parse("mem:"));
  cycle.generate_command(
      "fig5", "ior -a mpiio -b 2m -t 1m -s 20 -F -C -e -i 4 -N 40 -o "
              "/scratch/f5 -k");
  cycle.extract_and_persist();
  const knowledge::Knowledge k =
      cycle.repository().load_knowledge(cycle.stored_knowledge_ids().front());
  const analysis::AnomalyReport report = analysis::with_job_context(
      analysis::detect_in_knowledge(k), k);
  ASSERT_FALSE(report.empty());
  // Findings carry the workload-manager context (anomaly <-> cause).
  EXPECT_NE(report.anomalies.front().description.find("[job "),
            std::string::npos);
  EXPECT_NE(report.anomalies.front().description.find("node["),
            std::string::npos);
}

TEST_F(CycleTest, Io500BoundingBoxWithDegradedNode) {
  // A degraded node drags down the IO500 boundary test cases (Fig. 6 story):
  // the healthy run's placement is inside the degraded run's... rather,
  // compare healthy vs degraded run values directly.
  const std::string command =
      "io500 -N 40 -o /scratch/box --easy-bytes 32m --hard-bytes 2m "
      "--easy-files 60 --hard-files 30";

  SimEnvironment healthy_env;
  KnowledgeCycle healthy(healthy_env, workspace_ / "h",
                         persist::RepoTarget::parse("mem:"));
  healthy.generate_command("io500", command);
  healthy.extract_and_persist();
  const knowledge::Io500Knowledge healthy_run =
      healthy.repository().load_io500(healthy.stored_io500_ids().front());

  SimEnvironmentConfig degraded_config;
  // A nearly-broken NIC (5% of nominal): the resource manager still
  // schedules onto the node because it looks alive.
  degraded_config.cluster.degraded_rate_fraction = 0.05;
  SimEnvironment degraded_env(degraded_config);
  degraded_env.cluster().set_health(1, sim::NodeHealth::kDegraded);
  KnowledgeCycle degraded(degraded_env, workspace_ / "d",
                          persist::RepoTarget::parse("mem:"));
  degraded.generate_command("io500", command);
  degraded.extract_and_persist();
  const knowledge::Io500Knowledge degraded_run =
      degraded.repository().load_io500(degraded.stored_io500_ids().front());

  // The degraded node caps ior-easy throughput well below the healthy run.
  EXPECT_LT(degraded_run.find_testcase("ior-easy-write")->value,
            healthy_run.find_testcase("ior-easy-write")->value * 0.8);

  // Cross-run comparison flags the regression.
  const analysis::AnomalyReport report =
      analysis::compare_io500_runs(healthy_run, degraded_run, 0.2);
  EXPECT_FALSE(report.empty());

  // And the bounding box built from the healthy run is valid.
  const analysis::BoundingBox2D box =
      analysis::make_bounding_box(healthy_run);
  EXPECT_GT(box.bandwidth.upper, box.bandwidth.lower);
}

TEST_F(CycleTest, NewKnowledgeGenerationLoop) {
  // The paper's Example I: select a stored command, modify it, re-run the
  // cycle with the generated configuration.
  SimEnvironment env;
  KnowledgeCycle cycle(env, workspace_, persist::RepoTarget::parse("mem:"));
  cycle.generate_command(
      "gen0", "ior -a mpiio -b 1m -t 512k -s 2 -F -i 1 -N 8 -o /scratch/g0 -k");
  cycle.extract_and_persist();

  const auto commands = cycle.repository().list_commands();
  ASSERT_EQ(commands.size(), 1u);
  usage::IorOverrides overrides;
  overrides.transfer_size = 1ull << 20;
  overrides.test_file = "/scratch/g1";
  const std::string new_command =
      usage::create_configuration(commands[0].second, overrides);

  cycle.generate_command("gen1", new_command);
  cycle.extract_and_persist();
  EXPECT_EQ(cycle.repository().knowledge_ids().size(), 2u);
  const knowledge::Knowledge regenerated =
      cycle.repository().load_knowledge(cycle.stored_knowledge_ids().back());
  EXPECT_NE(regenerated.command.find("-t 1m"), std::string::npos);
}

TEST_F(CycleTest, DarshanProfilingFlowsThroughCycle) {
  SimEnvironment env;
  ExecutorOptions options;
  options.with_darshan = true;
  KnowledgeCycle cycle(env, workspace_, persist::RepoTarget::parse("mem:"),
                       options);
  cycle.generate_command(
      "dar", "ior -a posix -b 1m -t 256k -s 1 -F -i 1 -N 4 -o /scratch/da -k");
  const extract::ExtractionResult extracted = cycle.extract_and_persist();
  // IOR report + Darshan log = two knowledge objects.
  EXPECT_EQ(extracted.knowledge.size(), 2u);
  bool saw_darshan = false;
  for (const auto& k : extracted.knowledge) {
    saw_darshan |= k.benchmark == "darshan";
  }
  EXPECT_TRUE(saw_darshan);
}

TEST_F(CycleTest, TraceReplayClosesTheLoop) {
  SimEnvironment env;
  KnowledgeCycle cycle(env, workspace_, persist::RepoTarget::parse("mem:"));
  cycle.generate_command(
      "base", "ior -a posix -b 1m -t 512k -s 2 -F -i 1 -N 4 -o /scratch/tr -k");
  cycle.extract_and_persist();
  const knowledge::Knowledge k =
      cycle.repository().load_knowledge(cycle.stored_knowledge_ids().front());

  const usage::SyntheticTrace trace = usage::generate_trace(k, 99);
  const ReplayResult result = replay_trace(env, trace);
  EXPECT_GT(result.duration_sec, 0.0);
  EXPECT_GT(result.write_bw_mib, 0.0);
  EXPECT_EQ(result.ops_executed, trace.ops.size());
}

TEST_F(CycleTest, RepositoryPersistsAcrossCycles) {
  const std::filesystem::path db_path = workspace_ / "knowledge.db";
  SimEnvironment env;
  {
    KnowledgeCycle cycle(env, workspace_,
                         persist::RepoTarget::parse("file:" + db_path.string()));
    cycle.generate_command(
        "p", "ior -a posix -b 1m -t 1m -s 1 -F -w -i 1 -N 2 -o /scratch/p -k");
    cycle.extract_and_persist();
    cycle.save();
  }
  {
    KnowledgeCycle cycle(env, workspace_,
                         persist::RepoTarget::parse("file:" + db_path.string()));
    EXPECT_EQ(cycle.repository().knowledge_ids().size(), 1u);
  }
}

TEST_F(CycleTest, UnknownCommandRejected) {
  SimEnvironment env;
  KnowledgeCycle cycle(env, workspace_, persist::RepoTarget::parse("mem:"));
  EXPECT_THROW(cycle.generate_command("x", "frobnicate --fast"), ConfigError);
}

TEST_F(CycleTest, MdtestAndHaccThroughTheCycle) {
  SimEnvironment env;
  KnowledgeCycle cycle(env, workspace_, persist::RepoTarget::parse("mem:"));
  cycle.generate_command("mdt", "mdtest -n 20 -u -i 1 -N 8 -d /scratch/mdt");
  cycle.generate_command("hacc",
                         "hacc_io -p 100000 -a POSIX -m file-per-process "
                         "-i 1 -N 8 -o /scratch/hc");
  const extract::ExtractionResult extracted = cycle.extract_and_persist();
  ASSERT_EQ(extracted.knowledge.size(), 2u);
  bool saw_mdtest = false;
  bool saw_hacc = false;
  for (const auto& k : extracted.knowledge) {
    saw_mdtest |= k.benchmark == "mdtest";
    saw_hacc |= k.benchmark == "HACC-IO";
  }
  EXPECT_TRUE(saw_mdtest);
  EXPECT_TRUE(saw_hacc);
}

}  // namespace
}  // namespace iokc::cycle
