// Crash-recovery suite: a sweep process is SIGKILLed at successive fault
// points, restarted with resume enabled, and must converge to a database
// byte-identical to an uninterrupted run's. The crash model is
// kill-between-syscalls (fork + SIGKILL), under which every write that
// returned before the kill is visible to the next process.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <string_view>

#include "src/cycle/cycle.hpp"
#include "src/db/database.hpp"
#include "src/util/fault.hpp"

namespace iokc::cycle {
namespace {

/// Fault points left before the injected SIGKILL. Inherited by the forked
/// child; only the child ever decrements it to zero.
std::atomic<int> g_kill_countdown{0};

void countdown_kill(const char* /*site*/) {
  if (g_kill_countdown.fetch_sub(1) == 1) {
    ::kill(::getpid(), SIGKILL);
  }
}

/// Kills at the first index-build fault point, leaving every other site
/// untouched — the targeted crash for the index-maintenance tests.
void kill_at_index_create(const char* site) {
  if (std::string_view(site) == "db.index.create") {
    ::kill(::getpid(), SIGKILL);
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  CrashRecoveryTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("iokc_crash_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  ~CrashRecoveryTest() override { std::filesystem::remove_all(root_); }

  static jube::JubeBenchmarkConfig sweep_config() {
    jube::JubeBenchmarkConfig config;
    config.name = "sweep";
    config.space.add_csv("transfer", "256k,1m");
    config.space.add_csv("tasks", "2,4");
    config.steps.push_back(jube::JubeStep{
        "run", "ior -a posix -b 1m -t $transfer -s 1 -F -w -i 1 -N $tasks "
               "-o /scratch/c_$transfer"});
    return config;
  }

  /// One full generate + extract + persist + save pass against `tag`'s
  /// workspace and database. Used both for the in-process reference run and
  /// (inside forked children) for the kill-and-resume runs.
  void run_flow(const std::string& tag) {
    SimEnvironment env;
    KnowledgeCycle cycle(env, root_ / (tag + "_ws"),
                         persist::RepoTarget::parse(
                             "file:" + (root_ / (tag + ".db")).string()));
    // Isolated per-package environments: a skipped (already-completed)
    // package then has no effect on the remaining packages' results, which
    // resume's byte-identity guarantee depends on.
    cycle.set_parallelism(1);
    cycle.set_resume(true);
    cycle.generate(sweep_config());
    cycle.extract_and_persist();
    cycle.save();
  }

  std::string db_path(const std::string& tag) const {
    return (root_ / (tag + ".db")).string();
  }

  /// Forks a child that runs the flow with a SIGKILL scheduled `countdown`
  /// fault points in. Returns true when the child finished cleanly (the
  /// countdown never expired), false when it was killed.
  bool run_with_kill(const std::string& tag, int countdown) {
    const ::pid_t pid = ::fork();
    if (pid == 0) {
      g_kill_countdown.store(countdown);
      util::set_fault_hook(&countdown_kill);
      try {
        run_flow(tag);
      } catch (...) {
        ::_exit(2);  // a crash must surface as SIGKILL, not an exception
      }
      ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status)) {
      EXPECT_EQ(WEXITSTATUS(status), 0);
      return true;
    }
    EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
    return false;
  }

  /// A journaled-database flow exercising index maintenance directly: bulk
  /// rows, then two CREATE INDEX IF NOT EXISTS builds (the db.index.create
  /// fault point fires inside each genuine build), then a checkpointing
  /// save. Re-running it against a half-finished database must converge.
  void run_index_flow(const std::string& tag) {
    db::Database db = db::Database::open(db_path(tag));
    db.execute(
        "CREATE TABLE IF NOT EXISTS performances (id INTEGER PRIMARY KEY, "
        "benchmark TEXT, num_nodes INTEGER)");
    // Explicit ids make the bulk load idempotent row by row: a rerun after
    // a mid-load kill fills in exactly the missing rows (the same unit-of-
    // resumption discipline store_sources uses).
    std::set<std::int64_t> present;
    const db::ResultSet existing = db.execute("SELECT id FROM performances");
    for (std::size_t r = 0; r < existing.size(); ++r) {
      present.insert(existing.at(r, "id").as_integer());
    }
    const char* benchmarks[] = {"IOR", "IO500", "mdtest"};
    for (int i = 0; i < 12; ++i) {
      if (present.contains(i + 1)) {
        continue;
      }
      db.execute("INSERT INTO performances (id, benchmark, num_nodes) VALUES "
                 "(" +
                 std::to_string(i + 1) + ", '" +
                 std::string(benchmarks[i % 3]) + "', " +
                 std::to_string(1 + i % 4) + ")");
    }
    db.execute("CREATE INDEX IF NOT EXISTS idx_bench_nodes ON performances "
               "(benchmark, num_nodes)");
    db.execute("CREATE INDEX IF NOT EXISTS idx_bench_hash ON performances "
               "(benchmark) USING HASH");
    db.save(db_path(tag));
  }

  /// Forks a child running the index flow with `hook` installed as the
  /// fault hook (countdown_kill reads g_kill_countdown = `countdown`).
  /// Same contract as run_with_kill: true = finished cleanly.
  bool run_index_with_kill(const std::string& tag, void (*hook)(const char*),
                           int countdown = 0) {
    const ::pid_t pid = ::fork();
    if (pid == 0) {
      g_kill_countdown.store(countdown);
      util::set_fault_hook(hook);
      try {
        run_index_flow(tag);
      } catch (...) {
        ::_exit(2);
      }
      ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status)) {
      EXPECT_EQ(WEXITSTATUS(status), 0);
      return true;
    }
    EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
    return false;
  }

  std::filesystem::path root_;
};

TEST_F(CrashRecoveryTest, KillAtEveryFaultPointConvergesToReferenceDump) {
  run_flow("reference");
  const std::string reference =
      db::Database::open(db_path("reference")).dump();
  ASSERT_NE(reference.find("INSERT INTO performances"), std::string::npos);

  // Kill 1 fault point in, restart killing 2 points in, and so on until a
  // run survives to completion. Every intermediate state must already be
  // openable (no corruption), and the surviving run must match the
  // uninterrupted reference byte for byte.
  constexpr int kMaxAttempts = 120;
  int attempts = 0;
  while (!run_with_kill("victim", attempts + 1)) {
    ++attempts;
    ASSERT_LT(attempts, kMaxAttempts) << "sweep never completed";
    EXPECT_NO_THROW(db::Database::open(db_path("victim")))
        << "database corrupt after kill #" << attempts;
  }
  EXPECT_GT(attempts, 0) << "no kill ever fired; fault points missing";
  EXPECT_EQ(db::Database::open(db_path("victim")).dump(), reference);
}

TEST_F(CrashRecoveryTest, ResumeAfterSingleMidSweepKillMatchesReference) {
  run_flow("reference");
  const std::string reference =
      db::Database::open(db_path("reference")).dump();

  // Kill roughly mid-sweep (after a couple of packages committed), then let
  // one resumed run finish.
  const bool completed_first_try = run_with_kill("victim", 12);
  if (!completed_first_try) {
    run_flow("victim");
  }
  EXPECT_EQ(db::Database::open(db_path("victim")).dump(), reference);
}

TEST_F(CrashRecoveryTest, KillDuringIndexBuildLeavesTableIntactAndConverges) {
  run_index_flow("reference");
  const std::string reference =
      db::Database::open(db_path("reference")).dump();
  ASSERT_NE(reference.find("CREATE INDEX idx_bench_nodes"),
            std::string::npos);

  // The targeted kill lands inside the first genuine index build — after
  // the rows committed, before the CREATE INDEX could commit.
  ASSERT_FALSE(run_index_with_kill("victim", &kill_at_index_create))
      << "db.index.create never fired";
  {
    db::Database recovered = db::Database::open(db_path("victim"));
    const db::Table& table = recovered.require_table("performances");
    EXPECT_EQ(table.rows().size(), 12u) << "committed rows lost";
    // The interrupted CREATE INDEX never reached the journal, so recovery
    // must not resurrect a half-built index.
    EXPECT_FALSE(table.has_index_named("idx_bench_nodes"));
    // Table and (implicit PK) index still answer queries consistently.
    recovered.set_index_planning(true);
    const std::string indexed =
        recovered.execute("SELECT * FROM performances WHERE benchmark = "
                          "'IOR'").render_csv();
    recovered.set_index_planning(false);
    EXPECT_EQ(recovered.execute("SELECT * FROM performances WHERE benchmark "
                                "= 'IOR'").render_csv(),
              indexed);
  }
  // A clean re-run converges to the uninterrupted reference byte for byte.
  run_index_flow("victim");
  EXPECT_EQ(db::Database::open(db_path("victim")).dump(), reference);
}

TEST_F(CrashRecoveryTest, IndexFlowSurvivesKillsAtEveryFaultPoint) {
  run_index_flow("reference");
  const std::string reference =
      db::Database::open(db_path("reference")).dump();

  constexpr int kMaxAttempts = 120;
  int attempts = 0;
  while (!run_index_with_kill("victim", &countdown_kill, attempts + 1)) {
    ++attempts;
    ASSERT_LT(attempts, kMaxAttempts) << "index flow never completed";
    EXPECT_NO_THROW(db::Database::open(db_path("victim")))
        << "database corrupt after kill #" << attempts;
  }
  EXPECT_GT(attempts, 0) << "no kill ever fired; fault points missing";
  EXPECT_EQ(db::Database::open(db_path("victim")).dump(), reference);
}

TEST_F(CrashRecoveryTest, UninterruptedRunsAreReproducible) {
  run_flow("a");
  run_flow("b");
  EXPECT_EQ(db::Database::open(db_path("a")).dump(),
            db::Database::open(db_path("b")).dump());
}

}  // namespace
}  // namespace iokc::cycle
