// Crash-recovery suite: a sweep process is SIGKILLed at successive fault
// points, restarted with resume enabled, and must converge to a database
// byte-identical to an uninterrupted run's. The crash model is
// kill-between-syscalls (fork + SIGKILL), under which every write that
// returned before the kill is visible to the next process.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <string>

#include "src/cycle/cycle.hpp"
#include "src/db/database.hpp"
#include "src/util/fault.hpp"

namespace iokc::cycle {
namespace {

/// Fault points left before the injected SIGKILL. Inherited by the forked
/// child; only the child ever decrements it to zero.
std::atomic<int> g_kill_countdown{0};

void countdown_kill(const char* /*site*/) {
  if (g_kill_countdown.fetch_sub(1) == 1) {
    ::kill(::getpid(), SIGKILL);
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  CrashRecoveryTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("iokc_crash_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  ~CrashRecoveryTest() override { std::filesystem::remove_all(root_); }

  static jube::JubeBenchmarkConfig sweep_config() {
    jube::JubeBenchmarkConfig config;
    config.name = "sweep";
    config.space.add_csv("transfer", "256k,1m");
    config.space.add_csv("tasks", "2,4");
    config.steps.push_back(jube::JubeStep{
        "run", "ior -a posix -b 1m -t $transfer -s 1 -F -w -i 1 -N $tasks "
               "-o /scratch/c_$transfer"});
    return config;
  }

  /// One full generate + extract + persist + save pass against `tag`'s
  /// workspace and database. Used both for the in-process reference run and
  /// (inside forked children) for the kill-and-resume runs.
  void run_flow(const std::string& tag) {
    SimEnvironment env;
    KnowledgeCycle cycle(env, root_ / (tag + "_ws"),
                         persist::RepoTarget::parse(
                             "file:" + (root_ / (tag + ".db")).string()));
    // Isolated per-package environments: a skipped (already-completed)
    // package then has no effect on the remaining packages' results, which
    // resume's byte-identity guarantee depends on.
    cycle.set_parallelism(1);
    cycle.set_resume(true);
    cycle.generate(sweep_config());
    cycle.extract_and_persist();
    cycle.save();
  }

  std::string db_path(const std::string& tag) const {
    return (root_ / (tag + ".db")).string();
  }

  /// Forks a child that runs the flow with a SIGKILL scheduled `countdown`
  /// fault points in. Returns true when the child finished cleanly (the
  /// countdown never expired), false when it was killed.
  bool run_with_kill(const std::string& tag, int countdown) {
    const ::pid_t pid = ::fork();
    if (pid == 0) {
      g_kill_countdown.store(countdown);
      util::set_fault_hook(&countdown_kill);
      try {
        run_flow(tag);
      } catch (...) {
        ::_exit(2);  // a crash must surface as SIGKILL, not an exception
      }
      ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status)) {
      EXPECT_EQ(WEXITSTATUS(status), 0);
      return true;
    }
    EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
    return false;
  }

  std::filesystem::path root_;
};

TEST_F(CrashRecoveryTest, KillAtEveryFaultPointConvergesToReferenceDump) {
  run_flow("reference");
  const std::string reference =
      db::Database::open(db_path("reference")).dump();
  ASSERT_NE(reference.find("INSERT INTO performances"), std::string::npos);

  // Kill 1 fault point in, restart killing 2 points in, and so on until a
  // run survives to completion. Every intermediate state must already be
  // openable (no corruption), and the surviving run must match the
  // uninterrupted reference byte for byte.
  constexpr int kMaxAttempts = 120;
  int attempts = 0;
  while (!run_with_kill("victim", attempts + 1)) {
    ++attempts;
    ASSERT_LT(attempts, kMaxAttempts) << "sweep never completed";
    EXPECT_NO_THROW(db::Database::open(db_path("victim")))
        << "database corrupt after kill #" << attempts;
  }
  EXPECT_GT(attempts, 0) << "no kill ever fired; fault points missing";
  EXPECT_EQ(db::Database::open(db_path("victim")).dump(), reference);
}

TEST_F(CrashRecoveryTest, ResumeAfterSingleMidSweepKillMatchesReference) {
  run_flow("reference");
  const std::string reference =
      db::Database::open(db_path("reference")).dump();

  // Kill roughly mid-sweep (after a couple of packages committed), then let
  // one resumed run finish.
  const bool completed_first_try = run_with_kill("victim", 12);
  if (!completed_first_try) {
    run_flow("victim");
  }
  EXPECT_EQ(db::Database::open(db_path("victim")).dump(), reference);
}

TEST_F(CrashRecoveryTest, UninterruptedRunsAreReproducible) {
  run_flow("a");
  run_flow("b");
  EXPECT_EQ(db::Database::open(db_path("a")).dump(),
            db::Database::open(db_path("b")).dump());
}

}  // namespace
}  // namespace iokc::cycle
