// Determinism regression suite for parallel sweep execution: the same sweep
// run with jobs=1 and jobs=8 must produce byte-identical workspace trees and
// identical repository contents. Thread count may only change scheduling,
// never results.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/cycle/cycle.hpp"
#include "src/util/error.hpp"

namespace iokc::cycle {
namespace {

class ParallelCycleTest : public ::testing::Test {
 protected:
  ParallelCycleTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("iokc_par_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  ~ParallelCycleTest() override { std::filesystem::remove_all(root_); }

  static jube::JubeBenchmarkConfig sweep_config() {
    jube::JubeBenchmarkConfig config;
    config.name = "sweep";
    config.space.add_csv("transfer", "256k,512k,1m,2m");
    config.space.add_csv("tasks", "4,8");
    config.steps.push_back(jube::JubeStep{
        "run", "ior -a posix -b 2m -t $transfer -s 1 -F -w -i 2 -N $tasks "
               "-o /scratch/p_$transfer"});
    return config;
  }

  /// Every file in the tree as sorted relative path -> exact bytes.
  static std::map<std::string, std::string> snapshot_tree(
      const std::filesystem::path& root) {
    std::map<std::string, std::string> files;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      files.emplace(entry.path().lexically_relative(root).generic_string(),
                    std::move(bytes));
    }
    return files;
  }

  /// Runs the sweep in isolated mode on `jobs` threads and returns the
  /// workspace snapshot plus the repository's full SQL dump.
  std::pair<std::map<std::string, std::string>, std::string> run_sweep(
      const std::string& tag, int jobs) {
    const std::filesystem::path workspace = root_ / tag;
    SimEnvironment env;
    KnowledgeCycle cycle(env, workspace, persist::RepoTarget::parse("mem:"));
    cycle.set_parallelism(jobs);
    cycle.generate(sweep_config());
    cycle.extract_and_persist();
    return {snapshot_tree(workspace), cycle.repository().database().dump()};
  }

  std::filesystem::path root_;
};

TEST_F(ParallelCycleTest, SerialAndParallelSweepsAreByteIdentical) {
  const auto [serial_tree, serial_dump] = run_sweep("serial", 1);
  const auto [parallel_tree, parallel_dump] = run_sweep("parallel", 8);

  ASSERT_EQ(serial_tree.size(), parallel_tree.size());
  // 8 work packages x (parameters, command, stdout, sysinfo, jobinfo,
  // fsinfo, done) + configuration.xml.
  EXPECT_EQ(serial_tree.size(), 8u * 7u + 1u);
  auto serial_it = serial_tree.begin();
  auto parallel_it = parallel_tree.begin();
  for (; serial_it != serial_tree.end(); ++serial_it, ++parallel_it) {
    EXPECT_EQ(serial_it->first, parallel_it->first);
    EXPECT_EQ(serial_it->second, parallel_it->second)
        << "file " << serial_it->first << " differs between jobs=1 and jobs=8";
  }
  EXPECT_EQ(serial_dump, parallel_dump);
}

TEST_F(ParallelCycleTest, RepeatedParallelRunsAreStable) {
  const auto [first_tree, first_dump] = run_sweep("first", 8);
  const auto [second_tree, second_dump] = run_sweep("second", 8);
  EXPECT_EQ(first_tree, second_tree);
  EXPECT_EQ(first_dump, second_dump);
}

TEST_F(ParallelCycleTest, ParallelismZeroMeansHardwareThreads) {
  SimEnvironment env;
  KnowledgeCycle cycle(env, root_ / "w", persist::RepoTarget::parse("mem:"));
  EXPECT_EQ(cycle.parallelism(), 0);
  cycle.set_parallelism(0);
  EXPECT_GE(cycle.parallelism(), 1);
  EXPECT_THROW(cycle.set_parallelism(-1), ConfigError);
}

TEST_F(ParallelCycleTest, IsolatedModeStoresIdsInWorkPackageOrder) {
  SimEnvironment env;
  KnowledgeCycle cycle(env, root_ / "w", persist::RepoTarget::parse("mem:"));
  cycle.set_parallelism(4);
  cycle.generate(sweep_config());
  cycle.extract_and_persist();
  const std::vector<std::int64_t>& ids = cycle.stored_knowledge_ids();
  ASSERT_EQ(ids.size(), 8u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  // Work package order == parameter-space expansion order: the first stored
  // object holds the first assignment's command.
  const knowledge::Knowledge first =
      cycle.repository().load_knowledge(ids.front());
  EXPECT_NE(first.command.find("-t 256k"), std::string::npos);
}

TEST_F(ParallelCycleTest, LegacySerialModeStillSharesTheEnvironment) {
  // The default (no set_parallelism call) keeps the pre-parallelism
  // behavior: runs observe mutations of the borrowed environment.
  SimEnvironment env;
  env.interference().add_window({4.0, 9.0, 0.7, "competing job"});
  KnowledgeCycle cycle(env, root_ / "w", persist::RepoTarget::parse("mem:"));
  cycle.generate_command(
      "fig5", "ior -a mpiio -b 2m -t 1m -s 20 -F -C -e -i 4 -N 40 -o "
              "/scratch/f5 -k");
  cycle.extract_and_persist();

  SimEnvironment quiet_env;
  KnowledgeCycle quiet(quiet_env, root_ / "q",
                       persist::RepoTarget::parse("mem:"));
  quiet.generate_command(
      "fig5", "ior -a mpiio -b 2m -t 1m -s 20 -F -C -e -i 4 -N 40 -o "
              "/scratch/f5 -k");
  quiet.extract_and_persist();

  const std::string noisy_stdout = [&] {
    std::ifstream in(jube::JubeRunner::discover_outputs(root_ / "w").front(),
                     std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();
  const std::string quiet_stdout = [&] {
    std::ifstream in(jube::JubeRunner::discover_outputs(root_ / "q").front(),
                     std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();
  EXPECT_NE(noisy_stdout, quiet_stdout);
}

}  // namespace
}  // namespace iokc::cycle
