// Observability determinism across the full knowledge cycle: the same sweep
// run with jobs=1 and jobs=8 must record the same set of spans (modulo
// timestamps and thread ids) and the same phase-attributed metrics. Thread
// count may only change scheduling, never what is observed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/cycle/cycle.hpp"
#include "src/obs/observability.hpp"
#include "src/util/strings.hpp"

namespace iokc::obs {
namespace {

/// A span's identity without the scheduling-dependent parts (timestamps,
/// tids, span ids).
using SpanIdentity = std::tuple<std::string, std::string, std::string, int>;

class ObsPipelineTest : public ::testing::Test {
 protected:
  ObsPipelineTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("iokc_obs_pipe_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  ~ObsPipelineTest() override { std::filesystem::remove_all(root_); }

  static jube::JubeBenchmarkConfig sweep_config() {
    jube::JubeBenchmarkConfig config;
    config.name = "sweep";
    config.space.add_csv("transfer", "256k,512k,1m,2m");
    config.space.add_csv("tasks", "4,8");
    config.steps.push_back(jube::JubeStep{
        "run", "ior -a posix -b 2m -t $transfer -s 1 -F -w -i 2 -N $tasks "
               "-o /scratch/p_$transfer"});
    return config;
  }

  struct Observed {
    std::vector<SpanIdentity> spans;
    /// Scheduling-independent metrics (pool.* excluded: steal counts and
    /// queue depths legitimately vary with the thread count).
    std::map<std::string, std::uint64_t> counters;
  };

  Observed run_sweep(const std::string& tag, int jobs) {
    Observability obs;
    cycle::SimEnvironment env;
    cycle::KnowledgeCycle cycle(env, root_ / tag,
                                persist::RepoTarget::parse("mem:"));
    cycle.set_observability(&obs);
    cycle.set_parallelism(jobs);
    cycle.generate(sweep_config());
    cycle.extract_and_persist();
    cycle.set_observability(nullptr);

    Observed observed;
    for (const SpanEvent& event : obs.trace_events()) {
      observed.spans.emplace_back(event.name, event.category, event.phase,
                                  event.work_package);
    }
    std::sort(observed.spans.begin(), observed.spans.end());
    for (const MetricSnapshot& snap : obs.metrics().snapshot()) {
      if (util::starts_with(snap.key.name, "pool.")) {
        continue;
      }
      if (snap.kind != MetricKind::kCounter) {
        continue;
      }
      const std::string id = snap.key.name + "|" + snap.key.phase + "|" +
                             std::to_string(snap.key.work_package);
      observed.counters[id] += snap.count;
    }
    return observed;
  }

  std::filesystem::path root_;
};

TEST_F(ObsPipelineTest, SerialAndParallelSweepsRecordTheSameEvents) {
  const Observed serial = run_sweep("serial", 1);
  const Observed parallel = run_sweep("parallel", 8);

  EXPECT_EQ(serial.spans, parallel.spans);
  EXPECT_EQ(serial.counters, parallel.counters);

  // Sanity: the sweep has 8 work packages; each produced a jube span and an
  // extraction span, and every cycle phase recorded exactly one phase span.
  const auto count_name = [&](const std::string& name) {
    return std::count_if(serial.spans.begin(), serial.spans.end(),
                         [&](const SpanIdentity& span) {
                           return std::get<0>(span) == name;
                         });
  };
  EXPECT_EQ(count_name("work_package"), 8);
  EXPECT_EQ(count_name("extract"), 8);
  EXPECT_EQ(count_name("phase:generation"), 1);
  EXPECT_EQ(count_name("phase:extraction"), 1);
  EXPECT_EQ(count_name("phase:persistence"), 1);
}

TEST_F(ObsPipelineTest, WorkPackageAttributionIsExactUnderStealing) {
  const Observed parallel = run_sweep("wp", 8);
  // Every work package id 0..7 appears exactly once among the jube spans —
  // attribution comes from the task context, not the executing thread.
  std::vector<int> packages;
  for (const SpanIdentity& span : parallel.spans) {
    if (std::get<0>(span) == "work_package") {
      packages.push_back(std::get<3>(span));
    }
  }
  std::sort(packages.begin(), packages.end());
  EXPECT_EQ(packages, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(ObsPipelineTest, CycleWithoutObservabilityRecordsNothing) {
  Observability obs;
  cycle::SimEnvironment env;
  cycle::KnowledgeCycle cycle(env, root_ / "off",
                              persist::RepoTarget::parse("mem:"));
  cycle.set_parallelism(2);
  cycle.generate(sweep_config());
  cycle.extract_and_persist();
  EXPECT_TRUE(obs.trace_events().empty());
  EXPECT_TRUE(obs.metrics().snapshot().empty());
}

}  // namespace
}  // namespace iokc::obs
