// Unit tests for the observability layer: manual clock determinism, span
// nesting and cross-thread parent handoff, golden trace/CSV exports, and
// metric shard merging under concurrent recording.
#include "src/obs/observability.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/clock.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/util/thread_pool.hpp"

namespace iokc::obs {
namespace {

TEST(ManualClock, ReturnsThenAdvancesByFixedStep) {
  ManualClock clock(10);
  EXPECT_EQ(clock.read(), 0u);
  EXPECT_EQ(clock.read(), 10u);
  clock.advance(100);
  EXPECT_EQ(clock.read(), 120u);

  // fn() shares state with the clock it came from.
  ClockFn fn = clock.fn();
  EXPECT_EQ(fn(), 130u);
  EXPECT_EQ(clock.read(), 140u);
}

TEST(Span, InertWhenNoObservabilityInstalled) {
  ASSERT_EQ(global(), nullptr);
  Span span("noop", {.category = "test", .phase = "generation"});
  EXPECT_FALSE(span.recording());
  EXPECT_EQ(span.context().span_id, 0u);
  // The free-function hooks must be safe no-ops too.
  count("noop.counter");
  gauge_max("noop.gauge", 1.0);
  observe("noop.histogram", 1.0);
  EXPECT_EQ(current_context().span_id, 0u);
}

TEST(Span, NestedSpansParentAndInheritAttribution) {
  Observability obs;
  ScopedObservability scoped(obs);
  {
    Span outer("phase:generation",
               {.category = "cycle", .phase = "generation"});
    EXPECT_TRUE(outer.recording());
    EXPECT_EQ(current_context().phase, "generation");
    {
      Span inner("work", {.category = "jube", .work_package = 3});
      // Phase inherited from the outer span, work package set explicitly.
      EXPECT_EQ(current_context().phase, "generation");
      EXPECT_EQ(current_context().work_package, 3);
      EXPECT_EQ(current_context().span_id, inner.context().span_id);
    }
    // Ambient restored LIFO.
    EXPECT_EQ(current_context().span_id, outer.context().span_id);
    EXPECT_EQ(current_context().work_package, kNoWorkPackage);
  }
  EXPECT_EQ(current_context().span_id, 0u);

  const std::vector<SpanEvent> events = obs.trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner closes first.
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].parent_id, events[1].id);
  EXPECT_EQ(events[0].phase, "generation");
  EXPECT_EQ(events[0].work_package, 3);
  EXPECT_EQ(events[1].name, "phase:generation");
  EXPECT_EQ(events[1].parent_id, 0u);
  EXPECT_EQ(events[1].work_package, kNoWorkPackage);
}

TEST(Span, ExplicitParentHandoffAcrossThreads) {
  Observability obs;
  ScopedObservability scoped(obs);
  {
    Span root("phase:generation",
              {.category = "cycle", .phase = "generation"});
    const SpanContext handoff = root.context();
    std::thread worker([&handoff] {
      // A fresh thread has no ambient span; the explicit parent restores
      // both the trace tree and the attribution.
      EXPECT_EQ(current_context().span_id, 0u);
      Span task("work_package", {.category = "jube",
                                 .work_package = 7,
                                 .parent = &handoff});
      EXPECT_EQ(current_context().phase, "generation");
      EXPECT_EQ(current_context().work_package, 7);
    });
    worker.join();
  }
  const std::vector<SpanEvent> events = obs.trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "work_package");
  EXPECT_EQ(events[0].parent_id, events[1].id);
  EXPECT_EQ(events[0].phase, "generation");
  EXPECT_EQ(events[0].work_package, 7);
  // The worker thread got its own dense tid.
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Observability, DestructorUninstallsItselfFromGlobal) {
  {
    Observability obs;
    set_global(&obs);
    EXPECT_EQ(global(), &obs);
  }
  EXPECT_EQ(global(), nullptr);
}

TEST(ChromeTrace, GoldenExportWithManualClock) {
  ManualClock clock(1000);
  Observability obs(Observability::Config{clock.fn()});
  ScopedObservability scoped(obs);
  {
    Span outer("phase:generation",
               {.category = "cycle", .phase = "generation"});
    Span inner("work", {.category = "jube", .work_package = 3});
  }
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"work\",\"cat\":\"jube\",\"ph\":\"X\",\"ts\":2.000,"
      "\"dur\":1.000,\"pid\":1,\"tid\":0,\"args\":{\"span_id\":2,"
      "\"parent_id\":1,\"phase\":\"generation\",\"work_package\":3}},\n"
      "{\"name\":\"phase:generation\",\"cat\":\"cycle\",\"ph\":\"X\","
      "\"ts\":1.000,\"dur\":3.000,\"pid\":1,\"tid\":0,\"args\":{"
      "\"span_id\":1,\"phase\":\"generation\"}}\n"
      "]}\n";
  EXPECT_EQ(obs.render_chrome_trace(), expected);
}

TEST(ChromeTrace, EscapesSpecialCharactersInNames) {
  Observability obs;
  ScopedObservability scoped(obs);
  { Span span("quote\"back\\slash\nnewline", {.category = "test"}); }
  const std::string trace = obs.render_chrome_trace();
  EXPECT_NE(trace.find("quote\\\"back\\\\slash\\nnewline"), std::string::npos);
}

TEST(MetricsCsv, GoldenExport) {
  Observability obs;
  ScopedObservability scoped(obs);
  {
    Span phase("phase:persistence",
               {.category = "cycle", .phase = "persistence"});
    count("db.statements", 5);
    gauge_max("repo.batch_size", 8.0);
    {
      Span wp("work", {.category = "jube", .work_package = 2});
      observe("extract.bytes", 3.0);
      observe("extract.bytes", 20.0);
    }
  }
  const std::string expected =
      "metric,phase,work_package,kind,value\n"
      "db.statements,persistence,,counter,5\n"
      "extract.bytes.count,persistence,2,histogram,2\n"
      "extract.bytes.sum,persistence,2,histogram,23\n"
      "extract.bytes.le_1,persistence,2,histogram,0\n"
      "extract.bytes.le_4,persistence,2,histogram,1\n"
      "extract.bytes.le_16,persistence,2,histogram,0\n"
      "extract.bytes.le_64,persistence,2,histogram,1\n"
      "extract.bytes.le_256,persistence,2,histogram,0\n"
      "extract.bytes.le_1024,persistence,2,histogram,0\n"
      "extract.bytes.le_4096,persistence,2,histogram,0\n"
      "extract.bytes.le_16384,persistence,2,histogram,0\n"
      "extract.bytes.le_65536,persistence,2,histogram,0\n"
      "extract.bytes.le_262144,persistence,2,histogram,0\n"
      "extract.bytes.le_1048576,persistence,2,histogram,0\n"
      "extract.bytes.le_4194304,persistence,2,histogram,0\n"
      "extract.bytes.le_16777216,persistence,2,histogram,0\n"
      "extract.bytes.le_67108864,persistence,2,histogram,0\n"
      "extract.bytes.le_268435456,persistence,2,histogram,0\n"
      "extract.bytes.le_1073741824,persistence,2,histogram,0\n"
      "extract.bytes.le_inf,persistence,2,histogram,0\n"
      "repo.batch_size,persistence,,gauge_max,8\n";
  EXPECT_EQ(obs.render_metrics_csv(), expected);
}

TEST(Metrics, CountersMergeAcrossConcurrentRecorders) {
  MetricsRegistry registry;
  const MetricKey key{"hits", "generation", kNoWorkPackage};
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &key] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.add_counter(key, 1);
      }
    });
  }
  // Concurrent snapshots must be race-free (values may be mid-flight).
  for (int i = 0; i < 10; ++i) {
    (void)registry.snapshot();
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const std::vector<MetricSnapshot> merged = registry.snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].count, kThreads * kPerThread);
}

TEST(Metrics, HistogramsMergeAcrossConcurrentRecorders) {
  MetricsRegistry registry;
  const MetricKey key{"latency", "extraction", kNoWorkPackage};
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &key, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic spread over several buckets plus the overflow.
        registry.record_histogram(
            key, static_cast<double>((t + 1)) * (i % 4 == 0 ? 1e10 : 3.0));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const std::vector<MetricSnapshot> merged = registry.snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t bucket : merged[0].buckets) {
    bucket_total += bucket;
  }
  EXPECT_EQ(bucket_total, merged[0].count);
  // Every fourth sample lands in the overflow bucket (1e10 > 4^15).
  EXPECT_EQ(merged[0].buckets.back(),
            static_cast<std::uint64_t>(kThreads) * (kPerThread / 4));
}

TEST(Metrics, GaugeMaxKeepsTheMaximumAcrossThreads) {
  MetricsRegistry registry;
  const MetricKey key{"depth", "", kNoWorkPackage};
  std::vector<std::thread> threads;
  for (int t = 1; t <= 4; ++t) {
    threads.emplace_back([&registry, &key, t] {
      registry.record_gauge_max(key, static_cast<double>(t));
      registry.record_gauge_max(key, 0.5);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const std::vector<MetricSnapshot> merged = registry.snapshot();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].max, 4.0);
}

TEST(PoolObserver, DrainedPoolsReportStatsAsMetrics) {
  Observability obs;
  ScopedObservability scoped(obs);
  std::atomic<int> executed{0};
  {
    Span phase("phase:generation",
               {.category = "cycle", .phase = "generation"});
    util::parallel_for(16, 4, [&executed](std::size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(executed.load(), 16);
  bool saw_tasks = false;
  for (const MetricSnapshot& snap : obs.metrics().snapshot()) {
    if (snap.key.name == "pool.tasks") {
      saw_tasks = true;
      EXPECT_EQ(snap.key.phase, "generation");
      EXPECT_EQ(snap.count, 16u);
    }
  }
  EXPECT_TRUE(saw_tasks);
}

TEST(PoolObserver, InlineParallelForReportsNothing) {
  Observability obs;
  ScopedObservability scoped(obs);
  util::parallel_for(4, 1, [](std::size_t) {});
  for (const MetricSnapshot& snap : obs.metrics().snapshot()) {
    EXPECT_NE(snap.key.name, "pool.tasks");
  }
}

}  // namespace
}  // namespace iokc::obs
