#include "src/knowledge/knowledge.hpp"

#include <gtest/gtest.h>

#include "src/knowledge/io500_knowledge.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"

namespace iokc::knowledge {
namespace {

Knowledge sample_knowledge() {
  Knowledge k;
  k.command = "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -N 80 -o /s/t -k";
  k.benchmark = "IOR";
  k.api = "MPIIO";
  k.test_file = "/s/t";
  k.file_per_process = true;
  k.start_time = 1.5;
  k.end_time = 50.0;
  k.num_tasks = 80;
  k.num_nodes = 4;

  OpSummary write;
  write.operation = "write";
  write.api = "MPIIO";
  for (int i = 0; i < 6; ++i) {
    OpResult r;
    r.iteration = i;
    r.bw_mib = i == 1 ? 1251.0 : 2850.0;
    r.iops = r.bw_mib / 2.0;
    r.latency_sec = 0.05;
    r.open_sec = 0.01;
    r.wrrd_sec = 4.4;
    r.close_sec = 0.002;
    r.total_sec = 4.42;
    write.results.push_back(r);
  }
  write.recompute();
  k.summaries.push_back(write);

  FileSystemInfo fs;
  fs.fs_name = "beegfs-sim";
  fs.entry_type = "file";
  fs.entry_id = "5-DEADBEEF-1";
  fs.metadata_node = 1;
  fs.stripe_pattern = "RAID0";
  fs.chunk_size = 512 * 1024;
  fs.num_targets = 4;
  fs.storage_pool = 1;
  k.filesystem = fs;

  SystemInfoRecord sys;
  sys.hostname = "node000";
  sys.os_release = "Linux sim";
  sys.cpu_model = "Xeon E5-2670 v2";
  sys.sockets = 2;
  sys.cores_per_socket = 10;
  sys.total_cores = 20;
  sys.frequency_mhz = 2500.0;
  sys.l1d_kib = 32;
  sys.l2_kib = 256;
  sys.l3_kib = 25600;
  sys.memory_bytes = 128ull << 30;
  sys.interconnect = "InfiniBand FDR";
  k.system = sys;

  JobInfoRecord job;
  job.job_id = 4242;
  job.job_name = "ior";
  job.partition = "parallel";
  job.user = "zhuz";
  job.num_nodes = 4;
  job.num_tasks = 80;
  job.node_list = "node[000-003]";
  job.submit_time = 1.0;
  job.start_time = 1.5;
  k.job = job;
  return k;
}

TEST(OpSummary, RecomputeAggregates) {
  const Knowledge k = sample_knowledge();
  const OpSummary& write = k.summaries.front();
  EXPECT_DOUBLE_EQ(write.max_bw_mib, 2850.0);
  EXPECT_DOUBLE_EQ(write.min_bw_mib, 1251.0);
  EXPECT_NEAR(write.mean_bw_mib, (2850.0 * 5 + 1251.0) / 6.0, 1e-9);
  EXPECT_GT(write.stddev_bw_mib, 0.0);
  EXPECT_DOUBLE_EQ(write.mean_time_sec, 4.42);
}

TEST(Knowledge, FindSummary) {
  const Knowledge k = sample_knowledge();
  EXPECT_NE(k.find_summary("write"), nullptr);
  EXPECT_EQ(k.find_summary("read"), nullptr);
}

TEST(Knowledge, JsonRoundTripIsExact) {
  const Knowledge original = sample_knowledge();
  const Knowledge restored = Knowledge::from_json(original.to_json());
  EXPECT_EQ(restored, original);
}

TEST(Knowledge, JsonRoundTripWithoutOptionalParts) {
  Knowledge k = sample_knowledge();
  k.filesystem.reset();
  k.system.reset();
  k.job.reset();
  const Knowledge restored = Knowledge::from_json(k.to_json());
  EXPECT_EQ(restored, k);
  EXPECT_FALSE(restored.filesystem.has_value());
  EXPECT_FALSE(restored.system.has_value());
  EXPECT_FALSE(restored.job.has_value());
}

TEST(JobInfoRecord, StandaloneJsonHelpers) {
  const JobInfoRecord original = *sample_knowledge().job;
  const JobInfoRecord restored = job_info_from_json(job_info_to_json(original));
  EXPECT_EQ(restored, original);
}

TEST(Knowledge, FromJsonRejectsMissingFields) {
  EXPECT_THROW(Knowledge::from_json(util::parse_json("{}")), ParseError);
}

TEST(Knowledge, JsonTextRoundTrip) {
  const Knowledge original = sample_knowledge();
  const std::string text = original.to_json().dump(2);
  const Knowledge restored = Knowledge::from_json(util::parse_json(text));
  EXPECT_EQ(restored, original);
}

Io500Knowledge sample_io500() {
  Io500Knowledge k;
  k.command = "io500 -N 40";
  k.num_tasks = 40;
  k.num_nodes = 2;
  k.score_bw_gib = 0.78;
  k.score_md_kiops = 9.1;
  k.score_total = 2.66;
  for (const char* name :
       {"ior-easy-write", "ior-hard-write", "ior-easy-read", "ior-hard-read"}) {
    Io500Testcase testcase;
    testcase.name = name;
    testcase.options = "transferSize=2m";
    testcase.value = 1.5;
    testcase.unit = "GiB/s";
    testcase.time_sec = 30.0;
    k.testcases.push_back(testcase);
  }
  k.system = sample_knowledge().system;
  return k;
}

TEST(Io500Knowledge, FindTestcase) {
  const Io500Knowledge k = sample_io500();
  EXPECT_NE(k.find_testcase("ior-easy-write"), nullptr);
  EXPECT_EQ(k.find_testcase("mdtest-easy-write"), nullptr);
}

TEST(Io500Knowledge, JsonRoundTripIsExact) {
  const Io500Knowledge original = sample_io500();
  const Io500Knowledge restored =
      Io500Knowledge::from_json(original.to_json());
  EXPECT_EQ(restored, original);
}

TEST(Io500Knowledge, JsonRoundTripWithoutSystem) {
  Io500Knowledge k = sample_io500();
  k.system.reset();
  EXPECT_EQ(Io500Knowledge::from_json(k.to_json()), k);
}

TEST(SystemInfoRecord, StandaloneJsonHelpers) {
  const SystemInfoRecord original = *sample_knowledge().system;
  const SystemInfoRecord restored =
      system_info_from_json(system_info_to_json(original));
  EXPECT_EQ(restored, original);
}

}  // namespace
}  // namespace iokc::knowledge
