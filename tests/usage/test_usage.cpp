#include <gtest/gtest.h>

#include <cmath>

#include "src/usage/config_generator.hpp"
#include "src/usage/prediction.hpp"
#include "src/usage/recommendation.hpp"
#include "src/usage/workload_generator.hpp"
#include "src/util/error.hpp"

namespace iokc::usage {
namespace {

constexpr const char* kPaperCommand =
    "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -N 80 -o /s/test80 -k";

TEST(ConfigGenerator, OverridesApplySelectively) {
  IorOverrides overrides;
  overrides.transfer_size = 4ull << 20;
  overrides.num_tasks = 40;
  const gen::IorConfig config =
      apply_overrides(gen::parse_ior_command(kPaperCommand), overrides);
  EXPECT_EQ(config.transfer_size, 4ull << 20);
  EXPECT_EQ(config.num_tasks, 40u);
  // Untouched fields keep stored values.
  EXPECT_EQ(config.block_size, 4ull << 20);
  EXPECT_TRUE(config.file_per_process);
  EXPECT_EQ(config.iterations, 6);
}

TEST(ConfigGenerator, CreateConfigurationValidates) {
  IorOverrides overrides;
  overrides.transfer_size = 3ull << 20;  // 3m does not divide 4m blocks
  EXPECT_THROW(create_configuration(kPaperCommand, overrides), ConfigError);
  overrides.transfer_size = 1ull << 20;
  const std::string command = create_configuration(kPaperCommand, overrides);
  EXPECT_NE(command.find("-t 1m"), std::string::npos);
  // The generated command parses back.
  EXPECT_NO_THROW(gen::parse_ior_command(command).validate());
}

TEST(ConfigGenerator, JubeSweepPatchesOptions) {
  const jube::JubeBenchmarkConfig config = generate_jube_config(
      "transfer-sweep", kPaperCommand,
      {{"-t", SweepDimension{"transfer", {"1m", "2m", "4m"}}},
       {"-N", SweepDimension{"tasks", {"40", "80"}}}});
  EXPECT_EQ(config.space.size(), 6u);
  ASSERT_EQ(config.steps.size(), 1u);
  EXPECT_NE(config.steps[0].command_template.find("-t $transfer"),
            std::string::npos);
  EXPECT_NE(config.steps[0].command_template.find("-N $tasks"),
            std::string::npos);
  // Round-trips through the XML dialect.
  const auto parsed = jube::JubeBenchmarkConfig::from_xml_text(config.to_xml());
  EXPECT_EQ(parsed.space.size(), 6u);
}

TEST(ConfigGenerator, JubeSweepAppendsMissingOption) {
  const jube::JubeBenchmarkConfig config = generate_jube_config(
      "sweep", "ior -b 4m -t 2m -N 8 -o /s/f",
      {{"-i", SweepDimension{"iters", {"1", "3"}}}});
  EXPECT_NE(config.steps[0].command_template.find("-i $iters"),
            std::string::npos);
}

TEST(ConfigGenerator, EmptySweepValuesRejected) {
  EXPECT_THROW(generate_jube_config("s", kPaperCommand,
                                    {{"-t", SweepDimension{"t", {}}}}),
               ConfigError);
}

TEST(Features, FromCommandEncodesPattern) {
  const ConfigFeatures features = ConfigFeatures::from_command(kPaperCommand);
  EXPECT_DOUBLE_EQ(features.log2_transfer, 21.0);
  EXPECT_DOUBLE_EQ(features.log2_block, 22.0);
  EXPECT_NEAR(features.log2_segments, std::log2(40.0), 1e-12);
  EXPECT_DOUBLE_EQ(features.tasks, 80.0);
  EXPECT_DOUBLE_EQ(features.file_per_process, 1.0);
  EXPECT_DOUBLE_EQ(features.api_mpiio, 1.0);
  EXPECT_DOUBLE_EQ(features.api_hdf5, 0.0);
  EXPECT_EQ(features.as_vector().size(), 7u);
}

namespace {

std::vector<TrainingSample> synthetic_samples() {
  // Bandwidth linear in log2(transfer) and tasks: learnable exactly.
  std::vector<TrainingSample> samples;
  for (int t = 16; t <= 23; ++t) {
    for (int n = 1; n <= 4; ++n) {
      TrainingSample sample;
      sample.features.log2_transfer = t;
      sample.features.log2_block = t + 1;
      sample.features.log2_segments = 3;
      sample.features.tasks = 20.0 * n;
      sample.features.file_per_process = n % 2;
      sample.mean_bw_mib = 100.0 * t + 5.0 * 20.0 * n + 50.0 * (n % 2);
      sample.operation = "write";
      samples.push_back(sample);
    }
  }
  return samples;
}

}  // namespace

TEST(Prediction, LinearPredictorRecoversSyntheticModel) {
  const std::vector<TrainingSample> samples = synthetic_samples();
  const BandwidthPredictor predictor = BandwidthPredictor::fit(samples);
  ConfigFeatures query;
  query.log2_transfer = 20;
  query.log2_block = 21;
  query.log2_segments = 3;
  query.tasks = 60.0;
  query.file_per_process = 1.0;
  const double expected = 100.0 * 20 + 5.0 * 60.0 + 50.0;
  EXPECT_NEAR(predictor.predict(query), expected, 1.0);
}

TEST(Prediction, FitNeedsEnoughSamples) {
  std::vector<TrainingSample> samples(4);
  EXPECT_THROW(BandwidthPredictor::fit(samples), ConfigError);
}

TEST(Prediction, KnnAveragesNearestNeighbours) {
  const std::vector<TrainingSample> samples = synthetic_samples();
  ConfigFeatures query = samples[5].features;
  const double predicted = knn_predict(samples, query, 1);
  EXPECT_NEAR(predicted, samples[5].mean_bw_mib, 1e-9);
  EXPECT_THROW(knn_predict({}, query), ConfigError);
}

TEST(Prediction, TrainingSetFromRepository) {
  persist::KnowledgeRepository repo;
  for (int i = 0; i < 3; ++i) {
    knowledge::Knowledge k;
    k.benchmark = "IOR";
    k.command = "ior -a posix -b 4m -t 1m -s 4 -N " + std::to_string(8 << i) +
                " -o /s/f";
    knowledge::OpSummary write;
    write.operation = "write";
    write.mean_bw_mib = 1000.0 + i;
    k.summaries.push_back(write);
    repo.store(k);
  }
  // One non-IOR object that must be skipped.
  knowledge::Knowledge other;
  other.benchmark = "HACC-IO";
  other.command = "hacc_io -p 10";
  repo.store(other);

  const auto samples = build_training_set(repo, "write");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].mean_bw_mib, 1000.0);
  EXPECT_TRUE(build_training_set(repo, "read").empty());
}

TEST(Recommendation, SuggestsBetterStoredSettings) {
  persist::KnowledgeRepository repo;
  auto store = [&repo](const std::string& command, double bw) {
    knowledge::Knowledge k;
    k.benchmark = "IOR";
    k.command = command;
    knowledge::OpSummary write;
    write.operation = "write";
    write.mean_bw_mib = bw;
    k.summaries.push_back(write);
    repo.store(k);
  };
  store("ior -a posix -b 4m -t 256k -s 4 -N 40 -o /s/f", 900.0);
  store("ior -a mpiio -b 4m -t 2m -s 4 -F -N 40 -o /s/f", 2600.0);

  const gen::IorConfig target =
      gen::parse_ior_command("ior -a posix -b 4m -t 256k -s 4 -N 40 -o /s/f");
  const RecommendationReport report = recommend(repo, target);
  EXPECT_EQ(report.evidence_runs, 2u);
  ASSERT_FALSE(report.empty());
  bool suggests_transfer = false;
  bool suggests_api = false;
  for (const Recommendation& recommendation : report.recommendations) {
    suggests_transfer |= recommendation.tunable == "transfer_size" &&
                         recommendation.suggested == "2m";
    suggests_api |= recommendation.tunable == "api" &&
                    recommendation.suggested == "MPIIO";
    EXPECT_GT(recommendation.expected_gain, 1.0);  // ~2.9x - 1
  }
  EXPECT_TRUE(suggests_transfer);
  EXPECT_TRUE(suggests_api);
  EXPECT_NE(report.render().find("transfer_size"), std::string::npos);
}

TEST(Recommendation, EmptyRepositoryGivesNoAdvice) {
  persist::KnowledgeRepository repo;
  const gen::IorConfig target = gen::parse_ior_command("ior -N 40");
  const RecommendationReport report = recommend(repo, target);
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.evidence_runs, 0u);
}

TEST(Workload, SimilarConfigsAreValidAndDeterministic) {
  knowledge::Knowledge k;
  k.command = kPaperCommand;
  const auto a = generate_similar_configs(k, 5, 42);
  const auto b = generate_similar_configs(k, 5, 42);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NO_THROW(a[i].validate());
    EXPECT_EQ(a[i].render_command(), b[i].render_command());
    // Stay within a factor of two of the original task count.
    EXPECT_GE(a[i].num_tasks, 40u);
    EXPECT_LE(a[i].num_tasks, 160u);
  }
  // A different seed explores different configurations.
  const auto c = generate_similar_configs(k, 5, 43);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_different |= a[i].render_command() != c[i].render_command();
  }
  EXPECT_TRUE(any_different);
}

TEST(Workload, TraceMatchesPatternVolume) {
  knowledge::Knowledge k;
  k.command = "ior -a posix -b 4m -t 1m -s 2 -F -N 4 -o /s/tr -k";
  knowledge::OpSummary write;
  write.operation = "write";
  k.summaries.push_back(write);
  knowledge::OpSummary read;
  read.operation = "read";
  k.summaries.push_back(read);

  const SyntheticTrace trace = generate_trace(k, 7);
  EXPECT_EQ(trace.num_tasks, 4u);
  // Volume is exact: jitter redistributes request sizes, not totals.
  EXPECT_EQ(trace.total_bytes_written(), 4ull * 8 * 1024 * 1024);
  EXPECT_EQ(trace.total_bytes_read(), 4ull * 8 * 1024 * 1024);
  // Per rank: one open and one close.
  std::size_t opens = 0;
  std::size_t closes = 0;
  for (const TraceOp& op : trace.ops) {
    opens += op.kind == TraceOp::Kind::kOpen ? 1 : 0;
    closes += op.kind == TraceOp::Kind::kClose ? 1 : 0;
  }
  EXPECT_EQ(opens, 4u);
  EXPECT_EQ(closes, 4u);
}

TEST(Workload, WriteOnlyTraceHasNoReads) {
  knowledge::Knowledge k;
  k.command = "ior -a posix -b 1m -t 1m -s 1 -F -w -N 2 -o /s/w -k -e";
  knowledge::OpSummary write;
  write.operation = "write";
  k.summaries.push_back(write);
  const SyntheticTrace trace = generate_trace(k, 1);
  EXPECT_EQ(trace.total_bytes_read(), 0u);
  EXPECT_GT(trace.total_bytes_written(), 0u);
  bool has_fsync = false;
  for (const TraceOp& op : trace.ops) {
    has_fsync |= op.kind == TraceOp::Kind::kFsync;
  }
  EXPECT_TRUE(has_fsync);
}

}  // namespace
}  // namespace iokc::usage
