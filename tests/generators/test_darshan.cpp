#include "src/generators/darshan.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/extract/parsers.hpp"
#include "src/fs/pfs.hpp"
#include "src/generators/ior.hpp"
#include "src/iostack/client.hpp"
#include "src/sim/cluster.hpp"

namespace iokc::gen {
namespace {

TEST(Darshan, CountsOperations) {
  DarshanProfiler profiler(iostack::IoApi::kPosix);
  profiler.record_open(0, "/f");
  profiler.record_open(1, "/f");
  profiler.record_transfer(0, "/f", 1024, /*is_write=*/true);
  profiler.record_transfer(0, "/f", 2048, /*is_write=*/true);
  profiler.record_transfer(1, "/f", 512, /*is_write=*/false);
  profiler.record_close(0, "/f");
  profiler.set_job_metadata("ior -a posix", 2);

  const auto& record = profiler.records().at("/f");
  EXPECT_EQ(record.opens, 2u);
  EXPECT_EQ(record.closes, 1u);
  EXPECT_EQ(record.writes, 2u);
  EXPECT_EQ(record.reads, 1u);
  EXPECT_EQ(record.bytes_written, 3072u);
  EXPECT_EQ(record.bytes_read, 512u);
  EXPECT_EQ(record.max_write_size, 2048u);
  EXPECT_EQ(record.max_read_size, 512u);
}

TEST(Darshan, LogRendersPosixCounters) {
  DarshanProfiler profiler(iostack::IoApi::kPosix);
  profiler.record_transfer(0, "/a", 100, true);
  profiler.set_job_metadata("my_app", 4);
  const std::string log = profiler.render_log();
  EXPECT_NE(log.find("# darshan log version: 3.41-sim"), std::string::npos);
  EXPECT_NE(log.find("# exe: my_app"), std::string::npos);
  EXPECT_NE(log.find("# nprocs: 4"), std::string::npos);
  EXPECT_NE(log.find("POSIX\t-1\t/a\tPOSIX_BYTES_WRITTEN\t100"),
            std::string::npos);
}

TEST(Darshan, MpiioModuleName) {
  DarshanProfiler profiler(iostack::IoApi::kMpiio);
  profiler.record_transfer(0, "/a", 100, false);
  const std::string log = profiler.render_log();
  EXPECT_NE(log.find("MPIIO_BYTES_READ"), std::string::npos);
}

TEST(Darshan, LogRoundTripsThroughParser) {
  DarshanProfiler profiler(iostack::IoApi::kMpiio);
  profiler.record_open(0, "/data/x");
  profiler.record_transfer(0, "/data/x", 4096, true);
  profiler.record_transfer(0, "/data/y", 1024, false);
  profiler.record_close(0, "/data/x");
  profiler.set_job_metadata("ior -a mpiio -N 8", 8);

  const extract::DarshanLog log =
      extract::parse_darshan_log(profiler.render_log());
  EXPECT_EQ(log.command, "ior -a mpiio -N 8");
  EXPECT_EQ(log.nprocs, 8u);
  EXPECT_EQ(log.module, "MPIIO");
  ASSERT_EQ(log.files.size(), 2u);
  EXPECT_EQ(log.files.at("/data/x").bytes_written, 4096u);
  EXPECT_EQ(log.files.at("/data/y").bytes_read, 1024u);
  EXPECT_EQ(log.total_bytes_written(), 4096u);
  EXPECT_EQ(log.total_bytes_read(), 1024u);
}

TEST(Darshan, IorEngineIntegration) {
  sim::EventQueue queue;
  sim::ClusterSpec cluster_spec;
  cluster_spec.node_count = 2;
  sim::Cluster cluster(queue, cluster_spec, 3);
  fs::ParallelFileSystem pfs(cluster, fs::PfsSpec::fuchs_beegfs());

  const IorConfig config = parse_ior_command(
      "ior -a posix -b 1m -t 256k -s 2 -F -i 1 -N 4 -o /scratch/dar -k");
  iostack::IoClient client(pfs, config.api);
  IorBenchmark bench(client, config, block_rank_mapping({0, 1}, 4));
  DarshanProfiler profiler(config.api);
  bench.set_profiler(&profiler);
  bench.run();

  // 4 ranks x 2 segments x 4 transfers, written and read once each.
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t bytes_written = 0;
  for (const auto& [file, record] : profiler.records()) {
    writes += record.writes;
    reads += record.reads;
    bytes_written += record.bytes_written;
  }
  EXPECT_EQ(writes, 4u * 2u * 4u);
  EXPECT_EQ(reads, 4u * 2u * 4u);
  EXPECT_EQ(bytes_written, 4u * 2u * 1024u * 1024u);
  EXPECT_EQ(profiler.nprocs(), 4u);
}

}  // namespace
}  // namespace iokc::gen
