#include "src/generators/ior.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/fs/pfs.hpp"
#include "src/iostack/client.hpp"
#include "src/sim/cluster.hpp"
#include "src/util/error.hpp"

namespace iokc::gen {
namespace {

TEST(IorConfig, ParsesThePaperCommand) {
  const IorConfig config = parse_ior_command(
      "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o "
      "/scratch/fuchs/zhuz/test80 -k -N 80");
  EXPECT_EQ(config.api, iostack::IoApi::kMpiio);
  EXPECT_EQ(config.block_size, 4ull * 1024 * 1024);
  EXPECT_EQ(config.transfer_size, 2ull * 1024 * 1024);
  EXPECT_EQ(config.segments, 40u);
  EXPECT_TRUE(config.file_per_process);
  EXPECT_TRUE(config.reorder_tasks);
  EXPECT_TRUE(config.fsync);
  EXPECT_EQ(config.iterations, 6);
  EXPECT_EQ(config.test_file, "/scratch/fuchs/zhuz/test80");
  EXPECT_TRUE(config.keep_file);
  EXPECT_EQ(config.num_tasks, 80u);
  // Neither -w nor -r: both directions run.
  EXPECT_TRUE(config.do_write());
  EXPECT_TRUE(config.do_read());
}

TEST(IorConfig, WriteReadFlagSelection) {
  EXPECT_FALSE(parse_ior_command("ior -w").do_read());
  EXPECT_TRUE(parse_ior_command("ior -w").do_write());
  EXPECT_FALSE(parse_ior_command("ior -r").do_write());
  EXPECT_TRUE(parse_ior_command("ior -r").do_read());
  EXPECT_TRUE(parse_ior_command("ior -w -r").do_write());
  EXPECT_TRUE(parse_ior_command("ior -w -r").do_read());
}

TEST(IorConfig, RejectsUnknownOptionsAndMissingValues) {
  EXPECT_THROW(parse_ior_command("ior -Q"), ParseError);
  EXPECT_THROW(parse_ior_command("ior -b"), ParseError);
  EXPECT_THROW(parse_ior_command("ior -b xyz"), ParseError);
}

TEST(IorConfig, ValidationRules) {
  IorConfig config;
  config.block_size = 1024;
  config.transfer_size = 512;
  config.num_tasks = 4;
  EXPECT_NO_THROW(config.validate());
  config.transfer_size = 768;  // not a divisor of block
  EXPECT_THROW(config.validate(), ConfigError);
  config.transfer_size = 512;
  config.segments = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config.segments = 1;
  config.iterations = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config.iterations = 1;
  config.collective = true;
  config.file_per_process = true;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(IorConfig, DerivedQuantities) {
  IorConfig config;
  config.block_size = 4ull * 1024 * 1024;
  config.transfer_size = 2ull * 1024 * 1024;
  config.segments = 40;
  EXPECT_EQ(config.bytes_per_rank(), 160ull * 1024 * 1024);
  EXPECT_EQ(config.transfers_per_rank(), 80u);
}

/// Property: render -> parse is the identity on every flag combination.
class IorCommandRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IorCommandRoundTrip, RoundTrips) {
  const int bits = GetParam();
  IorConfig config;
  config.api = bits % 3 == 0 ? iostack::IoApi::kPosix
               : bits % 3 == 1 ? iostack::IoApi::kMpiio
                               : iostack::IoApi::kHdf5;
  config.block_size = 1ull << (16 + bits % 8);
  config.transfer_size = config.block_size / (bits % 2 == 0 ? 1 : 4);
  config.segments = 1 + static_cast<std::uint32_t>(bits);
  config.file_per_process = bits & 1;
  config.reorder_tasks = bits & 2;
  config.fsync = bits & 4;
  config.keep_file = bits & 8;
  config.write_file = bits & 16;
  config.read_file = bits & 32;
  config.collective = (bits & 64) && !config.file_per_process;
  config.iterations = 1 + bits % 5;
  config.num_tasks = 1 + static_cast<std::uint32_t>(bits) * 3;
  config.test_file = "/scratch/rt" + std::to_string(bits);

  const IorConfig parsed = parse_ior_command(config.render_command());
  EXPECT_EQ(parsed.api, config.api);
  EXPECT_EQ(parsed.block_size, config.block_size);
  EXPECT_EQ(parsed.transfer_size, config.transfer_size);
  EXPECT_EQ(parsed.segments, config.segments);
  EXPECT_EQ(parsed.file_per_process, config.file_per_process);
  EXPECT_EQ(parsed.reorder_tasks, config.reorder_tasks);
  EXPECT_EQ(parsed.fsync, config.fsync);
  EXPECT_EQ(parsed.keep_file, config.keep_file);
  EXPECT_EQ(parsed.write_file, config.write_file);
  EXPECT_EQ(parsed.read_file, config.read_file);
  EXPECT_EQ(parsed.collective, config.collective);
  EXPECT_EQ(parsed.iterations, config.iterations);
  EXPECT_EQ(parsed.num_tasks, config.num_tasks);
  EXPECT_EQ(parsed.test_file, config.test_file);
}

INSTANTIATE_TEST_SUITE_P(FlagCombos, IorCommandRoundTrip,
                         ::testing::Range(0, 128, 7));

TEST(BlockRankMapping, FillsNodesInOrder) {
  const auto mapping = block_rank_mapping({10, 11}, 4);
  EXPECT_EQ(mapping, (std::vector<std::size_t>{10, 10, 11, 11}));
}

TEST(BlockRankMapping, UnevenCounts) {
  const auto mapping = block_rank_mapping({0, 1, 2}, 5);
  ASSERT_EQ(mapping.size(), 5u);
  EXPECT_EQ(mapping.front(), 0u);
  EXPECT_EQ(mapping.back(), 2u);
}

TEST(BlockRankMapping, RejectsEmptyNodeList) {
  EXPECT_THROW(block_rank_mapping({}, 4), ConfigError);
}

/// Engine fixture on a small calibrated environment.
class IorEngineTest : public ::testing::Test {
 protected:
  IorEngineTest() {
    sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 4;
    cluster_ = std::make_unique<sim::Cluster>(queue_, cluster_spec, 99);
    fs::PfsSpec pfs_spec = fs::PfsSpec::fuchs_beegfs();
    pfs_ = std::make_unique<fs::ParallelFileSystem>(*cluster_, pfs_spec);
  }

  IorRunResult run(const std::string& command) {
    const IorConfig config = parse_ior_command(command);
    iostack::IoClient client(*pfs_, config.api);
    IorBenchmark bench(client, config,
                       block_rank_mapping({0, 1}, config.num_tasks));
    return bench.run();
  }

  sim::EventQueue queue_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<fs::ParallelFileSystem> pfs_;
};

TEST_F(IorEngineTest, ProducesOneResultPerDirectionPerIteration) {
  const IorRunResult result =
      run("ior -a posix -b 1m -t 256k -s 4 -F -i 3 -N 8 -o /scratch/t -k");
  EXPECT_EQ(result.ops.size(), 6u);
  EXPECT_EQ(result.ops_for("write").size(), 3u);
  EXPECT_EQ(result.ops_for("read").size(), 3u);
  for (const IorOpResult& op : result.ops) {
    EXPECT_GT(op.bw_mib, 0.0);
    EXPECT_GT(op.iops, 0.0);
    EXPECT_GT(op.total_sec, 0.0);
    EXPECT_EQ(op.block_kib, 1024u);
    EXPECT_EQ(op.xfer_kib, 256u);
  }
}

TEST_F(IorEngineTest, WriteOnlyRun) {
  const IorRunResult result =
      run("ior -a posix -b 1m -t 256k -s 2 -F -w -i 2 -N 4 -o /scratch/w -k");
  EXPECT_EQ(result.ops_for("write").size(), 2u);
  EXPECT_TRUE(result.ops_for("read").empty());
}

TEST_F(IorEngineTest, ReorderTasksDefeatsPageCache) {
  // Without -C the re-read is served from the writer's page cache and is
  // absurdly fast; with -C it must come from storage.
  const IorRunResult cached =
      run("ior -a posix -b 4m -t 1m -s 4 -F -i 1 -N 8 -o /scratch/nc -k");
  const IorRunResult reordered =
      run("ior -a posix -b 4m -t 1m -s 4 -F -C -i 1 -N 8 -o /scratch/rc -k");
  const double cached_read = cached.ops_for("read").front()->bw_mib;
  const double reordered_read = reordered.ops_for("read").front()->bw_mib;
  EXPECT_GT(cached_read, reordered_read * 3.0);
}

TEST_F(IorEngineTest, RemovesFilesUnlessKeepFlag) {
  run("ior -a posix -b 1m -t 1m -s 1 -F -w -i 1 -N 2 -o /scratch/rm");
  EXPECT_FALSE(pfs_->exists("/scratch/rm.00000000"));
  run("ior -a posix -b 1m -t 1m -s 1 -F -w -i 1 -N 2 -o /scratch/kp -k");
  EXPECT_TRUE(pfs_->exists("/scratch/kp.00000000"));
}

TEST_F(IorEngineTest, SharedFileRun) {
  const IorRunResult result =
      run("ior -a mpiio -b 1m -t 256k -s 2 -i 1 -N 8 -o /scratch/sh -k");
  EXPECT_EQ(result.ops.size(), 2u);
  EXPECT_TRUE(pfs_->exists("/scratch/sh"));
  EXPECT_EQ(pfs_->find_entry("/scratch/sh")->size, 16ull * 1024 * 1024);
}

TEST_F(IorEngineTest, CollectiveSharedFileRun) {
  const IorRunResult result =
      run("ior -a mpiio -c -b 1m -t 256k -s 2 -i 1 -N 8 -o /scratch/col -k");
  EXPECT_EQ(result.ops.size(), 2u);
  for (const IorOpResult& op : result.ops) {
    EXPECT_GT(op.bw_mib, 0.0);
  }
}

TEST_F(IorEngineTest, FsyncAddsToWriteTime) {
  const IorRunResult plain =
      run("ior -a posix -b 1m -t 1m -s 1 -F -w -i 1 -N 2 -o /scratch/p -k");
  const IorRunResult fsynced =
      run("ior -a posix -b 1m -t 1m -s 1 -F -w -e -i 1 -N 2 -o /scratch/e -k");
  EXPECT_GT(fsynced.ops_for("write").front()->wrrd_sec,
            plain.ops_for("write").front()->wrrd_sec);
}

TEST_F(IorEngineTest, MismatchedRankMapThrows) {
  const IorConfig config = parse_ior_command("ior -N 8");
  iostack::IoClient client(*pfs_, config.api);
  EXPECT_THROW(IorBenchmark(client, config, {0, 1}), ConfigError);
}

TEST_F(IorEngineTest, OutputContainsIorReportShape) {
  const IorRunResult result =
      run("ior -a mpiio -b 1m -t 256k -s 2 -F -i 2 -N 4 -o /scratch/out -k");
  const std::string text = result.render_output();
  EXPECT_NE(text.find("IOR-3.3.0+sim"), std::string::npos);
  EXPECT_NE(text.find("Command line        : ior -a MPIIO"),
            std::string::npos);
  EXPECT_NE(text.find("api                 : MPIIO"), std::string::npos);
  EXPECT_NE(text.find("Results:"), std::string::npos);
  EXPECT_NE(text.find("Summary of all tests:"), std::string::npos);
  EXPECT_NE(text.find("write"), std::string::npos);
  EXPECT_NE(text.find("read"), std::string::npos);
}

TEST_F(IorEngineTest, StonewallingCapsThePhase) {
  // 8 ranks x 512 MiB each need ~1.4 s at full storage speed; a 1 s deadline
  // must cut the write phase short but report a sane bandwidth.
  const IorRunResult walled = run(
      "ior -a posix -b 16m -t 1m -s 32 -F -w -D 1 -i 1 -N 8 -o /scratch/sw -k");
  const IorOpResult& op = *walled.ops_for("write").front();
  EXPECT_LE(op.wrrd_sec, 1.35);  // deadline + in-flight transfer drain
  EXPECT_GT(op.bw_mib, 0.0);
  // Fewer transfers completed than configured (8 ranks x 512 transfers).
  EXPECT_LT(op.iops * op.wrrd_sec, 8 * 512.0 * 0.95);
}

TEST_F(IorEngineTest, StonewalledWriteThenReadReadsOnlyWrittenData) {
  const IorRunResult result = run(
      "ior -a posix -b 8m -t 1m -s 8 -F -C -D 1 -i 1 -N 8 -o /scratch/swr -k");
  const IorOpResult& write = *result.ops_for("write").front();
  const IorOpResult& read = *result.ops_for("read").front();
  // The read phase moved at most as many ops as the write phase completed.
  EXPECT_LE(read.iops * read.wrrd_sec, write.iops * write.wrrd_sec * 1.01);
  EXPECT_GT(read.bw_mib, 0.0);
}

TEST_F(IorEngineTest, RandomOffsetsCoverTheSameData) {
  // -z permutes the order, not the set: the file ends up the same size and
  // the read phase completes without EOF errors.
  const IorRunResult result = run(
      "ior -a posix -b 2m -t 256k -s 2 -F -C -z -i 1 -N 4 -o /scratch/z -k");
  EXPECT_EQ(result.ops.size(), 2u);
  EXPECT_EQ(pfs_->find_entry("/scratch/z.00000000")->size, 4ull << 20);
  const std::string text = result.render_output();
  EXPECT_NE(text.find("ordering in a file  : random offsets"),
            std::string::npos);
}

TEST_F(IorEngineTest, RandomWithCollectiveRejected) {
  EXPECT_THROW(run("ior -a mpiio -c -z -b 1m -t 256k -N 4 -o /scratch/x"),
               ConfigError);
}

TEST(IorConfig, HintsRoundTrip) {
  IorConfig config;
  config.hints.cb_nodes = 2;
  config.hints.cb_buffer_size = 8ull << 20;
  config.hints.collective_buffering = true;
  config.hints_set = true;
  const IorConfig parsed = parse_ior_command(config.render_command());
  EXPECT_TRUE(parsed.hints_set);
  EXPECT_EQ(parsed.hints, config.hints);
  EXPECT_FALSE(parse_ior_command("ior -N 2").hints_set);
  EXPECT_THROW(parse_ior_command("ior -O bogus=1"), ParseError);
}

TEST(IorAggregators, MoreAggregatorsHelpWhenNicsAreSlow) {
  // On a cluster whose NICs are slower than the storage back-end (10GbE vs
  // ~3 GB/s of targets), collective writes funnel through the aggregator
  // NICs: doubling cb_nodes must raise bandwidth substantially.
  auto run_with = [](std::uint32_t cb_nodes) {
    sim::EventQueue queue;
    sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 2;
    cluster_spec.node.nic_bytes_per_sec = 1.2e9;  // 10GbE
    sim::Cluster cluster(queue, cluster_spec, 31);
    fs::PfsSpec pfs_spec = fs::PfsSpec::fuchs_beegfs();
    // Stripe the shared file over every target so the back-end outruns a
    // single aggregator NIC.
    pfs_spec.default_stripe.num_targets = 12;
    fs::ParallelFileSystem pfs(cluster, pfs_spec);
    IorConfig config = parse_ior_command(
        "ior -a mpiio -c -b 4m -t 4m -s 4 -C -w -i 1 -N 8 -o /scratch/agg");
    config.hints.cb_nodes = cb_nodes;
    config.hints.cb_buffer_size = 4ull << 20;
    config.hints_set = true;
    iostack::IoClient client(pfs, config.api, config.hints);
    IorBenchmark bench(client, config, block_rank_mapping({0, 1}, 8));
    return bench.run().ops_for("write").front()->bw_mib;
  };
  const double one_agg = run_with(1);
  const double two_agg = run_with(2);
  // The serial shuffle phase bounds the speedup below 2x; 1.3x is the
  // expected signal for this geometry.
  EXPECT_GT(two_agg, one_agg * 1.3);
}

TEST(IorConfig, StonewallAndRandomRoundTrip) {
  IorConfig config;
  config.deadline_secs = 30;
  config.random_offsets = true;
  const IorConfig parsed = parse_ior_command(config.render_command());
  EXPECT_EQ(parsed.deadline_secs, 30);
  EXPECT_TRUE(parsed.random_offsets);
  EXPECT_THROW(parse_ior_command("ior -D"), ParseError);
}

TEST(IorEngineDeterminism, SameSeedSameNumbers) {
  auto run_once = [] {
    sim::EventQueue queue;
    sim::ClusterSpec spec;
    spec.node_count = 2;
    sim::Cluster cluster(queue, spec, 1234);
    fs::ParallelFileSystem pfs(cluster, fs::PfsSpec::fuchs_beegfs());
    const IorConfig config = parse_ior_command(
        "ior -a posix -b 1m -t 256k -s 2 -F -i 2 -N 4 -o /scratch/d -k");
    iostack::IoClient client(pfs, config.api);
    IorBenchmark bench(client, config, block_rank_mapping({0, 1}, 4));
    return bench.run();
  };
  const IorRunResult a = run_once();
  const IorRunResult b = run_once();
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ops[i].bw_mib, b.ops[i].bw_mib);
    EXPECT_DOUBLE_EQ(a.ops[i].total_sec, b.ops[i].total_sec);
  }
}

}  // namespace
}  // namespace iokc::gen
