#include "src/generators/io500.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/fs/pfs.hpp"
#include "src/iostack/client.hpp"
#include "src/sim/cluster.hpp"
#include "src/util/error.hpp"

namespace iokc::gen {
namespace {

Io500Config small_config() {
  Io500Config config;
  config.num_tasks = 8;
  config.base_dir = "/scratch/io500";
  config.ior_easy_bytes_per_rank = 16ull * 1024 * 1024;
  config.ior_hard_bytes_per_rank = 2ull * 1024 * 1024;
  config.mdtest_easy_files_per_rank = 40;
  config.mdtest_hard_files_per_rank = 20;
  return config;
}

class Io500Test : public ::testing::Test {
 protected:
  Io500Test() {
    sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 4;
    cluster_ = std::make_unique<sim::Cluster>(queue_, cluster_spec, 21);
    pfs_ = std::make_unique<fs::ParallelFileSystem>(
        *cluster_, fs::PfsSpec::fuchs_beegfs());
    client_ = std::make_unique<iostack::IoClient>(*pfs_,
                                                  iostack::IoApi::kPosix);
  }

  Io500Result run(const Io500Config& config) {
    Io500Benchmark bench(*client_, config,
                         block_rank_mapping({0, 1}, config.num_tasks));
    return bench.run();
  }

  sim::EventQueue queue_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<fs::ParallelFileSystem> pfs_;
  std::unique_ptr<iostack::IoClient> client_;
};

TEST_F(Io500Test, RunsAllTwelveOfficialPhases) {
  const Io500Result result = run(small_config());
  ASSERT_EQ(result.phases.size(), 12u);
  const char* expected[] = {
      "ior-easy-write",  "mdtest-easy-write", "ior-hard-write",
      "mdtest-hard-write", "find",            "ior-easy-read",
      "mdtest-easy-stat", "ior-hard-read",    "mdtest-hard-stat",
      "mdtest-easy-delete", "mdtest-hard-read", "mdtest-hard-delete"};
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(result.phases[i].name, expected[i]);
    EXPECT_GT(result.phases[i].value, 0.0) << expected[i];
    EXPECT_GT(result.phases[i].time_sec, 0.0) << expected[i];
  }
}

TEST_F(Io500Test, EasyBeatsHardOnBothDimensions) {
  const Io500Result result = run(small_config());
  EXPECT_GT(result.find_phase("ior-easy-write")->value,
            result.find_phase("ior-hard-write")->value * 2.0);
  EXPECT_GT(result.find_phase("ior-easy-read")->value,
            result.find_phase("ior-hard-read")->value);
  EXPECT_GT(result.find_phase("mdtest-easy-write")->value,
            result.find_phase("mdtest-hard-write")->value);
}

TEST_F(Io500Test, ScoreIsSqrtOfGeomeans) {
  const Io500Result result = run(small_config());
  EXPECT_GT(result.score_bw_gib, 0.0);
  EXPECT_GT(result.score_md_kiops, 0.0);
  EXPECT_NEAR(result.score_total,
              std::sqrt(result.score_bw_gib * result.score_md_kiops), 1e-9);
}

TEST_F(Io500Test, CleansUpIorFiles) {
  const Io500Config config = small_config();
  run(config);
  EXPECT_FALSE(pfs_->exists(config.base_dir + "/ior_hard/IOR_file"));
  EXPECT_FALSE(
      pfs_->exists(config.base_dir + "/ior_easy/ior_file_easy.00000000"));
}

TEST_F(Io500Test, RepeatedRunsInOneEnvironment) {
  const Io500Result first = run(small_config());
  const Io500Result second = run(small_config());
  // Both must complete with sane values; jitter makes them differ slightly.
  EXPECT_GT(second.score_total, first.score_total * 0.5);
  EXPECT_LT(second.score_total, first.score_total * 2.0);
}

TEST_F(Io500Test, OutputShapeAndParseFields) {
  const Io500Result result = run(small_config());
  const std::string text = result.render_output();
  EXPECT_NE(text.find("IO500 version io500-sim"), std::string::npos);
  EXPECT_NE(text.find("[CONFIG] tasks 8"), std::string::npos);
  EXPECT_NE(text.find("[RESULT]"), std::string::npos);
  EXPECT_NE(text.find("ior-easy-write"), std::string::npos);
  EXPECT_NE(text.find("GiB/s : time"), std::string::npos);
  EXPECT_NE(text.find("[SCORE ] Bandwidth"), std::string::npos);
}

TEST(Io500Config, CommandRoundTrip) {
  Io500Config config;
  config.num_tasks = 40;
  config.base_dir = "/scratch/x";
  config.ior_easy_bytes_per_rank = 64ull * 1024 * 1024;
  config.ior_hard_bytes_per_rank = 4ull * 1024 * 1024;
  config.mdtest_easy_files_per_rank = 100;
  config.mdtest_hard_files_per_rank = 50;
  const Io500Config parsed = parse_io500_command(config.render_command());
  EXPECT_EQ(parsed.num_tasks, 40u);
  EXPECT_EQ(parsed.base_dir, "/scratch/x");
  EXPECT_EQ(parsed.ior_easy_bytes_per_rank, 64ull * 1024 * 1024);
  EXPECT_EQ(parsed.ior_hard_bytes_per_rank, 4ull * 1024 * 1024);
  EXPECT_EQ(parsed.mdtest_easy_files_per_rank, 100u);
  EXPECT_EQ(parsed.mdtest_hard_files_per_rank, 50u);
}

TEST(Io500Config, Validation) {
  Io500Config config;
  config.num_tasks = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config.num_tasks = 4;
  config.mdtest_easy_files_per_rank = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  EXPECT_THROW(parse_io500_command("io500 --nope 3"), ParseError);
}

}  // namespace
}  // namespace iokc::gen
