#include <gtest/gtest.h>

#include <memory>

#include "src/fs/pfs.hpp"
#include "src/generators/haccio.hpp"
#include "src/generators/ior.hpp"
#include "src/generators/mdtest.hpp"
#include "src/iostack/client.hpp"
#include "src/sim/cluster.hpp"
#include "src/util/error.hpp"

namespace iokc::gen {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() {
    sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 4;
    cluster_ = std::make_unique<sim::Cluster>(queue_, cluster_spec, 5);
    pfs_ = std::make_unique<fs::ParallelFileSystem>(
        *cluster_, fs::PfsSpec::fuchs_beegfs());
    client_ = std::make_unique<iostack::IoClient>(*pfs_,
                                                  iostack::IoApi::kPosix);
  }

  sim::EventQueue queue_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<fs::ParallelFileSystem> pfs_;
  std::unique_ptr<iostack::IoClient> client_;
};

TEST(MdtestConfig, CommandRoundTrip) {
  MdtestConfig config;
  config.files_per_rank = 250;
  config.unique_dir_per_task = true;
  config.write_bytes = 3901;
  config.num_tasks = 16;
  config.iterations = 2;
  config.base_dir = "/scratch/mdt";
  const MdtestConfig parsed = parse_mdtest_command(config.render_command());
  EXPECT_EQ(parsed.files_per_rank, 250u);
  EXPECT_TRUE(parsed.unique_dir_per_task);
  EXPECT_EQ(parsed.write_bytes, 3901u);
  EXPECT_EQ(parsed.num_tasks, 16u);
  EXPECT_EQ(parsed.iterations, 2);
  EXPECT_EQ(parsed.base_dir, "/scratch/mdt");
}

TEST(MdtestConfig, Validation) {
  MdtestConfig config;
  config.files_per_rank = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config.files_per_rank = 10;
  config.do_read = true;
  config.write_bytes = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  EXPECT_THROW(parse_mdtest_command("mdtest --bogus"), ParseError);
}

TEST_F(EngineTest, MdtestProducesPositiveRates) {
  MdtestConfig config;
  config.files_per_rank = 50;
  config.num_tasks = 8;
  config.unique_dir_per_task = true;
  config.base_dir = "/scratch/mdt_rates";
  MdtestBenchmark bench(*client_, config, block_rank_mapping({0, 1}, 8));
  const MdtestRunResult result = bench.run();
  ASSERT_EQ(result.iterations.size(), 1u);
  EXPECT_GT(result.iterations[0].creation_rate, 0.0);
  EXPECT_GT(result.iterations[0].stat_rate, 0.0);
  EXPECT_GT(result.iterations[0].removal_rate, 0.0);
  // Stat is cheaper than create on any metadata service.
  EXPECT_GT(result.iterations[0].stat_rate,
            result.iterations[0].creation_rate);
}

TEST_F(EngineTest, SharedDirectoryIsSlowerThanUniqueDirs) {
  // Unique dirs spread create load over both MDSes; one shared directory
  // serializes on a single MDS (the mdtest-easy vs mdtest-hard contrast).
  MdtestConfig easy;
  easy.files_per_rank = 60;
  easy.num_tasks = 8;
  easy.unique_dir_per_task = true;
  easy.base_dir = "/scratch/easy";
  MdtestBenchmark easy_bench(*client_, easy, block_rank_mapping({0, 1}, 8));
  const double easy_rate = easy_bench.run().iterations[0].creation_rate;

  MdtestConfig hard = easy;
  hard.unique_dir_per_task = false;
  hard.base_dir = "/scratch/hard";
  hard.write_bytes = 3901;
  MdtestBenchmark hard_bench(*client_, hard, block_rank_mapping({0, 1}, 8));
  const double hard_rate = hard_bench.run().iterations[0].creation_rate;

  EXPECT_GT(easy_rate, hard_rate * 1.3);
}

TEST_F(EngineTest, MdtestFilesRemovedAfterRemovePhase) {
  MdtestConfig config;
  config.files_per_rank = 10;
  config.num_tasks = 4;
  config.base_dir = "/scratch/mdt_rm";
  MdtestBenchmark bench(*client_, config, block_rank_mapping({0}, 4));
  bench.run();
  EXPECT_FALSE(pfs_->exists(bench.file_path(0, 0)));
}

TEST_F(EngineTest, MdtestOutputShape) {
  MdtestConfig config;
  config.files_per_rank = 10;
  config.num_tasks = 4;
  config.base_dir = "/scratch/mdt_out";
  MdtestBenchmark bench(*client_, config, block_rank_mapping({0, 1}, 4));
  const std::string text = bench.run().render_output();
  EXPECT_NE(text.find("mdtest-3.4.0+sim was launched with 4 total task(s)"),
            std::string::npos);
  EXPECT_NE(text.find("Command line used: mdtest"), std::string::npos);
  EXPECT_NE(text.find("SUMMARY rate:"), std::string::npos);
  EXPECT_NE(text.find("File creation"), std::string::npos);
  EXPECT_NE(text.find("File removal"), std::string::npos);
}

TEST(HaccConfig, CommandRoundTrip) {
  HaccIoConfig config;
  config.particles_per_rank = 500000;
  config.api = iostack::IoApi::kMpiio;
  config.file_mode = iostack::FileMode::kFilePerGroup;
  config.group_size = 4;
  config.num_tasks = 16;
  config.iterations = 2;
  config.base_path = "/scratch/hacc/part";
  const HaccIoConfig parsed = parse_haccio_command(config.render_command());
  EXPECT_EQ(parsed.particles_per_rank, 500000u);
  EXPECT_EQ(parsed.api, iostack::IoApi::kMpiio);
  EXPECT_EQ(parsed.file_mode, iostack::FileMode::kFilePerGroup);
  EXPECT_EQ(parsed.group_size, 4u);
  EXPECT_EQ(parsed.num_tasks, 16u);
}

TEST(HaccConfig, RejectsHdf5AndBadValues) {
  HaccIoConfig config;
  config.api = iostack::IoApi::kHdf5;
  EXPECT_THROW(config.validate(), ConfigError);
  config.api = iostack::IoApi::kPosix;
  config.particles_per_rank = 0;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST_F(EngineTest, HaccIoRunsAllFileModes) {
  for (const auto mode :
       {iostack::FileMode::kSharedFile, iostack::FileMode::kFilePerProcess,
        iostack::FileMode::kFilePerGroup}) {
    HaccIoConfig config;
    config.particles_per_rank = 100000;
    config.num_tasks = 8;
    config.file_mode = mode;
    config.group_size = 4;
    config.base_path =
        "/scratch/hacc" + std::to_string(static_cast<int>(mode));
    HaccIoBenchmark bench(*client_, config, block_rank_mapping({0, 1}, 8));
    const HaccIoRunResult result = bench.run();
    ASSERT_EQ(result.iterations.size(), 1u);
    EXPECT_GT(result.iterations[0].write_bw_mib, 0.0)
        << iostack::to_string(mode);
    EXPECT_GT(result.iterations[0].read_bw_mib, 0.0);
  }
}

TEST_F(EngineTest, HaccIoBytesPerRankUsesParticleSize) {
  HaccIoConfig config;
  config.particles_per_rank = 1000;
  EXPECT_EQ(config.bytes_per_rank(), 38000u);
}

TEST_F(EngineTest, HaccIoOutputShape) {
  HaccIoConfig config;
  config.particles_per_rank = 50000;
  config.num_tasks = 4;
  config.base_path = "/scratch/hacc_out";
  HaccIoBenchmark bench(*client_, config, block_rank_mapping({0}, 4));
  const std::string text = bench.run().render_output();
  EXPECT_NE(text.find("HACC-IO+sim"), std::string::npos);
  EXPECT_NE(text.find("Command line        : hacc_io"), std::string::npos);
  EXPECT_NE(text.find("iter  write(MiB/s)"), std::string::npos);
}

TEST_F(EngineTest, HaccIoCleansUpFiles) {
  HaccIoConfig config;
  config.particles_per_rank = 10000;
  config.num_tasks = 4;
  config.file_mode = iostack::FileMode::kFilePerProcess;
  config.base_path = "/scratch/hacc_clean";
  HaccIoBenchmark bench(*client_, config, block_rank_mapping({0}, 4));
  bench.run();
  EXPECT_FALSE(pfs_->exists("/scratch/hacc_clean.0"));
}

}  // namespace
}  // namespace iokc::gen
