// Property-style sweep over the IOR pattern space: for every combination of
// API, transfer size, and file layout, a run must complete, report positive
// self-consistent numbers, and be bit-reproducible under the same seed.
#include <gtest/gtest.h>

#include <tuple>

#include "src/fs/pfs.hpp"
#include "src/generators/ior.hpp"
#include "src/iostack/client.hpp"
#include "src/sim/cluster.hpp"

namespace iokc::gen {
namespace {

using PatternParam = std::tuple<const char* /*api*/, const char* /*transfer*/,
                                bool /*file_per_process*/>;

class IorPatternSweep : public ::testing::TestWithParam<PatternParam> {
 protected:
  static IorRunResult run_pattern(const PatternParam& param,
                                  std::uint64_t seed) {
    const auto& [api, transfer, fpp] = param;
    sim::EventQueue queue;
    sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 2;
    sim::Cluster cluster(queue, cluster_spec, seed);
    fs::ParallelFileSystem pfs(cluster, fs::PfsSpec::fuchs_beegfs());
    std::string command = std::string("ior -a ") + api + " -b 1m -t " +
                          transfer + " -s 2 -C -i 2 -N 8 -o /scratch/prop -k";
    if (fpp) {
      command += " -F";
    }
    const IorConfig config = parse_ior_command(command);
    iostack::IoClient client(pfs, config.api);
    IorBenchmark bench(client, config, block_rank_mapping({0, 1}, 8));
    return bench.run();
  }
};

TEST_P(IorPatternSweep, ProducesSelfConsistentResults) {
  const IorRunResult result = run_pattern(GetParam(), 7);
  ASSERT_EQ(result.ops.size(), 4u);  // 2 iterations x write+read
  for (const IorOpResult& op : result.ops) {
    EXPECT_GT(op.bw_mib, 0.0) << op.access;
    EXPECT_GT(op.iops, 0.0);
    EXPECT_GT(op.latency_sec, 0.0);
    EXPECT_GE(op.total_sec, op.wrrd_sec);
    EXPECT_GE(op.total_sec, op.open_sec + op.close_sec);
    // Bandwidth and phase time are consistent with the data volume:
    // 8 ranks x 2 MiB = 16 MiB per phase.
    EXPECT_NEAR(op.bw_mib * op.total_sec, 16.0, 0.5) << op.access;
  }
}

TEST_P(IorPatternSweep, DeterministicUnderSeedReuse) {
  const IorRunResult a = run_pattern(GetParam(), 13);
  const IorRunResult b = run_pattern(GetParam(), 13);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ops[i].bw_mib, b.ops[i].bw_mib);
    EXPECT_DOUBLE_EQ(a.ops[i].latency_sec, b.ops[i].latency_sec);
  }
}

TEST_P(IorPatternSweep, OutputTextRoundTripsThroughTheReport) {
  const IorRunResult result = run_pattern(GetParam(), 21);
  const std::string text = result.render_output();
  // Every pattern's report keeps the fields the extractor needs.
  EXPECT_NE(text.find("Command line"), std::string::npos);
  EXPECT_NE(text.find("Results:"), std::string::npos);
  EXPECT_NE(text.find("Summary of all tests:"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, IorPatternSweep,
    ::testing::Combine(::testing::Values("posix", "mpiio", "hdf5"),
                       ::testing::Values("64k", "256k", "1m"),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<PatternParam>& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param) + "_" +
             (std::get<2>(info.param) ? "fpp" : "shared");
    });

}  // namespace
}  // namespace iokc::gen
