#include "src/db/planner.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "src/db/database.hpp"
#include "src/util/error.hpp"

namespace iokc::db {
namespace {

// A performances-shaped table with the same secondary indexes the knowledge
// repository bootstraps: an ordered composite over (benchmark, num_nodes)
// and a hash index over command.
Database make_indexed(std::size_t rows, std::uint32_t seed) {
  Database db;
  db.execute(
      "CREATE TABLE performances (id INTEGER PRIMARY KEY, command TEXT NOT "
      "NULL, benchmark TEXT, num_nodes INTEGER, bw REAL)");
  db.execute(
      "CREATE INDEX idx_perf_bench_nodes ON performances "
      "(benchmark, num_nodes)");
  db.execute(
      "CREATE INDEX idx_perf_command ON performances (command) USING HASH");
  const char* benchmarks[] = {"IOR", "IO500", "mdtest", "fio"};
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> bench(0, 3);
  std::uniform_int_distribution<int> nodes(1, 16);
  std::uniform_int_distribution<int> cmd(0, 9);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::string benchmark = benchmarks[bench(rng)];
    const int node_count = nodes(rng);
    db.execute("INSERT INTO performances (command, benchmark, num_nodes, bw) "
               "VALUES ('ior -v " +
               std::to_string(cmd(rng)) + "', '" + benchmark + "', " +
               std::to_string(node_count) + ", " +
               std::to_string(100.0 * node_count) + ")");
  }
  return db;
}

std::string access_of(Database& db, const std::string& statement) {
  const ResultSet plan = db.execute("EXPLAIN " + statement);
  EXPECT_FALSE(plan.empty());
  return plan.at(0, "access").as_text();
}

TEST(Planner, ExplainShowsIndexPlansForPointAndRange) {
  Database db = make_indexed(64, 1);
  // Point lookup on the composite's full key: the ordered index serves it.
  EXPECT_EQ(access_of(db,
                      "SELECT * FROM performances WHERE benchmark = 'IOR' "
                      "AND num_nodes = 4"),
            "ordered_eq");
  // Range over the second column with the first pinned.
  EXPECT_EQ(access_of(db,
                      "SELECT * FROM performances WHERE benchmark = 'IOR' "
                      "AND num_nodes >= 4 AND num_nodes <= 8"),
            "ordered_range");
  // Exact command: the hash index wins the point lookup.
  EXPECT_EQ(access_of(db,
                      "SELECT * FROM performances WHERE command = 'ior -v 3'"),
            "hash_eq");
  // No index covers bw: scan fallback.
  EXPECT_EQ(access_of(db, "SELECT * FROM performances WHERE bw > 500"),
            "scan");
}

TEST(Planner, ExplainReportsIndexNameKeyAndEstimates) {
  Database db = make_indexed(64, 2);
  const ResultSet plan = db.execute(
      "EXPLAIN SELECT * FROM performances WHERE benchmark = 'IOR' AND "
      "num_nodes = 4");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.at(0, "table").as_text(), "performances");
  EXPECT_EQ(plan.at(0, "index").as_text(), "idx_perf_bench_nodes");
  EXPECT_NE(plan.at(0, "key").as_text().find("benchmark = 'IOR'"),
            std::string::npos);
  EXPECT_LT(plan.at(0, "cost").as_integer(), 64);
}

TEST(Planner, ExplainCoversUpdateAndDelete) {
  Database db = make_indexed(64, 3);
  EXPECT_EQ(access_of(db,
                      "UPDATE performances SET bw = 0 WHERE benchmark = "
                      "'IOR' AND num_nodes = 4"),
            "ordered_eq");
  EXPECT_EQ(access_of(db, "DELETE FROM performances WHERE command = 'x'"),
            "hash_eq");
  // EXPLAIN never executes the inner statement.
  const ResultSet before = db.execute("SELECT * FROM performances");
  db.execute("EXPLAIN DELETE FROM performances WHERE num_nodes >= 0");
  const ResultSet after = db.execute("SELECT * FROM performances");
  EXPECT_EQ(before.render_csv(), after.render_csv());
  EXPECT_THROW(db.execute("EXPLAIN CREATE TABLE t (id INTEGER PRIMARY KEY)"),
               DbError);
}

// The core property: for every query shape, the indexed plan returns
// byte-identical results to the scan-only plan, across randomized workloads
// and after interleaved mutations.
TEST(Planner, IndexedResultsMatchScanResultsOnRandomizedWorkloads) {
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    Database db = make_indexed(200, seed);
    std::mt19937 rng(seed * 977);
    std::uniform_int_distribution<int> nodes(0, 18);
    std::uniform_int_distribution<int> pick(0, 3);
    const char* benchmarks[] = {"IOR", "IO500", "mdtest", "none"};
    for (int round = 0; round < 40; ++round) {
      // Mutate a slice so the indexes see churn, not just bulk load.
      if (round % 7 == 3) {
        db.execute("DELETE FROM performances WHERE num_nodes = " +
                   std::to_string(nodes(rng)));
      }
      if (round % 5 == 2) {
        db.execute("UPDATE performances SET num_nodes = " +
                   std::to_string(nodes(rng)) + " WHERE num_nodes = " +
                   std::to_string(nodes(rng)));
      }
      const std::string benchmark = benchmarks[pick(rng)];
      const int lo = nodes(rng);
      const std::vector<std::string> queries = {
          "SELECT * FROM performances WHERE benchmark = '" + benchmark +
              "' AND num_nodes = " + std::to_string(lo),
          "SELECT * FROM performances WHERE benchmark = '" + benchmark +
              "' AND num_nodes >= " + std::to_string(lo) +
              " AND num_nodes <= " + std::to_string(lo + 4),
          "SELECT * FROM performances WHERE command = 'ior -v " +
              std::to_string(pick(rng)) + "'",
          "SELECT * FROM performances WHERE benchmark = '" + benchmark +
              "' AND bw > " + std::to_string(lo * 100),
      };
      for (const std::string& query : queries) {
        db.set_index_planning(true);
        const std::string indexed = db.execute(query).render_csv();
        db.set_index_planning(false);
        const std::string scanned = db.execute(query).render_csv();
        db.set_index_planning(true);
        EXPECT_EQ(indexed, scanned) << "seed " << seed << ": " << query;
      }
    }
  }
}

TEST(Planner, JoinResultsMatchWithPlanningOnAndOff) {
  Database db = make_indexed(48, 7);
  db.execute(
      "CREATE TABLE summaries (id INTEGER PRIMARY KEY, performance_id "
      "INTEGER NOT NULL REFERENCES performances(id), op TEXT)");
  for (int i = 1; i <= 48; ++i) {
    db.execute("INSERT INTO summaries (performance_id, op) VALUES (" +
               std::to_string(i) + ", 'write'), (" + std::to_string(i) +
               ", 'read')");
  }
  const std::string query =
      "SELECT * FROM performances JOIN summaries ON "
      "performances.id = summaries.performance_id WHERE benchmark = 'IOR'";
  db.set_index_planning(true);
  const std::string indexed = db.execute(query).render_csv();
  db.set_index_planning(false);
  const std::string scanned = db.execute(query).render_csv();
  EXPECT_EQ(indexed, scanned);
  EXPECT_FALSE(indexed.empty());
}

TEST(Planner, CreateIndexRollsBackCleanly) {
  Database db = make_indexed(32, 9);
  db.begin();
  db.execute(
      "CREATE INDEX idx_perf_bw ON performances (bw)");
  EXPECT_TRUE(db.require_table("performances").has_index_named("idx_perf_bw"));
  db.rollback();
  EXPECT_FALSE(
      db.require_table("performances").has_index_named("idx_perf_bw"));
  // The table still answers queries consistently after the undo.
  db.set_index_planning(true);
  const std::string indexed =
      db.execute("SELECT * FROM performances WHERE benchmark = 'IOR'")
          .render_csv();
  db.set_index_planning(false);
  const std::string scanned =
      db.execute("SELECT * FROM performances WHERE benchmark = 'IOR'")
          .render_csv();
  EXPECT_EQ(indexed, scanned);
}

TEST(Planner, CreateIndexIsDurableAcrossDumpReload) {
  Database db = make_indexed(16, 11);
  const std::string dump = db.dump();
  EXPECT_NE(dump.find("CREATE INDEX idx_perf_bench_nodes"), std::string::npos);
  EXPECT_NE(dump.find("USING HASH"), std::string::npos);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("iokc_planner_dump_" + std::to_string(::getpid()) + ".db");
  db.save(path.string());
  Database loaded = Database::load(path.string());
  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + "-journal");
  EXPECT_TRUE(loaded.require_table("performances")
                  .has_index_named("idx_perf_bench_nodes"));
  EXPECT_EQ(loaded.dump(), dump);
}

TEST(Planner, PreparedStatementsBindParameters) {
  Database db = make_indexed(64, 13);
  StatementCache cache(8);
  const auto statement = cache.get(
      "SELECT * FROM performances WHERE benchmark = ? AND num_nodes = ?");
  const ResultSet via_params =
      db.execute_prepared(*statement, {Value("IOR"), Value(4)});
  const ResultSet direct = db.execute(
      "SELECT * FROM performances WHERE benchmark = 'IOR' AND num_nodes = 4");
  EXPECT_EQ(via_params.render_csv(), direct.render_csv());
  // Too few parameters and write statements are rejected.
  EXPECT_THROW(db.execute_prepared(*statement, {Value("IOR")}), DbError);
  const auto write = cache.get("DELETE FROM performances WHERE num_nodes = ?");
  EXPECT_THROW(db.execute_prepared(*write, {Value(1)}), DbError);
}

TEST(Planner, ParameterizedQueriesUseIndexPlans) {
  Database db = make_indexed(64, 17);
  StatementCache cache(8);
  const auto statement = cache.get(
      "EXPLAIN SELECT * FROM performances WHERE benchmark = ? AND "
      "num_nodes = ?");
  const ResultSet plan =
      db.execute_prepared(*statement, {Value("IOR"), Value(4)});
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.at(0, "access").as_text(), "ordered_eq");
}

TEST(Planner, ChooseAccessFallsBackToScanWithoutUsableIndex) {
  Database db = make_indexed(32, 19);
  const Table& table = db.require_table("performances");
  const AccessPath path = choose_access(table, nullptr, {});
  EXPECT_EQ(path.kind, AccessPath::Kind::kScan);
  const std::vector<std::size_t> rows = execute_access(table, path);
  EXPECT_EQ(rows.size(), table.rows().size());
}

}  // namespace
}  // namespace iokc::db
