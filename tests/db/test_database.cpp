#include "src/db/database.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>

#include "src/util/error.hpp"

namespace iokc::db {
namespace {

Database make_populated() {
  Database db;
  db.execute(
      "CREATE TABLE performances (id INTEGER PRIMARY KEY, command TEXT NOT "
      "NULL, tasks INTEGER)");
  db.execute(
      "CREATE TABLE summaries (id INTEGER PRIMARY KEY, performance_id "
      "INTEGER NOT NULL REFERENCES performances(id), op TEXT, bw REAL)");
  db.execute("INSERT INTO performances (command, tasks) VALUES ('ior -a "
             "posix', 40), ('ior -a mpiio', 80)");
  db.execute("INSERT INTO summaries (performance_id, op, bw) VALUES "
             "(1, 'write', 2850.0), (1, 'read', 3000.0), (2, 'write', 1500.0)");
  return db;
}

TEST(Database, AutoIncrementPrimaryKey) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
  db.execute("INSERT INTO t (x) VALUES ('a')");
  EXPECT_EQ(db.last_insert_rowid(), 1);
  db.execute("INSERT INTO t (x) VALUES ('b')");
  EXPECT_EQ(db.last_insert_rowid(), 2);
  // Explicit key bumps the counter.
  db.execute("INSERT INTO t (id, x) VALUES (10, 'c')");
  db.execute("INSERT INTO t (x) VALUES ('d')");
  EXPECT_EQ(db.last_insert_rowid(), 11);
}

TEST(Database, DuplicatePrimaryKeyRejected) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)");
  db.execute("INSERT INTO t (id) VALUES (1)");
  EXPECT_THROW(db.execute("INSERT INTO t (id) VALUES (1)"), DbError);
}

TEST(Database, NotNullEnforced) {
  Database db;
  db.execute("CREATE TABLE t (a TEXT NOT NULL)");
  EXPECT_THROW(db.execute("INSERT INTO t (a) VALUES (NULL)"), DbError);
  EXPECT_THROW(db.execute("INSERT INTO t VALUES (NULL)"), DbError);
}

TEST(Database, TypeCheckingOnInsert) {
  Database db;
  db.execute("CREATE TABLE t (a INTEGER, b REAL, c TEXT)");
  db.execute("INSERT INTO t VALUES (1, 2, 'x')");  // int->real coercion ok
  EXPECT_THROW(db.execute("INSERT INTO t VALUES ('x', 2.0, 'x')"), DbError);
  EXPECT_THROW(db.execute("INSERT INTO t VALUES (1.5, 2.0, 'x')"), DbError);
  EXPECT_THROW(db.execute("INSERT INTO t VALUES (1, 2.0, 3)"), DbError);
}

TEST(Database, ForeignKeyEnforcedOnInsert) {
  Database db = make_populated();
  EXPECT_THROW(db.execute("INSERT INTO summaries (performance_id, op, bw) "
                          "VALUES (99, 'write', 1.0)"),
               DbError);
  // The failed insert must not leave a phantom row behind.
  EXPECT_EQ(db.execute("SELECT * FROM summaries").size(), 3u);
}

TEST(Database, DeleteRestrictedByReferences) {
  Database db = make_populated();
  EXPECT_THROW(db.execute("DELETE FROM performances WHERE id = 1"), DbError);
  // Remove children first, then the parent delete succeeds.
  db.execute("DELETE FROM summaries WHERE performance_id = 1");
  db.execute("DELETE FROM performances WHERE id = 1");
  EXPECT_EQ(db.execute("SELECT * FROM performances").size(), 1u);
}

TEST(Database, DropTableRestrictedByReferences) {
  Database db = make_populated();
  EXPECT_THROW(db.execute("DROP TABLE performances"), DbError);
  db.execute("DROP TABLE summaries");
  db.execute("DROP TABLE performances");
  EXPECT_FALSE(db.has_table("performances"));
  EXPECT_THROW(db.execute("DROP TABLE nope"), DbError);
  db.execute("DROP TABLE IF EXISTS nope");
}

TEST(Database, SelectWhereAndProjection) {
  Database db = make_populated();
  const ResultSet rows = db.execute(
      "SELECT command FROM performances WHERE tasks >= 80");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.at(0, "command").as_text(), "ior -a mpiio");
}

TEST(Database, SelectComplexPredicate) {
  Database db = make_populated();
  const ResultSet rows = db.execute(
      "SELECT * FROM summaries WHERE (op = 'write' AND bw > 2000) OR op = "
      "'read'");
  EXPECT_EQ(rows.size(), 2u);
}

TEST(Database, SelectOrderByAndLimit) {
  Database db = make_populated();
  const ResultSet rows =
      db.execute("SELECT op, bw FROM summaries ORDER BY bw DESC LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows.at(0, "bw").as_real(), 3000.0);
  EXPECT_DOUBLE_EQ(rows.at(1, "bw").as_real(), 2850.0);
}

TEST(Database, InnerJoin) {
  Database db = make_populated();
  const ResultSet rows = db.execute(
      "SELECT performances.command, summaries.bw FROM performances "
      "INNER JOIN summaries ON performances.id = summaries.performance_id "
      "WHERE summaries.op = 'write' ORDER BY summaries.bw");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.at(0, "performances.command").as_text(), "ior -a mpiio");
  EXPECT_DOUBLE_EQ(rows.at(1, "summaries.bw").as_real(), 2850.0);
}

TEST(Database, JoinStarProjectionUsesQualifiedNames) {
  Database db = make_populated();
  const ResultSet rows = db.execute(
      "SELECT * FROM performances INNER JOIN summaries ON "
      "performances.id = summaries.performance_id");
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.columns.front(), "performances.id");
  EXPECT_EQ(rows.columns.back(), "summaries.bw");
}

TEST(Database, AmbiguousColumnDetected) {
  Database db = make_populated();
  EXPECT_THROW(db.execute("SELECT id FROM performances INNER JOIN summaries "
                          "ON performances.id = summaries.performance_id"),
               DbError);
}

TEST(Database, Update) {
  Database db = make_populated();
  db.execute("UPDATE summaries SET bw = 9999.0 WHERE op = 'write'");
  const ResultSet rows =
      db.execute("SELECT bw FROM summaries WHERE op = 'write'");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_DOUBLE_EQ(rows.at(r, "bw").as_real(), 9999.0);
  }
}

TEST(Database, UpdatePrimaryKeyCollisionRejected) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)");
  db.execute("INSERT INTO t VALUES (1), (2)");
  EXPECT_THROW(db.execute("UPDATE t SET id = 1 WHERE id = 2"), DbError);
  db.execute("UPDATE t SET id = 3 WHERE id = 2");  // moving to a free key ok
}

TEST(Database, IndexLookupMatchesScan) {
  Database db = make_populated();
  db.execute("CREATE INDEX idx_op ON summaries (op)");
  const ResultSet indexed =
      db.execute("SELECT * FROM summaries WHERE op = 'write'");
  EXPECT_EQ(indexed.size(), 2u);
  // Equality through the index composes with further predicates.
  const ResultSet filtered = db.execute(
      "SELECT * FROM summaries WHERE op = 'write' AND bw > 2000.0");
  EXPECT_EQ(filtered.size(), 1u);
}

TEST(Database, DumpLoadRoundTrip) {
  Database db = make_populated();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("iokc_db_test_" + std::to_string(::getpid()) + ".sql");
  db.save(path.string());

  Database loaded = Database::load(path.string());
  EXPECT_TRUE(loaded.has_table("performances"));
  EXPECT_TRUE(loaded.has_table("summaries"));
  const ResultSet rows = loaded.execute(
      "SELECT * FROM summaries ORDER BY id");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows.at(2, "bw").as_real(), 1500.0);
  // Auto-increment continues after the highest loaded key.
  loaded.execute(
      "INSERT INTO performances (command, tasks) VALUES ('x', 1)");
  EXPECT_EQ(loaded.last_insert_rowid(), 3);
  std::filesystem::remove(path);
}

TEST(Database, OpenMissingFileGivesEmptyDatabase) {
  Database db = Database::open("/tmp/iokc_definitely_missing.sql");
  EXPECT_TRUE(db.table_names().empty());
}

TEST(Database, LoadRejectsMissingFile) {
  EXPECT_THROW(Database::load("/tmp/iokc_definitely_missing.sql"), IoError);
}

TEST(Database, ResultSetRendering) {
  Database db = make_populated();
  const ResultSet rows = db.execute("SELECT op, bw FROM summaries");
  const std::string table = rows.render_table();
  EXPECT_NE(table.find("| op"), std::string::npos);
  EXPECT_NE(table.find("write"), std::string::npos);
  const std::string csv = rows.render_csv();
  EXPECT_NE(csv.find("op,bw"), std::string::npos);
  EXPECT_NE(csv.find("write,2850"), std::string::npos);
}

TEST(Database, CreateTableTwiceHonoursIfNotExists) {
  Database db;
  db.execute("CREATE TABLE t (a INTEGER)");
  EXPECT_THROW(db.execute("CREATE TABLE t (a INTEGER)"), DbError);
  db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)");
}

TEST(Database, ForeignKeyToMissingTableRejected) {
  Database db;
  EXPECT_THROW(
      db.execute("CREATE TABLE t (a INTEGER REFERENCES missing(id))"),
      DbError);
}

TEST(Database, UnknownEntitiesThrow) {
  Database db = make_populated();
  EXPECT_THROW(db.execute("SELECT * FROM nope"), DbError);
  EXPECT_THROW(db.execute("SELECT nope FROM performances"), DbError);
  EXPECT_THROW(db.execute("INSERT INTO performances (bogus) VALUES (1)"),
               DbError);
}

TEST(Database, LargeScatteredDeleteCompactsCorrectly) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  Table& table = db.require_table("t");
  constexpr int kRows = 20000;
  for (int i = 0; i < kRows; ++i) {
    table.insert({"v"}, {Value(i)});
  }
  // Delete every third row — the worst case for the old erase-per-index
  // loop, which re-shifted the whole tail once per removal.
  std::vector<std::size_t> victims;
  for (std::size_t r = 0; r < static_cast<std::size_t>(kRows); r += 3) {
    victims.push_back(r);
  }
  table.remove_rows(victims);
  const ResultSet rows = db.execute("SELECT v FROM t ORDER BY v");
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(kRows - (kRows + 2) / 3));
  int expected = 1;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(rows.at(r, "v").as_integer(), expected);
    expected += (expected % 3 == 2) ? 2 : 1;
  }
  // Indexes were rebuilt consistently: keyed lookups still work. Row v=0
  // carried id=1 and was removed; row v=1 carried id=2 and survives.
  EXPECT_EQ(db.execute("SELECT * FROM t WHERE id = 1").size(), 0u);
  EXPECT_EQ(db.execute("SELECT * FROM t WHERE id = 2").size(), 1u);
}

TEST(Database, RemoveRowsValidatesIndices) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)");
  Table& table = db.require_table("t");
  for (int i = 0; i < 4; ++i) {
    table.insert({}, {Value()});
  }
  EXPECT_THROW(table.remove_rows({0, 0}), DbError);   // duplicate
  EXPECT_THROW(table.remove_rows({2, 1}), DbError);   // unsorted
  EXPECT_THROW(table.remove_rows({99}), DbError);     // out of range
  EXPECT_EQ(table.row_count(), 4u);  // failed calls removed nothing
  table.remove_rows({0, 3});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Database, NonFiniteRealRejectedAtInsert) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)");
  // Division has no NaN path in this SQL subset, so inject via the Table API
  // the way a buggy caller would.
  Table& table = db.require_table("t");
  EXPECT_THROW(table.insert({"v"}, {Value(std::nan(""))}), DbError);
  EXPECT_THROW(
      table.insert({"v"}, {Value(std::numeric_limits<double>::infinity())}),
      DbError);
  // Nothing half-inserted.
  EXPECT_EQ(db.execute("SELECT * FROM t").size(), 0u);
}

}  // namespace
}  // namespace iokc::db
