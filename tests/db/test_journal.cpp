// Write-ahead journal and crash-recovery tests: record framing, torn-tail
// and corruption handling, open()-time replay, checkpointing, the journal
// epoch that prevents double-apply, and atomic save().
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/db/database.hpp"
#include "src/db/journal.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"

namespace iokc::db {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  JournalTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("iokc_journal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    db_path_ = (dir_ / "k.db").string();
  }
  ~JournalTest() override {
    util::set_fault_hook(nullptr);
    std::filesystem::remove_all(dir_);
  }

  std::string journal_path() const { return journal_path_for(db_path_); }

  std::string read_file(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void append_raw(const std::string& path, const std::string& text) const {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << text;
  }

  std::filesystem::path dir_;
  std::string db_path_;
};

TEST_F(JournalTest, AppendAndReadRoundTrip) {
  {
    Journal journal(journal_path(), 0);
    journal.append({"CREATE TABLE t (id INTEGER PRIMARY KEY)",
                    "INSERT INTO t (id) VALUES (1)"});
    journal.append({"INSERT INTO t (id) VALUES (2)"});
    EXPECT_EQ(journal.last_seq(), 2u);
  }
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 1u);
  ASSERT_EQ(records[0].statements.size(), 2u);
  EXPECT_EQ(records[0].statements[1], "INSERT INTO t (id) VALUES (1)");
  EXPECT_EQ(records[1].seq, 2u);
  ASSERT_EQ(records[1].statements.size(), 1u);
}

TEST_F(JournalTest, MissingFileYieldsNoRecords) {
  EXPECT_TRUE(Journal::read_records(journal_path()).empty());
}

TEST_F(JournalTest, StatementsWithSemicolonsInStringsSurvive) {
  {
    Journal journal(journal_path(), 0);
    journal.append({"INSERT INTO t (x) VALUES ('a; b; c')"});
  }
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].statements.size(), 1u);
  EXPECT_EQ(records[0].statements[0], "INSERT INTO t (x) VALUES ('a; b; c')");
}

TEST_F(JournalTest, TornTailIsDiscarded) {
  {
    Journal journal(journal_path(), 0);
    journal.append({"INSERT INTO t (id) VALUES (1)"});
  }
  // A crash mid-append leaves a header + partial payload with no end marker.
  append_raw(journal_path(), "#txn 2 999 0123456789abcdef\nINSERT INTO t");
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
}

TEST_F(JournalTest, CorruptPayloadStopsReplayAtLastGoodRecord) {
  {
    Journal journal(journal_path(), 0);
    journal.append({"INSERT INTO t (id) VALUES (1)"});
    journal.append({"INSERT INTO t (id) VALUES (2)"});
  }
  // Flip one payload byte of the second record: its checksum no longer
  // matches, so replay must stop after record 1.
  std::string text = read_file(journal_path());
  const std::size_t pos = text.rfind("VALUES (2)");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 8] = '3';
  std::ofstream out(journal_path(), std::ios::binary | std::ios::trunc);
  out << text;
  out.close();
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
}

TEST_F(JournalTest, CheckpointTruncatesToHeader) {
  Journal journal(journal_path(), 0);
  journal.append({"INSERT INTO t (id) VALUES (1)"});
  journal.checkpoint();
  EXPECT_TRUE(Journal::read_records(journal_path()).empty());
  EXPECT_EQ(read_file(journal_path()), "#iokc-journal v1\n");
  // The sequence counter keeps counting across checkpoints.
  journal.append({"INSERT INTO t (id) VALUES (2)"});
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 2u);
}

TEST_F(JournalTest, CommittedWritesSurviveWithoutSave) {
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.execute("INSERT INTO t (x) VALUES ('durable')");
    // No save(): the process "crashes" here. The dump file never existed.
  }
  EXPECT_FALSE(std::filesystem::exists(db_path_));
  Database recovered = Database::open(db_path_);
  const ResultSet rows = recovered.execute("SELECT x FROM t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.at(0, "x").as_text(), "durable");
}

TEST_F(JournalTest, RolledBackTransactionIsNotJournaled) {
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.begin();
    db.execute("INSERT INTO t (x) VALUES ('discarded')");
    db.rollback();
    db.execute("INSERT INTO t (x) VALUES ('kept')");
  }
  Database recovered = Database::open(db_path_);
  const ResultSet rows = recovered.execute("SELECT x FROM t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.at(0, "x").as_text(), "kept");
}

TEST_F(JournalTest, SaveCheckpointsAndReopenMatches) {
  std::string reference;
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.execute("INSERT INTO t (x) VALUES ('a')");
    db.save(db_path_);
    reference = db.dump();
  }
  EXPECT_TRUE(Journal::read_records(journal_path()).empty());
  Database recovered = Database::open(db_path_);
  EXPECT_EQ(recovered.dump(), reference);
}

TEST_F(JournalTest, WritesAfterSaveAreReplayedOnTop) {
  std::string reference;
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.execute("INSERT INTO t (x) VALUES ('saved')");
    db.save(db_path_);
    db.execute("INSERT INTO t (x) VALUES ('journal-only')");
    reference = db.dump();
  }
  Database recovered = Database::open(db_path_);
  EXPECT_EQ(recovered.dump(), reference);
  EXPECT_EQ(recovered.execute("SELECT * FROM t").size(), 2u);
}

// Crash between the dump rename and the journal truncation: the dump already
// contains the journaled transactions AND the journal still lists them. The
// epoch header must prevent them from being applied twice.
TEST_F(JournalTest, EpochPreventsDoubleApplyAfterCheckpointCrash) {
  std::string reference;
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.execute("INSERT INTO t (x) VALUES ('once')");
    reference = db.dump();
    util::set_fault_hook([](const char* site) {
      if (std::string_view(site) == "journal.checkpoint.pre") {
        throw IoError("injected crash before checkpoint");
      }
    });
    EXPECT_THROW(db.save(db_path_), IoError);
    util::set_fault_hook(nullptr);
  }
  // The dump was written; the journal was NOT truncated.
  EXPECT_TRUE(std::filesystem::exists(db_path_));
  EXPECT_FALSE(Journal::read_records(journal_path()).empty());
  Database recovered = Database::open(db_path_);
  EXPECT_EQ(recovered.dump(), reference);
  EXPECT_EQ(recovered.execute("SELECT * FROM t").size(), 1u);
}

// Regression for the truncate-in-place save(): a failure mid-write must
// leave the previous dump byte-identical, never truncated or torn.
TEST_F(JournalTest, InterruptedSaveLeavesPreviousDumpIntact) {
  Database db = Database::open(db_path_);
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
  db.execute("INSERT INTO t (x) VALUES ('first')");
  db.save(db_path_);
  const std::string saved = read_file(db_path_);

  db.execute("INSERT INTO t (x) VALUES ('second')");
  util::set_fault_hook([](const char* site) {
    if (std::string_view(site) == "fsio.replace.staged") {
      throw IoError("injected crash before rename");
    }
  });
  EXPECT_THROW(db.save(db_path_), IoError);
  util::set_fault_hook(nullptr);

  EXPECT_EQ(read_file(db_path_), saved);
  // The staged temp file must not linger.
  EXPECT_FALSE(std::filesystem::exists(db_path_ + ".tmp"));
  // And nothing was lost: recovery still sees both rows via the journal.
  db.detach_journal();
  Database recovered = Database::open(db_path_);
  EXPECT_EQ(recovered.execute("SELECT * FROM t").size(), 2u);
}

TEST_F(JournalTest, SaveToForeignPathDoesNotCheckpoint) {
  Database db = Database::open(db_path_);
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)");
  db.execute("INSERT INTO t (id) VALUES (1)");
  db.save((dir_ / "elsewhere.db").string());
  // Journal of the home path still holds the records.
  EXPECT_FALSE(Journal::read_records(journal_path()).empty());
}

}  // namespace
}  // namespace iokc::db
