// Write-ahead journal and crash-recovery tests: record framing, torn-tail
// and corruption handling, open()-time replay, checkpointing, the journal
// epoch that prevents double-apply, and atomic save().
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>

#include "src/db/database.hpp"
#include "src/db/journal.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"

namespace iokc::db {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  JournalTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("iokc_journal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    db_path_ = (dir_ / "k.db").string();
  }
  ~JournalTest() override {
    util::set_fault_hook(nullptr);
    std::filesystem::remove_all(dir_);
  }

  std::string journal_path() const { return journal_path_for(db_path_); }

  std::string read_file(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void append_raw(const std::string& path, const std::string& text) const {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << text;
  }

  std::filesystem::path dir_;
  std::string db_path_;
};

TEST_F(JournalTest, AppendAndReadRoundTrip) {
  {
    Journal journal(journal_path(), 0);
    journal.append({"CREATE TABLE t (id INTEGER PRIMARY KEY)",
                    "INSERT INTO t (id) VALUES (1)"});
    journal.append({"INSERT INTO t (id) VALUES (2)"});
    EXPECT_EQ(journal.last_seq(), 2u);
  }
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 1u);
  ASSERT_EQ(records[0].statements.size(), 2u);
  EXPECT_EQ(records[0].statements[1], "INSERT INTO t (id) VALUES (1)");
  EXPECT_EQ(records[1].seq, 2u);
  ASSERT_EQ(records[1].statements.size(), 1u);
}

TEST_F(JournalTest, MissingFileYieldsNoRecords) {
  EXPECT_TRUE(Journal::read_records(journal_path()).empty());
}

TEST_F(JournalTest, StatementsWithSemicolonsInStringsSurvive) {
  {
    Journal journal(journal_path(), 0);
    journal.append({"INSERT INTO t (x) VALUES ('a; b; c')"});
  }
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].statements.size(), 1u);
  EXPECT_EQ(records[0].statements[0], "INSERT INTO t (x) VALUES ('a; b; c')");
}

TEST_F(JournalTest, TornTailIsDiscarded) {
  {
    Journal journal(journal_path(), 0);
    journal.append({"INSERT INTO t (id) VALUES (1)"});
  }
  // A crash mid-append leaves a header + partial payload with no end marker.
  append_raw(journal_path(), "#txn 2 999 0123456789abcdef\nINSERT INTO t");
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
}

TEST_F(JournalTest, CorruptPayloadStopsReplayAtLastGoodRecord) {
  {
    Journal journal(journal_path(), 0);
    journal.append({"INSERT INTO t (id) VALUES (1)"});
    journal.append({"INSERT INTO t (id) VALUES (2)"});
  }
  // Flip one payload byte of the second record: its checksum no longer
  // matches, so replay must stop after record 1.
  std::string text = read_file(journal_path());
  const std::size_t pos = text.rfind("VALUES (2)");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 8] = '3';
  std::ofstream out(journal_path(), std::ios::binary | std::ios::trunc);
  out << text;
  out.close();
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
}

TEST_F(JournalTest, CheckpointTruncatesToHeader) {
  Journal journal(journal_path(), 0);
  journal.append({"INSERT INTO t (id) VALUES (1)"});
  journal.checkpoint();
  EXPECT_TRUE(Journal::read_records(journal_path()).empty());
  EXPECT_EQ(read_file(journal_path()), "#iokc-journal v1\n");
  // The sequence counter keeps counting across checkpoints.
  journal.append({"INSERT INTO t (id) VALUES (2)"});
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 2u);
}

TEST_F(JournalTest, CommittedWritesSurviveWithoutSave) {
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.execute("INSERT INTO t (x) VALUES ('durable')");
    // No save(): the process "crashes" here. The dump file never existed.
  }
  EXPECT_FALSE(std::filesystem::exists(db_path_));
  Database recovered = Database::open(db_path_);
  const ResultSet rows = recovered.execute("SELECT x FROM t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.at(0, "x").as_text(), "durable");
}

TEST_F(JournalTest, RolledBackTransactionIsNotJournaled) {
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.begin();
    db.execute("INSERT INTO t (x) VALUES ('discarded')");
    db.rollback();
    db.execute("INSERT INTO t (x) VALUES ('kept')");
  }
  Database recovered = Database::open(db_path_);
  const ResultSet rows = recovered.execute("SELECT x FROM t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.at(0, "x").as_text(), "kept");
}

TEST_F(JournalTest, SaveCheckpointsAndReopenMatches) {
  std::string reference;
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.execute("INSERT INTO t (x) VALUES ('a')");
    db.save(db_path_);
    reference = db.dump();
  }
  EXPECT_TRUE(Journal::read_records(journal_path()).empty());
  Database recovered = Database::open(db_path_);
  EXPECT_EQ(recovered.dump(), reference);
}

TEST_F(JournalTest, WritesAfterSaveAreReplayedOnTop) {
  std::string reference;
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.execute("INSERT INTO t (x) VALUES ('saved')");
    db.save(db_path_);
    db.execute("INSERT INTO t (x) VALUES ('journal-only')");
    reference = db.dump();
  }
  Database recovered = Database::open(db_path_);
  EXPECT_EQ(recovered.dump(), reference);
  EXPECT_EQ(recovered.execute("SELECT * FROM t").size(), 2u);
}

// Crash between the dump rename and the journal truncation: the dump already
// contains the journaled transactions AND the journal still lists them. The
// epoch header must prevent them from being applied twice.
TEST_F(JournalTest, EpochPreventsDoubleApplyAfterCheckpointCrash) {
  std::string reference;
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.execute("INSERT INTO t (x) VALUES ('once')");
    reference = db.dump();
    util::set_fault_hook([](const char* site) {
      if (std::string_view(site) == "journal.checkpoint.pre") {
        throw IoError("injected crash before checkpoint");
      }
    });
    EXPECT_THROW(db.save(db_path_), IoError);
    util::set_fault_hook(nullptr);
  }
  // The dump was written; the journal was NOT truncated.
  EXPECT_TRUE(std::filesystem::exists(db_path_));
  EXPECT_FALSE(Journal::read_records(journal_path()).empty());
  Database recovered = Database::open(db_path_);
  EXPECT_EQ(recovered.dump(), reference);
  EXPECT_EQ(recovered.execute("SELECT * FROM t").size(), 1u);
}

// Regression for the truncate-in-place save(): a failure mid-write must
// leave the previous dump byte-identical, never truncated or torn.
TEST_F(JournalTest, InterruptedSaveLeavesPreviousDumpIntact) {
  Database db = Database::open(db_path_);
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
  db.execute("INSERT INTO t (x) VALUES ('first')");
  db.save(db_path_);
  const std::string saved = read_file(db_path_);

  db.execute("INSERT INTO t (x) VALUES ('second')");
  util::set_fault_hook([](const char* site) {
    if (std::string_view(site) == "fsio.replace.staged") {
      throw IoError("injected crash before rename");
    }
  });
  EXPECT_THROW(db.save(db_path_), IoError);
  util::set_fault_hook(nullptr);

  EXPECT_EQ(read_file(db_path_), saved);
  // The staged temp file must not linger.
  EXPECT_FALSE(std::filesystem::exists(db_path_ + ".tmp"));
  // And nothing was lost: recovery still sees both rows via the journal.
  db.detach_journal();
  Database recovered = Database::open(db_path_);
  EXPECT_EQ(recovered.execute("SELECT * FROM t").size(), 2u);
}

// -- Group commit -----------------------------------------------------------

TEST_F(JournalTest, ConcurrentAppendsAreAllDurable) {
  constexpr int kThreads = 8;
  Journal journal(journal_path(), 0);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&journal, t] {
      journal.append(
          {"INSERT INTO t (id) VALUES (" + std::to_string(t) + ")"});
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(journal.last_seq(), static_cast<std::uint64_t>(kThreads));
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kThreads));
  // Every thread's transaction is on disk exactly once, in sequence order.
  std::set<std::string> statements;
  std::uint64_t previous = 0;
  for (const JournalRecord& record : records) {
    EXPECT_GT(record.seq, previous);
    previous = record.seq;
    ASSERT_EQ(record.statements.size(), 1u);
    statements.insert(record.statements[0]);
  }
  EXPECT_EQ(statements.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(JournalTest, OneWaitFlushesEverythingStagedBefore) {
  Journal journal(journal_path(), 0);
  const std::uint64_t first = journal.stage({"INSERT INTO t (id) VALUES (1)"});
  const std::uint64_t second =
      journal.stage({"INSERT INTO t (id) VALUES (2)"});
  journal.wait_durable(second);  // one leader flush covers both records
  journal.wait_durable(first);   // already durable: returns without I/O
  EXPECT_EQ(Journal::read_records(journal_path()).size(), 2u);
}

namespace {
std::atomic<int> g_batch_fsyncs{0};
}  // namespace

TEST_F(JournalTest, GroupCommitFsyncsOncePerBatch) {
  Journal journal(journal_path(), 0);
  (void)journal.stage({"INSERT INTO t (id) VALUES (1)"});
  (void)journal.stage({"INSERT INTO t (id) VALUES (2)"});
  const std::uint64_t last = journal.stage({"INSERT INTO t (id) VALUES (3)"});
  g_batch_fsyncs.store(0);
  util::set_fault_hook([](const char* site) {
    if (std::string_view(site) == "journal.append.committed") {
      g_batch_fsyncs.fetch_add(1);
    }
  });
  journal.wait_durable(last);
  util::set_fault_hook(nullptr);
  // Three staged records, one batch, one fsync.
  EXPECT_EQ(g_batch_fsyncs.load(), 1);
  EXPECT_EQ(Journal::read_records(journal_path()).size(), 3u);
}

TEST_F(JournalTest, StagedButUnflushedRecordsAreFoldedByCheckpoint) {
  Journal journal(journal_path(), 0);
  const std::uint64_t seq = journal.stage({"INSERT INTO t (id) VALUES (1)"});
  // The caller's dump covers everything assigned (save() reads last_seq()
  // under the single-writer gate), so checkpoint discards the staged record
  // and marks it durable-via-dump.
  journal.checkpoint();
  journal.wait_durable(seq);  // durable through the dump: returns at once
  EXPECT_TRUE(Journal::read_records(journal_path()).empty());
  // The sequence counter keeps counting for the next epoch.
  journal.append({"INSERT INTO t (id) VALUES (2)"});
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, seq + 1);
}

// Regression: a torn tail must be cut off at recovery, not just skipped.
// Appending after a leftover tear puts durable-looking records beyond the
// point where replay stops — acknowledged writes would vanish on the crash
// after next.
TEST_F(JournalTest, TruncateTornTailMakesLaterAppendsReplayable) {
  {
    Journal journal(journal_path(), 0);
    journal.append({"INSERT INTO t (id) VALUES (1)"});
  }
  append_raw(journal_path(), "#txn 2 999 0123456789abcdef\nINSERT INTO t");
  Journal::truncate_torn_tail(journal_path());
  {
    Journal journal(journal_path(), 1);
    journal.append({"INSERT INTO t (id) VALUES (2)"});
  }
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 2u);  // without the cut, record 2 is unreachable
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_EQ(records[1].statements[0], "INSERT INTO t (id) VALUES (2)");
}

TEST_F(JournalTest, OpenRepairsTornTailBeforeNewWrites) {
  {
    Database db = Database::open(db_path_);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
    db.execute("INSERT INTO t (x) VALUES ('before-crash')");
  }
  // The crash left a torn record at the journal tail.
  append_raw(journal_path(), "#txn 99 999 0123456789abcdef\nINSERT INTO t");
  {
    Database db = Database::open(db_path_);  // repairs the tail
    db.execute("INSERT INTO t (x) VALUES ('after-restart')");
  }
  Database recovered = Database::open(db_path_);
  const ResultSet rows = recovered.execute("SELECT x FROM t");
  ASSERT_EQ(rows.size(), 2u);  // the acknowledged post-restart write survived
  EXPECT_EQ(rows.at(1, "x").as_text(), "after-restart");
}

TEST_F(JournalTest, FlushFailurePoisonsTheJournal) {
  Journal journal(journal_path(), 0);
  journal.append({"INSERT INTO t (id) VALUES (1)"});
  util::set_fault_hook([](const char* site) {
    if (std::string_view(site) == "journal.append.torn") {
      throw IoError("injected torn write");
    }
  });
  EXPECT_THROW(journal.append({"INSERT INTO t (id) VALUES (2)"}), IoError);
  util::set_fault_hook(nullptr);
  // A torn record makes every later record unreachable at replay (it stops
  // at the first invalid one), so the journal refuses further appends
  // instead of acknowledging writes that recovery would silently drop.
  EXPECT_THROW(journal.append({"INSERT INTO t (id) VALUES (3)"}), IoError);
  // The record flushed before the failure is still replayable.
  const std::vector<JournalRecord> records =
      Journal::read_records(journal_path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
}

TEST_F(JournalTest, SaveToForeignPathDoesNotCheckpoint) {
  Database db = Database::open(db_path_);
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)");
  db.execute("INSERT INTO t (id) VALUES (1)");
  db.save((dir_ / "elsewhere.db").string());
  // Journal of the home path still holds the records.
  EXPECT_FALSE(Journal::read_records(journal_path()).empty());
}

}  // namespace
}  // namespace iokc::db
