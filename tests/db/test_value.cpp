#include "src/db/value.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "src/util/error.hpp"

namespace iokc::db {
namespace {

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(42).is_integer());
  EXPECT_TRUE(Value(3.14).is_real());
  EXPECT_TRUE(Value("x").is_text());
}

TEST(Value, TypedAccessors) {
  EXPECT_EQ(Value(42).as_integer(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).as_real(), 3.5);
  EXPECT_DOUBLE_EQ(Value(7).as_real(), 7.0);  // numeric affinity
  EXPECT_EQ(Value("hi").as_text(), "hi");
  EXPECT_THROW(Value("hi").as_integer(), DbError);
  EXPECT_THROW(Value(3.5).as_integer(), DbError);
  EXPECT_THROW(Value(1).as_text(), DbError);
  EXPECT_THROW(Value("x").as_real(), DbError);
}

TEST(Value, MatchesAndCoerce) {
  EXPECT_TRUE(Value(1).matches(ColumnType::kInteger));
  EXPECT_TRUE(Value(1).matches(ColumnType::kReal));
  EXPECT_FALSE(Value(1.5).matches(ColumnType::kInteger));
  EXPECT_TRUE(Value().matches(ColumnType::kText));
  EXPECT_TRUE(Value(7).coerce(ColumnType::kReal).is_real());
  EXPECT_THROW(Value("x").coerce(ColumnType::kInteger), DbError);
  EXPECT_TRUE(Value().coerce(ColumnType::kText).is_null());
}

TEST(Value, CoerceRejectsNonFiniteReals) {
  // "nan"/"inf" render into a dump the SQL parser cannot read back, so
  // storage must refuse them up front with a clear error.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Value(nan).coerce(ColumnType::kReal), DbError);
  EXPECT_THROW(Value(inf).coerce(ColumnType::kReal), DbError);
  EXPECT_THROW(Value(-inf).coerce(ColumnType::kReal), DbError);
  // Finite extremes are fine.
  EXPECT_NO_THROW(Value(std::numeric_limits<double>::max())
                      .coerce(ColumnType::kReal));
  EXPECT_NO_THROW(Value(std::numeric_limits<double>::denorm_min())
                      .coerce(ColumnType::kReal));
}

TEST(Value, Render) {
  EXPECT_EQ(Value().render(), "NULL");
  EXPECT_EQ(Value(42).render(), "42");
  EXPECT_EQ(Value("o'brien").render(), "'o''brien'");
  EXPECT_EQ(Value("x").render_raw(), "x");
  EXPECT_EQ(Value().render_raw(), "");
}

TEST(Value, Ordering) {
  EXPECT_LT(Value(), Value(0));            // NULL < numbers
  EXPECT_LT(Value(5), Value("a"));         // numbers < text
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1), Value(1.5));         // cross-type numeric
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_EQ(Value(), Value());
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(2).hash(), Value(2.0).hash());
  EXPECT_EQ(Value("x").hash(), Value("x").hash());
  EXPECT_EQ(Value().hash(), Value().hash());
}

TEST(ColumnTypes, Strings) {
  EXPECT_EQ(to_string(ColumnType::kInteger), "INTEGER");
  EXPECT_EQ(column_type_from_string("integer"), ColumnType::kInteger);
  EXPECT_EQ(column_type_from_string("REAL"), ColumnType::kReal);
  EXPECT_EQ(column_type_from_string("TEXT"), ColumnType::kText);
  EXPECT_THROW(column_type_from_string("BLOB"), DbError);
}

}  // namespace
}  // namespace iokc::db
