// Transaction semantics: begin/commit/rollback, copy-on-touch undo for every
// statement kind, rowid-counter restoration (required for byte-identical
// resumed runs), and single-statement atomicity outside explicit
// transactions.
#include <gtest/gtest.h>

#include "src/db/database.hpp"
#include "src/util/error.hpp"

namespace iokc::db {
namespace {

Database make_db() {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
  db.execute("INSERT INTO t (x) VALUES ('seed')");
  return db;
}

TEST(Transactions, CommitKeepsChanges) {
  Database db = make_db();
  db.begin();
  db.execute("INSERT INTO t (x) VALUES ('a')");
  db.execute("UPDATE t SET x = 'updated' WHERE id = 1");
  db.commit();
  EXPECT_FALSE(db.in_transaction());
  EXPECT_EQ(db.execute("SELECT * FROM t").size(), 2u);
  EXPECT_EQ(db.execute("SELECT x FROM t WHERE id = 1").at(0, "x").as_text(),
            "updated");
}

TEST(Transactions, RollbackUndoesInserts) {
  Database db = make_db();
  const std::string before = db.dump();
  db.begin();
  db.execute("INSERT INTO t (x) VALUES ('a')");
  db.execute("INSERT INTO t (x) VALUES ('b')");
  EXPECT_EQ(db.execute("SELECT * FROM t").size(), 3u);
  db.rollback();
  EXPECT_EQ(db.dump(), before);
}

TEST(Transactions, RollbackRestoresRowidCounter) {
  Database db = make_db();
  db.begin();
  db.execute("INSERT INTO t (x) VALUES ('discarded')");
  EXPECT_EQ(db.last_insert_rowid(), 2);
  db.rollback();
  // The discarded attempt must not perturb future id assignment, or a
  // resumed run would diverge from the uninterrupted one.
  db.execute("INSERT INTO t (x) VALUES ('kept')");
  EXPECT_EQ(db.last_insert_rowid(), 2);
}

TEST(Transactions, RollbackRestoresLastInsertRowid) {
  Database db = make_db();
  EXPECT_EQ(db.last_insert_rowid(), 1);
  db.begin();
  db.execute("INSERT INTO t (x) VALUES ('a')");
  db.rollback();
  EXPECT_EQ(db.last_insert_rowid(), 1);
}

TEST(Transactions, RollbackRestoresUpdatesAndDeletes) {
  Database db = make_db();
  db.execute("INSERT INTO t (x) VALUES ('second')");
  const std::string before = db.dump();
  db.begin();
  db.execute("UPDATE t SET x = 'clobbered'");
  db.execute("DELETE FROM t WHERE id = 1");
  db.execute("INSERT INTO t (x) VALUES ('third')");
  db.rollback();
  EXPECT_EQ(db.dump(), before);
}

TEST(Transactions, RollbackErasesCreatedTable) {
  Database db = make_db();
  db.begin();
  db.execute("CREATE TABLE created (id INTEGER PRIMARY KEY)");
  db.execute("INSERT INTO created (id) VALUES (1)");
  db.rollback();
  EXPECT_FALSE(db.has_table("created"));
}

TEST(Transactions, RollbackRestoresDroppedTable) {
  Database db = make_db();
  const std::string before = db.dump();
  db.begin();
  db.execute("DROP TABLE t");
  EXPECT_FALSE(db.has_table("t"));
  db.rollback();
  EXPECT_EQ(db.dump(), before);
}

TEST(Transactions, RollbackUndoesIndexCreation) {
  Database db = make_db();
  db.begin();
  db.execute("CREATE INDEX idx_x ON t (x)");
  EXPECT_TRUE(db.require_table("t").has_index("x"));
  db.rollback();
  EXPECT_FALSE(db.require_table("t").has_index("x"));
}

TEST(Transactions, RollbackUndoesCompositeAndHashIndexCreation) {
  Database db = make_db();
  const std::string before = db.dump();
  db.begin();
  db.execute("CREATE INDEX idx_xid ON t (x, id)");
  db.execute("CREATE INDEX idx_hx ON t (x) USING HASH");
  db.execute("INSERT INTO t (x) VALUES ('in-txn')");
  EXPECT_TRUE(db.require_table("t").has_index_named("idx_xid"));
  EXPECT_TRUE(db.require_table("t").has_index_named("idx_hx"));
  db.rollback();
  EXPECT_FALSE(db.require_table("t").has_index_named("idx_xid"));
  EXPECT_FALSE(db.require_table("t").has_index_named("idx_hx"));
  EXPECT_EQ(db.dump(), before);
}

TEST(Transactions, MixedInsertAndOverwriteOnSameTable) {
  Database db = make_db();
  const std::string before = db.dump();
  db.begin();
  db.execute("INSERT INTO t (x) VALUES ('a')");   // baseline first
  db.execute("UPDATE t SET x = 'b' WHERE id = 1");  // then snapshot
  db.execute("INSERT INTO t (x) VALUES ('c')");
  db.rollback();
  EXPECT_EQ(db.dump(), before);
}

TEST(Transactions, NestedBeginThrows) {
  Database db = make_db();
  db.begin();
  EXPECT_THROW(db.begin(), DbError);
  db.rollback();
}

TEST(Transactions, CommitAndRollbackOutsideTransactionThrow) {
  Database db = make_db();
  EXPECT_THROW(db.commit(), DbError);
  EXPECT_THROW(db.rollback(), DbError);
}

TEST(Transactions, FailedStatementInsideTransactionIsUndoneByRollback) {
  Database db = make_db();
  const std::string before = db.dump();
  db.begin();
  db.execute("INSERT INTO t (x) VALUES ('a')");
  EXPECT_THROW(db.execute("INSERT INTO t (id, x) VALUES (1, 'dup')"), DbError);
  db.rollback();
  EXPECT_EQ(db.dump(), before);
}

TEST(Transactions, AutoCommitMultiRowInsertIsAtomic) {
  Database db = make_db();
  const std::string before = db.dump();
  // Row 1 of the statement is fine, row 2 collides with the seed row's key:
  // the WHOLE statement must be undone, not just the failing row.
  EXPECT_THROW(db.execute("INSERT INTO t (id, x) VALUES (7, 'ok'), (1, 'dup')"),
               DbError);
  EXPECT_EQ(db.dump(), before);
}

TEST(Transactions, SelectAllowedInsideTransaction) {
  Database db = make_db();
  db.begin();
  db.execute("INSERT INTO t (x) VALUES ('a')");
  EXPECT_EQ(db.execute("SELECT * FROM t").size(), 2u);
  db.commit();
}

TEST(Transactions, SaveInsideTransactionThrows) {
  Database db = make_db();
  db.begin();
  EXPECT_THROW(db.save("/tmp/iokc_txn_save_test.db"), DbError);
  db.rollback();
}

}  // namespace
}  // namespace iokc::db
