// Property-style dump/load round-trip coverage: awkward strings, NULLs,
// extreme integers, 17-significant-digit doubles, foreign-key ordering that
// defeats alphabetical table emission, and seeded-random row soups. The
// invariant everywhere: load(dump()) reproduces dump() byte for byte.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "src/db/database.hpp"
#include "src/util/rng.hpp"

namespace iokc::db {
namespace {

/// Saves to a temp file, loads it back, and checks the dumps match.
void expect_roundtrip(Database& db) {
  const std::string dump = db.dump();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("iokc_roundtrip_" + std::to_string(::getpid()) + ".db");
  db.save(path.string());
  Database loaded = Database::load(path.string());
  EXPECT_EQ(loaded.dump(), dump);
  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + "-journal");
}

TEST(RoundTrip, QuotesAndEscapes) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)");
  db.execute("INSERT INTO t (x) VALUES ('it''s quoted')");
  db.execute("INSERT INTO t (x) VALUES ('''leading and trailing''')");
  db.execute("INSERT INTO t (x) VALUES ('semi; colon, comma (paren)')");
  db.execute("INSERT INTO t (x) VALUES ('line1\nline2')");
  expect_roundtrip(db);
}

TEST(RoundTrip, EmptyStringsAndNulls) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a TEXT, b REAL)");
  db.execute("INSERT INTO t (a, b) VALUES ('', 0.0)");
  db.execute("INSERT INTO t (a, b) VALUES (NULL, NULL)");
  db.execute("INSERT INTO t (a) VALUES ('only a')");
  expect_roundtrip(db);
  // An empty string must stay distinct from NULL through the round trip.
  const ResultSet rows = db.execute("SELECT a FROM t WHERE id = 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows.at(0, "a").is_text());
  EXPECT_EQ(rows.at(0, "a").as_text(), "");
}

TEST(RoundTrip, ExtremeIntegers) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  db.execute("INSERT INTO t (v) VALUES (9223372036854775807)");
  db.execute("INSERT INTO t (v) VALUES (-9223372036854775808)");
  db.execute("INSERT INTO t (v) VALUES (0)");
  db.execute("INSERT INTO t (v) VALUES (-1)");
  expect_roundtrip(db);
  EXPECT_EQ(db.execute("SELECT v FROM t WHERE id = 1").at(0, "v").as_integer(),
            INT64_MAX);
  EXPECT_EQ(db.execute("SELECT v FROM t WHERE id = 2").at(0, "v").as_integer(),
            INT64_MIN);
}

TEST(RoundTrip, SeventeenDigitDoubles) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)");
  db.execute("INSERT INTO t (v) VALUES (0.026870000000000002)");
  db.execute("INSERT INTO t (v) VALUES (0.1)");
  db.execute("INSERT INTO t (v) VALUES (3.141592653589793)");
  db.execute("INSERT INTO t (v) VALUES (1e300)");
  db.execute("INSERT INTO t (v) VALUES (-2.2250738585072014e-308)");
  db.execute("INSERT INTO t (v) VALUES (123456789.12345679)");
  expect_roundtrip(db);
}

TEST(RoundTrip, ForeignKeyOrderDefeatsAlphabeticalEmission) {
  Database db;
  // The child sorts BEFORE its parent alphabetically; the dump must emit
  // z_parent first anyway or the reload fails its FK check.
  db.execute("CREATE TABLE z_parent (id INTEGER PRIMARY KEY, name TEXT)");
  db.execute(
      "CREATE TABLE a_child (id INTEGER PRIMARY KEY, parent_id INTEGER NOT "
      "NULL REFERENCES z_parent(id))");
  db.execute("INSERT INTO z_parent (name) VALUES ('p1'), ('p2')");
  db.execute("INSERT INTO a_child (parent_id) VALUES (1), (2), (1)");
  expect_roundtrip(db);
}

TEST(RoundTrip, DeepForeignKeyChain) {
  Database db;
  db.execute("CREATE TABLE c3 (id INTEGER PRIMARY KEY)");
  db.execute("CREATE TABLE b2 (id INTEGER PRIMARY KEY, up INTEGER "
             "REFERENCES c3(id))");
  db.execute("CREATE TABLE a1 (id INTEGER PRIMARY KEY, up INTEGER "
             "REFERENCES b2(id))");
  db.execute("INSERT INTO c3 (id) VALUES (1)");
  db.execute("INSERT INTO b2 (up) VALUES (1)");
  db.execute("INSERT INTO a1 (up) VALUES (1)");
  expect_roundtrip(db);
}

TEST(RoundTrip, SeededRandomRows) {
  util::Rng rng(0xD00DFEED);
  Database db;
  db.execute(
      "CREATE TABLE soup (id INTEGER PRIMARY KEY, i INTEGER, r REAL, "
      "s TEXT)");
  const std::string alphabet =
      "abc XYZ 0123456789 '\",;()%$-_\n\t";
  for (int row = 0; row < 200; ++row) {
    const std::int64_t i = rng.uniform_int(INT64_MIN / 2, INT64_MAX / 2);
    const double r = rng.uniform(-1e12, 1e12);
    std::string s;
    const std::int64_t length = rng.uniform_int(0, 24);
    for (std::int64_t c = 0; c < length; ++c) {
      s += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    Value text(s);
    std::string sql = "INSERT INTO soup (i, r, s) VALUES (";
    sql += std::to_string(i) + ", ";
    sql += Value(r).render_raw() + ", ";
    sql += rng.bernoulli(0.1) ? "NULL" : text.render();
    sql += ")";
    db.execute(sql);
  }
  expect_roundtrip(db);
}

TEST(RoundTrip, SecondaryIndexesSurviveDumpAndReload) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a TEXT, b INTEGER)");
  db.execute("INSERT INTO t (a, b) VALUES ('x', 1), ('y', 2), ('x', 3)");
  db.execute("CREATE INDEX idx_ab ON t (a, b)");
  db.execute("CREATE INDEX idx_ha ON t (a) USING HASH");
  const std::string dump = db.dump();
  // Named indexes dump as CREATE INDEX; the ordered kind renders without a
  // USING clause so reload -> re-dump stays byte-identical.
  EXPECT_NE(dump.find("CREATE INDEX idx_ab ON t (a, b);"), std::string::npos);
  EXPECT_NE(dump.find("CREATE INDEX idx_ha ON t (a) USING HASH;"),
            std::string::npos);
  // Implicit PK/FK indexes never dump — CREATE TABLE recreates them.
  EXPECT_EQ(dump.find("auto_"), std::string::npos);
  expect_roundtrip(db);
}

}  // namespace
}  // namespace iokc::db
