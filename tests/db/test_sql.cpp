#include "src/db/sql.hpp"

#include <gtest/gtest.h>

#include "src/util/error.hpp"

namespace iokc::db {
namespace {

TEST(Sql, ParsesCreateTableWithConstraints) {
  const Statement statement = parse_sql(
      "CREATE TABLE summaries (id INTEGER PRIMARY KEY, performance_id INTEGER "
      "NOT NULL REFERENCES performances(id), operation TEXT NOT NULL, "
      "mean_bw REAL)");
  const auto& stmt = std::get<CreateTableStmt>(statement);
  EXPECT_EQ(stmt.schema.name, "summaries");
  ASSERT_EQ(stmt.schema.columns.size(), 4u);
  EXPECT_TRUE(stmt.schema.columns[0].primary_key);
  EXPECT_TRUE(stmt.schema.columns[1].not_null);
  ASSERT_TRUE(stmt.schema.columns[1].references.has_value());
  EXPECT_EQ(stmt.schema.columns[1].references->table, "performances");
  EXPECT_EQ(stmt.schema.columns[1].references->column, "id");
  EXPECT_EQ(stmt.schema.columns[3].type, ColumnType::kReal);
}

TEST(Sql, ParsesIfNotExists) {
  const Statement stmt_stmt = parse_sql("CREATE TABLE IF NOT EXISTS t (a INTEGER)");
  const auto& stmt = std::get<CreateTableStmt>(stmt_stmt);
  EXPECT_TRUE(stmt.if_not_exists);
}

TEST(Sql, ParsesCreateIndex) {
  const Statement stmt_stmt = parse_sql("CREATE INDEX idx_s_pid ON summaries (performance_id)");
  const auto& stmt = std::get<CreateIndexStmt>(stmt_stmt);
  EXPECT_EQ(stmt.index_name, "idx_s_pid");
  EXPECT_EQ(stmt.table, "summaries");
  EXPECT_EQ(stmt.columns, (std::vector<std::string>{"performance_id"}));
  EXPECT_EQ(stmt.kind, IndexKind::kOrdered);
  EXPECT_FALSE(stmt.if_not_exists);
}

TEST(Sql, ParsesCompositeHashIndexIfNotExists) {
  const Statement stmt_stmt = parse_sql(
      "CREATE INDEX IF NOT EXISTS idx_perf ON performances "
      "(benchmark, num_nodes) USING HASH");
  const auto& stmt = std::get<CreateIndexStmt>(stmt_stmt);
  EXPECT_EQ(stmt.index_name, "idx_perf");
  EXPECT_EQ(stmt.table, "performances");
  EXPECT_EQ(stmt.columns,
            (std::vector<std::string>{"benchmark", "num_nodes"}));
  EXPECT_EQ(stmt.kind, IndexKind::kHash);
  EXPECT_TRUE(stmt.if_not_exists);
}

TEST(Sql, ParsesExplainAndClassifiesReadOnly) {
  const Statement stmt_stmt =
      parse_sql("EXPLAIN SELECT * FROM t WHERE a = 1");
  const auto& stmt = std::get<ExplainStmt>(stmt_stmt);
  ASSERT_NE(stmt.inner, nullptr);
  EXPECT_TRUE(std::holds_alternative<SelectStmt>(*stmt.inner));
  EXPECT_TRUE(statement_is_read_only(stmt_stmt));
  // EXPLAIN never executes the inner statement, so planning a DELETE is
  // still read-only.
  EXPECT_TRUE(sql_is_read_only("EXPLAIN DELETE FROM t WHERE a = 1"));
  EXPECT_FALSE(sql_is_read_only("DELETE FROM t WHERE a = 1"));
}

TEST(Sql, ParsesPositionalParameters) {
  const Statement stmt_stmt =
      parse_sql("SELECT * FROM t WHERE a = ? AND b > ?");
  EXPECT_EQ(statement_param_count(stmt_stmt), 2u);
  EXPECT_EQ(statement_param_count(parse_sql("SELECT * FROM t")), 0u);
  EXPECT_EQ(statement_param_count(
                parse_sql("EXPLAIN SELECT * FROM t WHERE a = ?")),
            1u);
}

TEST(Sql, StatementCacheHitsAndEvicts) {
  StatementCache cache(2);
  const auto first = cache.get("SELECT * FROM t WHERE a = ?");
  const auto again = cache.get("SELECT * FROM t WHERE a = ?");
  EXPECT_EQ(first.get(), again.get());  // same parsed AST, no reparse
  cache.get("SELECT * FROM u");
  cache.get("SELECT * FROM v");  // evicts the LRU entry ("...t...")
  const StatementCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  // Parse failures propagate and are never cached.
  EXPECT_THROW(cache.get("SELEC nonsense"), ParseError);
}

TEST(Sql, ParsesInsertMultiRow) {
  const Statement stmt_stmt = parse_sql(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL), (-3, 'it''s')");
  const auto& stmt = std::get<InsertStmt>(stmt_stmt);
  EXPECT_EQ(stmt.table, "t");
  EXPECT_EQ(stmt.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(stmt.rows.size(), 3u);
  EXPECT_EQ(stmt.rows[0][1].as_text(), "x");
  EXPECT_TRUE(stmt.rows[1][1].is_null());
  EXPECT_EQ(stmt.rows[2][0].as_integer(), -3);
  EXPECT_EQ(stmt.rows[2][1].as_text(), "it's");
}

TEST(Sql, ParsesInsertWithoutColumnList) {
  const Statement statement = parse_sql("INSERT INTO t VALUES (1, 2.5)");
  const auto& stmt = std::get<InsertStmt>(statement);
  EXPECT_TRUE(stmt.columns.empty());
  EXPECT_DOUBLE_EQ(stmt.rows[0][1].as_real(), 2.5);
}

TEST(Sql, ParsesSelectStar) {
  const Statement stmt_stmt = parse_sql("SELECT * FROM t");
  const auto& stmt = std::get<SelectStmt>(stmt_stmt);
  EXPECT_TRUE(stmt.columns.empty());
  EXPECT_EQ(stmt.table, "t");
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(Sql, ParsesSelectWithEverything) {
  const Statement stmt_stmt = parse_sql(
      "SELECT a, t2.b FROM t INNER JOIN t2 ON t.id = t2.t_id "
      "WHERE a > 3 AND (b = 'x' OR NOT c < 2) ORDER BY a DESC, b LIMIT 10");
  const auto& stmt = std::get<SelectStmt>(stmt_stmt);
  EXPECT_EQ(stmt.columns, (std::vector<std::string>{"a", "t2.b"}));
  ASSERT_TRUE(stmt.join.has_value());
  EXPECT_EQ(stmt.join->table, "t2");
  EXPECT_EQ(stmt.join->left_column, "t.id");
  EXPECT_EQ(stmt.join->right_column, "t2.t_id");
  ASSERT_NE(stmt.where, nullptr);
  ASSERT_EQ(stmt.order_by.size(), 2u);
  EXPECT_TRUE(stmt.order_by[0].descending);
  EXPECT_FALSE(stmt.order_by[1].descending);
  EXPECT_EQ(stmt.limit, 10u);
}

TEST(Sql, JoinWithoutInnerKeyword) {
  const Statement stmt_stmt = parse_sql("SELECT * FROM a JOIN b ON a.x = b.y");
  const auto& stmt = std::get<SelectStmt>(stmt_stmt);
  EXPECT_TRUE(stmt.join.has_value());
}

TEST(Sql, ParsesUpdate) {
  const Statement stmt_stmt = parse_sql("UPDATE t SET a = 5, b = 'z' WHERE id = 3");
  const auto& stmt = std::get<UpdateStmt>(stmt_stmt);
  EXPECT_EQ(stmt.table, "t");
  ASSERT_EQ(stmt.assignments.size(), 2u);
  EXPECT_EQ(stmt.assignments[0].first, "a");
  EXPECT_EQ(stmt.assignments[0].second.as_integer(), 5);
  ASSERT_NE(stmt.where, nullptr);
}

TEST(Sql, ParsesDeleteAndDrop) {
  const Statement del_stmt = parse_sql("DELETE FROM t WHERE a != 1");
  const auto& del = std::get<DeleteStmt>(del_stmt);
  EXPECT_EQ(del.table, "t");
  const Statement drop_stmt = parse_sql("DROP TABLE t");
  const auto& drop = std::get<DropTableStmt>(drop_stmt);
  EXPECT_EQ(drop.table, "t");
  EXPECT_FALSE(drop.if_exists);
  const Statement drop_if_stmt = parse_sql("DROP TABLE IF EXISTS t");
  const auto& drop_if = std::get<DropTableStmt>(drop_if_stmt);
  EXPECT_TRUE(drop_if.if_exists);
}

TEST(Sql, KeywordsAreCaseInsensitive) {
  EXPECT_NO_THROW(parse_sql("select * from t where a = 1 order by a limit 1"));
  EXPECT_NO_THROW(parse_sql("Insert Into t Values (1)"));
}

TEST(Sql, TrailingSemicolonAllowed) {
  EXPECT_NO_THROW(parse_sql("SELECT * FROM t;"));
}

TEST(Sql, RejectsMalformedStatements) {
  EXPECT_THROW(parse_sql(""), ParseError);
  EXPECT_THROW(parse_sql("FROBNICATE t"), ParseError);
  EXPECT_THROW(parse_sql("SELECT FROM t"), ParseError);
  EXPECT_THROW(parse_sql("SELECT * FROM"), ParseError);
  EXPECT_THROW(parse_sql("INSERT INTO t VALUES (1"), ParseError);
  EXPECT_THROW(parse_sql("CREATE TABLE t ()"), ParseError);
  EXPECT_THROW(parse_sql("SELECT * FROM t WHERE"), ParseError);
  EXPECT_THROW(parse_sql("SELECT * FROM t LIMIT -1"), ParseError);
  EXPECT_THROW(parse_sql("SELECT * FROM t LIMIT 1.5"), ParseError);
  EXPECT_THROW(parse_sql("SELECT * FROM t extra"), ParseError);
  EXPECT_THROW(parse_sql("INSERT INTO t VALUES ('unterminated)"), ParseError);
}

TEST(Sql, ScriptSplitsOnSemicolonsOutsideStrings) {
  const auto statements = parse_sql_script(
      "CREATE TABLE t (a TEXT);\n"
      "INSERT INTO t VALUES ('semi;colon');\n"
      "  \n"
      "SELECT * FROM t");
  ASSERT_EQ(statements.size(), 3u);
  const auto& insert = std::get<InsertStmt>(statements[1]);
  EXPECT_EQ(insert.rows[0][0].as_text(), "semi;colon");
}

TEST(Sql, ComparisonOperators) {
  for (const char* op : {"=", "!=", "<>", "<", "<=", ">", ">="}) {
    EXPECT_NO_THROW(parse_sql(std::string("SELECT * FROM t WHERE a ") + op +
                              " 1"))
        << op;
  }
}

TEST(Sql, ReadOnlyClassifier) {
  // The gate shared by the CLI `sql` verb and the service's `sql` endpoint.
  EXPECT_TRUE(sql_is_read_only("SELECT * FROM t"));
  EXPECT_TRUE(sql_is_read_only("select id from t where a = 1"));
  EXPECT_FALSE(sql_is_read_only("INSERT INTO t VALUES (1)"));
  EXPECT_FALSE(sql_is_read_only("UPDATE t SET a = 2"));
  EXPECT_FALSE(sql_is_read_only("DELETE FROM t"));
  EXPECT_FALSE(sql_is_read_only("DELETE FROM t WHERE a = 1"));
  EXPECT_FALSE(sql_is_read_only(
      "CREATE TABLE t (id INTEGER PRIMARY KEY)"));
  EXPECT_FALSE(sql_is_read_only("DROP TABLE t"));
  // A statement that only *mentions* SELECT-ish text is still a write.
  EXPECT_FALSE(sql_is_read_only("INSERT INTO t VALUES ('SELECT')"));
  // Unparseable SQL is neither accepted nor treated as a write: it throws,
  // so the gate can never silently let a typo through.
  EXPECT_THROW(sql_is_read_only("SELEKT * FROM t"), ParseError);
  EXPECT_THROW(sql_is_read_only(""), ParseError);
}

}  // namespace
}  // namespace iokc::db
