#include "src/cli/cli.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/svc/server.hpp"

namespace iokc::cli {
namespace {

/// Fixture with a scratch directory for workspace + database files.
class CliTest : public ::testing::Test {
 protected:
  CliTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("iokc_cli_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~CliTest() override { std::filesystem::remove_all(dir_); }

  /// Runs the CLI with persistent db/workspace flags prepended.
  int cli(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    std::vector<std::string> full{"--db", "file:" + (dir_ / "k.db").string(),
                                  "--workspace", (dir_ / "ws").string()};
    for (std::string& arg : args) {
      full.push_back(std::move(arg));
    }
    return run_cli(full, out_, err_);
  }

  std::string out() const { return out_.str(); }
  std::string err() const { return err_.str(); }

  std::filesystem::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, HelpAndUsageErrors) {
  EXPECT_EQ(cli({"help"}), 0);
  EXPECT_NE(out().find("usage: iokc"), std::string::npos);
  EXPECT_EQ(cli({}), 1);
  EXPECT_EQ(cli({"bogus"}), 1);
  EXPECT_NE(err().find("unknown command"), std::string::npos);
  EXPECT_EQ(cli({"--bogus", "x", "list"}), 1);
  EXPECT_EQ(cli({"--db"}), 1);
  EXPECT_EQ(cli({"view"}), 1);  // missing id
}

TEST_F(CliTest, RunPersistsAndViews) {
  ASSERT_EQ(cli({"run", "ior", "-a", "posix", "-b", "1m", "-t", "256k", "-s",
                 "2", "-F", "-i", "2", "-N", "4", "-o", "/scratch/c", "-k"}),
            0)
      << err();
  EXPECT_NE(out().find("stored 1 knowledge object(s)"), std::string::npos);
  EXPECT_NE(out().find("Knowledge object #1"), std::string::npos);

  // The database file persists across invocations.
  ASSERT_EQ(cli({"list"}), 0) << err();
  EXPECT_NE(out().find("ior -a POSIX"), std::string::npos);
  ASSERT_EQ(cli({"view", "1"}), 0) << err();
  EXPECT_NE(out().find("file-per-process"), std::string::npos);
  ASSERT_EQ(cli({"iters", "1"}), 0) << err();
  EXPECT_NE(out().find("| write"), std::string::npos);
}

TEST_F(CliTest, SqlAndCsvAgainstTheDatabase) {
  ASSERT_EQ(cli({"run", "ior", "-a", "posix", "-b", "1m", "-t", "1m", "-s",
                 "1", "-F", "-w", "-i", "1", "-N", "2", "-o", "/scratch/q",
                 "-k"}),
            0)
      << err();
  ASSERT_EQ(cli({"sql", "SELECT", "command", "FROM", "performances"}), 0)
      << err();
  EXPECT_NE(out().find("command"), std::string::npos);
  ASSERT_EQ(cli({"export-csv", "performances"}), 0) << err();
  EXPECT_NE(out().find("id,command"), std::string::npos);
  // Bad SQL is a runtime failure, not a crash.
  EXPECT_EQ(cli({"sql", "SELEKT", "1"}), 2);
}

TEST_F(CliTest, JsonExportImportRoundTrip) {
  ASSERT_EQ(cli({"run", "ior", "-a", "posix", "-b", "1m", "-t", "1m", "-s",
                 "1", "-F", "-w", "-i", "1", "-N", "2", "-o", "/scratch/j",
                 "-k"}),
            0)
      << err();
  const std::string json_path = (dir_ / "k.json").string();
  ASSERT_EQ(cli({"export-json", "1", json_path}), 0) << err();
  ASSERT_EQ(cli({"import-json", json_path}), 0) << err();
  EXPECT_NE(out().find("imported as #2"), std::string::npos);
  ASSERT_EQ(cli({"list"}), 0);
  // Two knowledge rows now.
  std::size_t rows = 0;
  for (std::size_t pos = out().find("| knowledge |");
       pos != std::string::npos; pos = out().find("| knowledge |", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST_F(CliTest, SweepRunsJubeConfigFile) {
  const std::filesystem::path config = dir_ / "sweep.xml";
  {
    std::ofstream file(config);
    file << "<jube><benchmark name=\"s\" outpath=\"s\">\n"
            "<parameterset name=\"p\"><parameter name=\"t\">256k,1m"
            "</parameter></parameterset>\n"
            "<step name=\"run\">ior -a posix -b 1m -t $t -s 1 -F -w -i 1 "
            "-N 2 -o /scratch/s_$t</step>\n"
            "</benchmark></jube>\n";
  }
  ASSERT_EQ(cli({"sweep", config.string()}), 0) << err();
  EXPECT_NE(out().find("executed 2 work package(s), stored 2"),
            std::string::npos);
}

TEST_F(CliTest, TraceAndMetricsFlagsWriteExports) {
  const std::filesystem::path config = dir_ / "sweep.xml";
  {
    std::ofstream file(config);
    file << "<jube><benchmark name=\"s\" outpath=\"s\">\n"
            "<parameterset name=\"p\"><parameter name=\"t\">256k,1m"
            "</parameter></parameterset>\n"
            "<step name=\"run\">ior -a posix -b 1m -t $t -s 1 -F -w -i 1 "
            "-N 2 -o /scratch/s_$t</step>\n"
            "</benchmark></jube>\n";
  }
  const std::filesystem::path trace = dir_ / "t.json";
  const std::filesystem::path metrics = dir_ / "m.csv";
  ASSERT_EQ(cli({"--jobs", "2", "--trace", trace.string(), "--metrics",
                 metrics.string(), "sweep", config.string()}),
            0)
      << err();

  const auto slurp = [](const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  ASSERT_TRUE(std::filesystem::exists(trace));
  const std::string trace_text = slurp(trace);
  EXPECT_EQ(trace_text.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(trace_text.find("\"phase:generation\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"work_package\":1"), std::string::npos);

  ASSERT_TRUE(std::filesystem::exists(metrics));
  const std::string metrics_text = slurp(metrics);
  EXPECT_EQ(metrics_text.rfind("metric,phase,work_package,kind,value", 0),
            0u);
  EXPECT_NE(metrics_text.find("db.statements"), std::string::npos);
  EXPECT_NE(metrics_text.find("repo.batch_objects"), std::string::npos);
}

TEST_F(CliTest, FlagsWithoutValuesAreRejected) {
  EXPECT_EQ(cli({"--trace"}), 1);
  EXPECT_EQ(cli({"--metrics"}), 1);
}

TEST_F(CliTest, CompareRendersAsciiChart) {
  ASSERT_EQ(cli({"run", "ior", "-a", "posix", "-b", "1m", "-t", "256k", "-s",
                 "2", "-F", "-w", "-i", "1", "-N", "4", "-o", "/scratch/a",
                 "-k"}),
            0);
  ASSERT_EQ(cli({"run", "ior", "-a", "posix", "-b", "1m", "-t", "1m", "-s",
                 "2", "-F", "-w", "-i", "1", "-N", "4", "-o", "/scratch/b",
                 "-k"}),
            0);
  ASSERT_EQ(cli({"compare", "mean_bw_mib", "write", "1", "2"}), 0) << err();
  EXPECT_NE(out().find("#1"), std::string::npos);
  EXPECT_NE(out().find("#2"), std::string::npos);
  EXPECT_NE(out().find("#"), std::string::npos);
  EXPECT_EQ(cli({"compare", "mean_bw_mib"}), 1);  // too few args
}

TEST_F(CliTest, RecommendAndPredictFromTheDatabase) {
  // Populate with two patterns so the miner has something to say.
  ASSERT_EQ(cli({"run", "ior", "-a", "posix", "-b", "4m", "-t", "64k", "-s",
                 "2", "-F", "-C", "-w", "-i", "1", "-N", "4", "-o",
                 "/scratch/slow", "-k"}),
            0);
  ASSERT_EQ(cli({"run", "ior", "-a", "mpiio", "-b", "4m", "-t", "2m", "-s",
                 "2", "-F", "-C", "-w", "-i", "1", "-N", "4", "-o",
                 "/scratch/fast", "-k"}),
            0);
  ASSERT_EQ(cli({"recommend", "ior", "-a", "posix", "-b", "4m", "-t", "64k",
                 "-s", "2", "-F", "-C", "-w", "-i", "1", "-N", "4", "-o",
                 "/scratch/mine"}),
            0)
      << err();
  EXPECT_NE(out().find("Recommendations"), std::string::npos);
  ASSERT_EQ(cli({"predict", "ior", "-a", "mpiio", "-b", "4m", "-t", "1m",
                 "-s", "2", "-F", "-N", "4", "-o", "/scratch/p"}),
            0)
      << err();
  EXPECT_NE(out().find("3-NN estimate"), std::string::npos);
}

TEST_F(CliTest, ExtractWorkspaceCommand) {
  // Create a workspace by running, against a throwaway database...
  ASSERT_EQ(run_cli({"--db", "mem:", "--workspace", (dir_ / "ws2").string(),
                     "run", "ior -a posix -b 1m -t 1m -s 1 -F -w -i 1 -N 2 "
                            "-o /scratch/x -k"},
                    out_, err_),
            0)
      << err();
  // ...then extract it into the persistent database.
  ASSERT_EQ(cli({"extract", (dir_ / "ws2").string()}), 0) << err();
  EXPECT_NE(out().find("extracted 1 knowledge object(s)"), std::string::npos);
  ASSERT_EQ(cli({"list"}), 0);
  EXPECT_NE(out().find("knowledge"), std::string::npos);
}

TEST_F(CliTest, JobsFlagRunsSweepDeterministically) {
  const std::filesystem::path config = dir_ / "sweep.xml";
  {
    std::ofstream file(config);
    file << "<jube><benchmark name=\"s\" outpath=\"s\">\n"
            "<parameterset name=\"p\"><parameter name=\"t\">256k,512k,1m,2m"
            "</parameter></parameterset>\n"
            "<step name=\"run\">ior -a posix -b 2m -t $t -s 1 -F -w -i 1 "
            "-N 2 -o /scratch/s_$t</step>\n"
            "</benchmark></jube>\n";
  }
  // The same sweep with --jobs 1 and --jobs 4 (separate workspaces and
  // databases) must persist identical knowledge.
  std::string exports[2];
  const char* jobs[2] = {"1", "4"};
  for (int i = 0; i < 2; ++i) {
    const std::string db =
        "file:" + (dir_ / ("k" + std::to_string(i) + ".db")).string();
    const std::string ws = (dir_ / ("ws" + std::to_string(i))).string();
    out_.str("");
    err_.str("");
    ASSERT_EQ(run_cli({"--db", db, "--workspace", ws, "--jobs", jobs[i],
                       "sweep", config.string()},
                      out_, err_),
              0)
        << err();
    EXPECT_NE(out().find("executed 4 work package(s), stored 4"),
              std::string::npos);
    out_.str("");
    ASSERT_EQ(run_cli({"--db", db, "--workspace", ws, "export-csv",
                       "performances"},
                      out_, err_),
              0);
    exports[i] = out();
  }
  EXPECT_EQ(exports[0], exports[1]);
}

TEST_F(CliTest, ResumeFlagRerunsSweepWithoutDuplicates) {
  const std::filesystem::path config = dir_ / "sweep.xml";
  {
    std::ofstream file(config);
    file << "<jube><benchmark name=\"s\" outpath=\"s\">\n"
            "<parameterset name=\"p\"><parameter name=\"t\">256k,1m"
            "</parameter></parameterset>\n"
            "<step name=\"run\">ior -a posix -b 1m -t $t -s 1 -F -w -i 1 "
            "-N 2 -o /scratch/s_$t</step>\n"
            "</benchmark></jube>\n";
  }
  ASSERT_EQ(cli({"sweep", config.string()}), 0) << err();
  EXPECT_NE(out().find("stored 2"), std::string::npos);
  // Re-running the same sweep with --resume reuses the completed run and
  // stores nothing new: same 2 objects, not 4.
  ASSERT_EQ(cli({"--resume", "sweep", config.string()}), 0) << err();
  EXPECT_NE(out().find("stored 0"), std::string::npos) << out();
  ASSERT_EQ(cli({"export-csv", "performances"}), 0);
  // Header + exactly the 2 originally stored rows.
  const std::string csv = out();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3) << csv;
}

TEST_F(CliTest, ResumeFlagAppearsInUsage) {
  ASSERT_EQ(cli({"help"}), 0);
  EXPECT_NE(out().find("--resume"), std::string::npos);
}

TEST_F(CliTest, JobsFlagRejectsBadValues) {
  EXPECT_EQ(cli({"--jobs", "-2", "list"}), 1);
  EXPECT_NE(err().find("--jobs"), std::string::npos);
  EXPECT_EQ(cli({"--jobs"}), 1);
  EXPECT_NE(err().find("--jobs needs a value"), std::string::npos);
}

TEST_F(CliTest, SqlRefusesWritesWithoutWriteFlag) {
  ASSERT_EQ(cli({"run", "ior", "-a", "posix", "-b", "1m", "-t", "1m", "-s",
                 "1", "-F", "-w", "-i", "1", "-N", "2", "-o", "/scratch/g",
                 "-k"}),
            0)
      << err();
  // A mutating statement without --write is refused and changes nothing.
  EXPECT_EQ(cli({"sql", "UPDATE", "performances", "SET", "command", "=",
                 "'patched'"}),
            1);
  EXPECT_NE(err().find("--write"), std::string::npos);
  ASSERT_EQ(cli({"sql", "SELECT", "command", "FROM", "performances"}), 0)
      << err();
  EXPECT_EQ(out().find("patched"), std::string::npos) << out();
  // With --write the same statement runs.
  ASSERT_EQ(cli({"sql", "--write", "UPDATE", "performances", "SET", "command",
                 "=", "'patched'"}),
            0)
      << err();
  ASSERT_EQ(cli({"sql", "SELECT", "command", "FROM", "performances"}), 0);
  EXPECT_NE(out().find("patched"), std::string::npos) << out();
  // Reads never needed the flag in the first place (and still don't).
  ASSERT_EQ(cli({"sql", "--write", "SELECT", "id", "FROM", "performances"}),
            0);
}

TEST_F(CliTest, ServeAndQueryRoundTrip) {
  // Populate the database file, then serve it and query over TCP. The
  // server runs in a thread; ShutdownPipe::trigger() plays the SIGTERM.
  ASSERT_EQ(cli({"run", "ior", "-a", "posix", "-b", "1m", "-t", "1m", "-s",
                 "1", "-F", "-w", "-i", "1", "-N", "2", "-o", "/scratch/v",
                 "-k"}),
            0)
      << err();
  const std::filesystem::path port_file = dir_ / "port";
  const std::filesystem::path metrics = dir_ / "serve_metrics.csv";
  std::ostringstream serve_out;
  std::ostringstream serve_err;
  std::thread server([&] {
    run_cli({"--db", "file:" + (dir_ / "k.db").string(), "--metrics",
             metrics.string(), "serve", "--threads", "2", "--port-file",
             port_file.string()},
            serve_out, serve_err);
  });
  for (int i = 0; i < 100 && !std::filesystem::exists(port_file); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(std::filesystem::exists(port_file)) << serve_err.str();
  std::ifstream in(port_file);
  std::string port;
  in >> port;
  ASSERT_FALSE(port.empty());

  ASSERT_EQ(cli({"query", "127.0.0.1:" + port, "health"}), 0) << err();
  EXPECT_NE(out().find("\"ok\""), std::string::npos);
  ASSERT_EQ(cli({"query", "127.0.0.1:" + port, "sql",
                 R"({"statement":"SELECT id FROM performances"})"}),
            0)
      << err();
  EXPECT_NE(out().find("rows"), std::string::npos);
  // An error response maps to the generic runtime-error exit code.
  EXPECT_EQ(cli({"query", "127.0.0.1:" + port, "no/such/endpoint"}), 2);
  EXPECT_NE(err().find("unknown endpoint"), std::string::npos);

  svc::ShutdownPipe::instance().trigger();
  server.join();
  EXPECT_NE(serve_out.str().find("drained:"), std::string::npos)
      << serve_err.str();
  // svc.* request metrics land in the --metrics CSV.
  std::ifstream csv(metrics);
  const std::string csv_text((std::istreambuf_iterator<char>(csv)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(csv_text.find("svc.requests"), std::string::npos) << csv_text;
  EXPECT_NE(csv_text.find("svc.latency_us"), std::string::npos);
  EXPECT_NE(csv_text.find("svc.bytes_out"), std::string::npos);
}

TEST_F(CliTest, QueryValidatesAddress) {
  EXPECT_EQ(cli({"query"}), 1);
  EXPECT_EQ(cli({"query", "localhost"}), 1);          // no port
  EXPECT_EQ(cli({"query", "host:0", "health"}), 1);   // port out of range
  EXPECT_EQ(cli({"query", "127.0.0.1:1"}), 1);        // missing endpoint
}

TEST_F(CliTest, ServeVerbAppearsInUsage) {
  ASSERT_EQ(cli({"help"}), 0);
  EXPECT_NE(out().find("serve"), std::string::npos);
  EXPECT_NE(out().find("query <host:port>"), std::string::npos);
  EXPECT_NE(out().find("--write"), std::string::npos);
}

}  // namespace
}  // namespace iokc::cli
