#include "src/svc/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/knowledge/knowledge.hpp"
#include "src/persist/repository.hpp"
#include "src/svc/client.hpp"
#include "src/util/error.hpp"

namespace iokc::svc {
namespace {

knowledge::Knowledge make_ior_knowledge(int index) {
  knowledge::Knowledge object;
  object.benchmark = "IOR";
  const int transfer_kib = 256 << (index % 4);
  object.command = "ior -a posix -b 4m -t " + std::to_string(transfer_kib) +
                   "k -s 4 -N " + std::to_string(8 << (index % 3)) +
                   " -o /s/svc" + std::to_string(index);
  object.num_tasks = static_cast<std::uint32_t>(8 << (index % 3));
  knowledge::OpSummary write;
  write.operation = "write";
  write.mean_bw_mib = 900.0 + 120.0 * index;
  object.summaries.push_back(write);
  return object;
}

util::JsonValue params_of(std::initializer_list<
                          std::pair<std::string, util::JsonValue>> entries) {
  util::JsonObject object;
  for (const auto& [key, value] : entries) {
    object.emplace_back(key, value);
  }
  return util::JsonValue(std::move(object));
}

/// Repository pre-seeded so predict has enough samples for the regression.
class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() {
    for (int i = 0; i < 9; ++i) {
      repository_.store(make_ior_knowledge(i));
    }
  }

  Request make_request(const std::string& endpoint,
                       util::JsonValue params =
                           util::JsonValue(util::JsonObject{})) {
    Request request;
    request.endpoint = endpoint;
    request.params = std::move(params);
    return request;
  }

  persist::KnowledgeRepository repository_;
};

TEST_F(ServiceTest, DispatchHealth) {
  Server server(repository_);
  const Response response = server.dispatch(make_request("health"));
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.result.at("status").as_string(), "ok");
}

TEST_F(ServiceTest, DispatchUnknownEndpointFails) {
  Server server(repository_);
  const Response response = server.dispatch(make_request("nope"));
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown endpoint"), std::string::npos);
}

TEST_F(ServiceTest, DispatchSqlSelectsAndRefusesWrites) {
  Server server(repository_);
  const Response rows = server.dispatch(make_request(
      "sql",
      params_of({{"statement",
                  util::JsonValue("SELECT id FROM performances")}})));
  ASSERT_TRUE(rows.ok) << rows.error;
  EXPECT_EQ(rows.result.at("rows").as_array().size(), 9u);

  const Response refused = server.dispatch(make_request(
      "sql",
      params_of({{"statement",
                  util::JsonValue("DELETE FROM performances")}})));
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("read-only"), std::string::npos);
  // Nothing was deleted.
  EXPECT_EQ(repository_.knowledge_ids().size(), 9u);
}

TEST_F(ServiceTest, DispatchSqlExplainAndStatementCache) {
  // Spread num_nodes so the composite key is selective — with every row on
  // one key the planner would (correctly) prefer the scan.
  for (int i = 0; i < 8; ++i) {
    knowledge::Knowledge object = make_ior_knowledge(20 + i);
    object.num_nodes = static_cast<std::uint32_t>(1 + i);
    repository_.store(object);
  }
  Server server(repository_);
  // EXPLAIN is read-only and must show the repository's bootstrapped
  // composite index serving a (benchmark, num_nodes) point query.
  const std::string explain =
      "EXPLAIN SELECT * FROM performances WHERE benchmark = 'IOR' AND "
      "num_nodes = 8";
  const Response plan = server.dispatch(make_request(
      "sql", params_of({{"statement", util::JsonValue(explain)}})));
  ASSERT_TRUE(plan.ok) << plan.error;
  // Cells are positional under "columns": {step, table, access, index, ...}.
  EXPECT_EQ(plan.result.at("columns").as_array().at(2).as_string(), "access");
  const util::JsonValue& row = plan.result.at("rows").as_array().at(0);
  EXPECT_EQ(row.as_array().at(2).as_string(), "ordered_eq");
  EXPECT_EQ(row.as_array().at(3).as_string(),
            "idx_performances_benchmark_nodes");

  // A repeated statement text hits the prepared-statement cache; the stats
  // endpoint reports the traffic.
  server.dispatch(make_request(
      "sql", params_of({{"statement", util::JsonValue(explain)}})));
  const Response stats = server.dispatch(make_request("stats"));
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.result.at("sql_cache_misses").as_int(), 1);
  EXPECT_EQ(stats.result.at("sql_cache_hits").as_int(), 1);
}

TEST_F(ServiceTest, DispatchKnowledgeGetAndStore) {
  Server server(repository_);
  const Response stored = server.dispatch(make_request(
      "knowledge/store",
      params_of({{"object", make_ior_knowledge(40).to_json()}})));
  ASSERT_TRUE(stored.ok) << stored.error;
  const std::int64_t id = stored.result.at("id").as_int();
  EXPECT_EQ(stored.result.at("kind").as_string(), "knowledge");

  const Response loaded = server.dispatch(make_request(
      "knowledge/get", params_of({{"id", util::JsonValue(id)}})));
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(knowledge::Knowledge::from_json(loaded.result.at("object")),
            make_ior_knowledge(40));

  const Response bad_kind = server.dispatch(make_request(
      "knowledge/get", params_of({{"id", util::JsonValue(id)},
                                  {"kind", util::JsonValue("tarot")}})));
  EXPECT_FALSE(bad_kind.ok);

  const Response missing = server.dispatch(make_request(
      "knowledge/get",
      params_of({{"id", util::JsonValue(std::int64_t{999999})}})));
  EXPECT_FALSE(missing.ok);  // DbError surfaced as an error response
}

TEST_F(ServiceTest, DispatchPredictRecommendAnomaly) {
  Server server(repository_);
  const Response predicted = server.dispatch(make_request(
      "predict",
      params_of({{"command",
                  util::JsonValue(
                      "ior -a posix -b 4m -t 1m -s 4 -N 16 -o /s/q")}})));
  ASSERT_TRUE(predicted.ok) << predicted.error;
  EXPECT_EQ(predicted.result.at("samples").as_int(), 9);
  EXPECT_TRUE(predicted.result.at("regression_mib").is_number());
  EXPECT_TRUE(predicted.result.at("knn_mib").is_number());

  const Response recommended = server.dispatch(make_request(
      "recommend",
      params_of({{"command",
                  util::JsonValue(
                      "ior -a posix -b 4m -t 256k -s 4 -N 8 -o /s/q")}})));
  ASSERT_TRUE(recommended.ok) << recommended.error;
  EXPECT_GT(recommended.result.at("evidence_runs").as_int(), 0);

  const std::int64_t id = repository_.knowledge_ids().front();
  const Response anomalies = server.dispatch(make_request(
      "anomaly", params_of({{"id", util::JsonValue(id)}})));
  ASSERT_TRUE(anomalies.ok) << anomalies.error;
  EXPECT_TRUE(anomalies.result.at("anomalies").is_array());
}

TEST_F(ServiceTest, DispatchPredictWithoutSamplesFails) {
  persist::KnowledgeRepository empty;
  Server server(empty);
  const Response response = server.dispatch(make_request(
      "predict",
      params_of({{"command",
                  util::JsonValue(
                      "ior -a posix -b 4m -t 1m -s 4 -N 16 -o /s/q")}})));
  EXPECT_FALSE(response.ok);
}

TEST_F(ServiceTest, EndToEndRoundTrip) {
  Server server(repository_);
  server.start();
  ASSERT_GT(server.port(), 0);

  Client client = Client::connect("127.0.0.1", server.port());
  const Response health = client.call("health");
  ASSERT_TRUE(health.ok) << health.error;

  // Several requests on ONE connection: keep-alive works.
  for (int i = 0; i < 5; ++i) {
    const Response listed = client.call("list");
    ASSERT_TRUE(listed.ok) << listed.error;
    EXPECT_EQ(listed.result.at("knowledge").as_array().size(), 9u);
  }

  // A write over the wire becomes visible to subsequent reads.
  const Response stored = client.call(
      "knowledge/store",
      params_of({{"object", make_ior_knowledge(50).to_json()}}));
  ASSERT_TRUE(stored.ok) << stored.error;
  const Response listed = client.call("list");
  ASSERT_TRUE(listed.ok);
  EXPECT_EQ(listed.result.at("knowledge").as_array().size(), 10u);

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST_F(ServiceTest, MoreConcurrentConnectionsThanWorkers) {
  ServerConfig config;
  config.threads = 4;
  Server server(repository_, config);
  server.start();

  // 8 concurrent keep-alive connections on 4 workers: the supervisor model
  // parks idle connections, so this must not deadlock or starve.
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client = Client::connect("127.0.0.1", server.port());
        for (int i = 0; i < kRequestsEach; ++i) {
          const std::string endpoint =
              (c + i) % 3 == 0 ? "stats" : ((c + i) % 3 == 1 ? "list"
                                                             : "health");
          if (!client.call(endpoint).ok) {
            failures.fetch_add(1);
          }
        }
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients * kRequestsEach));
}

// The pipelining contract: many frames flushed in one send get exactly one
// response each, in request order, with errors interleaved in place.
TEST_F(ServiceTest, PipelinedRequestsComeBackInOrder) {
  Server server(repository_);
  server.start();

  Client client = Client::connect("127.0.0.1", server.port());
  std::vector<Request> batch;
  for (int i = 0; i < 12; ++i) {
    Request request;
    request.params = util::JsonValue(util::JsonObject{});
    if (i % 3 == 2) {
      // Unknown on purpose: the error echoes the endpoint name, which tags
      // the response with the request it answers.
      request.endpoint = "marker-" + std::to_string(i);
    } else {
      request.endpoint = i % 3 == 0 ? "health" : "stats";
    }
    batch.push_back(std::move(request));
  }
  const std::vector<Response> responses = client.call_pipelined(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (i % 3 == 2) {
      EXPECT_FALSE(responses[i].ok);
      EXPECT_NE(responses[i].error.find("marker-" + std::to_string(i)),
                std::string::npos);
    } else {
      ASSERT_TRUE(responses[i].ok) << responses[i].error;
      if (i % 3 == 1) {
        // The stats document carries the split rebuild counters.
        EXPECT_NE(responses[i].result.find("snapshot_full_rebuilds"), nullptr);
        EXPECT_NE(responses[i].result.find("snapshot_delta_applies"), nullptr);
      }
    }
  }
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, batch.size());
  EXPECT_EQ(stats.connections, 1u);
}

// Several connections pipelining concurrently while a writer stores over the
// wire: every connection's responses must match its own request order. Runs
// under tsan in the sanitized preset, doubling as a data-race proof for the
// serve-pass counter tally and the group-commit write path.
TEST_F(ServiceTest, ConcurrentPipelinedClientsEachStayOrdered) {
  ServerConfig config;
  config.threads = 4;
  Server server(repository_, config);
  server.start();

  constexpr int kClients = 6;
  constexpr int kBatches = 5;
  constexpr int kBatchSize = 8;
  constexpr int kStores = 10;
  std::atomic<int> misordered{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client = Client::connect("127.0.0.1", server.port());
        for (int b = 0; b < kBatches; ++b) {
          std::vector<Request> batch;
          for (int i = 0; i < kBatchSize; ++i) {
            Request request;
            request.endpoint = "echo-" + std::to_string(c) + "-" +
                               std::to_string(b) + "-" + std::to_string(i);
            request.params = util::JsonValue(util::JsonObject{});
            batch.push_back(std::move(request));
          }
          const std::vector<Response> responses =
              client.call_pipelined(batch);
          for (int i = 0; i < kBatchSize; ++i) {
            if (responses[static_cast<std::size_t>(i)].error.find(
                    "'" + batch[static_cast<std::size_t>(i)].endpoint +
                    "'") == std::string::npos) {
              misordered.fetch_add(1);
            }
          }
        }
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    try {
      Client client = Client::connect("127.0.0.1", server.port());
      for (int i = 0; i < kStores; ++i) {
        if (!client
                 .call("knowledge/store",
                       params_of({{"object",
                                   make_ior_knowledge(100 + i).to_json()}}))
                 .ok) {
          failures.fetch_add(1);
        }
      }
    } catch (const Error&) {
      failures.fetch_add(1);
    }
  });
  for (std::thread& thread : clients) {
    thread.join();
  }
  writer.join();
  EXPECT_EQ(misordered.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(
                                kClients * kBatches * kBatchSize + kStores));
  // Every echo probe is an error response; every store succeeded.
  EXPECT_EQ(stats.errors,
            static_cast<std::uint64_t>(kClients * kBatches * kBatchSize));
}

TEST_F(ServiceTest, OversizedFrameGetsErrorResponse) {
  ServerConfig config;
  config.max_frame_bytes = 512;
  Server server(repository_, config);
  server.start();

  // The raw socket path: send a frame the server's cap rejects. The client
  // object can't build it (its own cap would fire first).
  Socket raw = connect_to("127.0.0.1", server.port(), 1000);
  write_frame(raw, std::string(1024, ' '), kDefaultMaxFrameBytes);
  const auto reply = read_frame(raw, kDefaultMaxFrameBytes, 2000);
  ASSERT_TRUE(reply.has_value());
  const Response response = Response::from_json(util::parse_json(*reply));
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("cap"), std::string::npos);
  // The connection is dropped afterwards (stream position unrecoverable).
  EXPECT_FALSE(read_frame(raw, kDefaultMaxFrameBytes, 2000).has_value());
  server.stop();
}

TEST_F(ServiceTest, DeeplyNestedFrameGetsErrorResponseNotStackOverflow) {
  // A few kilobytes of '[' used to recurse the parser once per byte on the
  // worker stack; the depth cap turns the attack into an ordinary error
  // response. The frame is well-formed at the framing layer, so the
  // connection survives and keeps serving.
  Server server(repository_);
  server.start();

  Socket raw = connect_to("127.0.0.1", server.port(), 1000);
  std::string bomb(4096, '[');
  write_frame(raw, bomb, kDefaultMaxFrameBytes);
  const auto reply = read_frame(raw, kDefaultMaxFrameBytes, 2000);
  ASSERT_TRUE(reply.has_value());
  const Response response = Response::from_json(util::parse_json(*reply));
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("depth"), std::string::npos) << response.error;

  // Same connection, next frame: a normal request still answers.
  write_frame(raw, R"({"endpoint":"health"})", kDefaultMaxFrameBytes);
  const auto health = read_frame(raw, kDefaultMaxFrameBytes, 2000);
  ASSERT_TRUE(health.has_value());
  EXPECT_TRUE(Response::from_json(util::parse_json(*health)).ok);
  server.stop();
}

TEST_F(ServiceTest, StopIsIdempotentAndRestartable) {
  Server server(repository_);
  server.start();
  const std::uint16_t port = server.port();
  server.stop();
  server.stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
  // The port is released: a fresh server can bind it again.
  ServerConfig config;
  config.port = port;
  Server second(repository_, config);
  second.start();
  EXPECT_EQ(second.port(), port);
  second.stop();
}

TEST_F(ServiceTest, ShutdownPipeTriggersGracefulDrain) {
  Server server(repository_);
  server.start();
  Client client = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.call("health").ok);

  std::thread waiter([&] {
    wait_for_shutdown(server, ShutdownPipe::instance().read_fd());
  });
  ShutdownPipe::instance().trigger();  // what SIGTERM does, in-process
  waiter.join();
  EXPECT_FALSE(server.running());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

}  // namespace
}  // namespace iokc::svc
