#include "src/svc/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/knowledge/knowledge.hpp"
#include "src/persist/repository.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace iokc::svc {
namespace {

knowledge::Knowledge make_knowledge(int index) {
  knowledge::Knowledge object;
  object.benchmark = "IOR";
  object.command = "ior -a posix -b 4m -t 1m -s 4 -N " +
                   std::to_string(8 << (index % 3)) + " -o /s/f" +
                   std::to_string(index);
  knowledge::OpSummary write;
  write.operation = "write";
  write.mean_bw_mib = 1000.0 + index;
  object.summaries.push_back(write);
  return object;
}

TEST(SnapshotStore, SnapshotIsCachedUntilWrite) {
  persist::KnowledgeRepository primary;
  primary.store(make_knowledge(0));
  SnapshotStore store(primary);

  const auto first = store.snapshot();
  const auto second = store.snapshot();
  EXPECT_EQ(first.get(), second.get());  // same clone, no rebuild
  EXPECT_EQ(store.rebuilds(), 1u);

  store.with_write([](persist::KnowledgeRepository& repository) {
    repository.store(make_knowledge(1));
  });
  const auto third = store.snapshot();
  EXPECT_NE(second.get(), third.get());
  EXPECT_EQ(store.rebuilds(), 2u);
  EXPECT_EQ(third->knowledge_ids().size(), 2u);
}

TEST(SnapshotStore, SnapshotPreservesIdsAndContent) {
  persist::KnowledgeRepository primary;
  const std::int64_t id = primary.store(make_knowledge(3));
  SnapshotStore store(primary);
  const auto snapshot = store.snapshot();
  EXPECT_EQ(snapshot->load_knowledge(id), primary.load_knowledge(id));
}

TEST(SnapshotStore, OldSnapshotSurvivesLaterWrites) {
  persist::KnowledgeRepository primary;
  primary.store(make_knowledge(0));
  SnapshotStore store(primary);
  const auto old_snapshot = store.snapshot();
  store.with_write([](persist::KnowledgeRepository& repository) {
    repository.store(make_knowledge(1));
  });
  // The old clone still serves its frozen state.
  EXPECT_EQ(old_snapshot->knowledge_ids().size(), 1u);
  EXPECT_EQ(store.snapshot()->knowledge_ids().size(), 2u);
}

TEST(SnapshotStore, WriteFailureStillInvalidates) {
  persist::KnowledgeRepository primary;
  primary.store(make_knowledge(0));
  SnapshotStore store(primary);
  (void)store.snapshot();
  EXPECT_THROW(store.with_write([](persist::KnowledgeRepository&) {
    throw DbError("injected");
  }),
               DbError);
  (void)store.snapshot();
  EXPECT_EQ(store.rebuilds(), 2u);  // conservatively rebuilt
}

// The concurrency contract behind the service: one writer storing batches
// while N readers take snapshots and run reads against them. Readers must
// never observe a partially-applied batch (every snapshot holds a multiple
// of the batch size), and under tsan this doubles as a data-race proof for
// the shared-clone SELECT path.
TEST(SnapshotStore, ConcurrentReadersNeverSeeTornBatches) {
  constexpr int kBatches = 12;
  constexpr int kBatchSize = 5;
  constexpr int kReaders = 4;

  persist::KnowledgeRepository primary;
  SnapshotStore store(primary);
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int b = 0; b < kBatches; ++b) {
      store.with_write([&](persist::KnowledgeRepository& repository) {
        std::vector<knowledge::Knowledge> batch;
        for (int i = 0; i < kBatchSize; ++i) {
          batch.push_back(make_knowledge(b * kBatchSize + i));
        }
        repository.store_batch(batch);
      });
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<int> torn{0};
  std::atomic<int> reads{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      // do-while: a fast writer may finish before readers start, and each
      // reader must still take at least one snapshot.
      do {
        const auto snapshot = store.snapshot();
        // Exercise the clone's read paths: id listing, SQL, reassembly.
        const std::vector<std::int64_t> ids = snapshot->knowledge_ids();
        if (ids.size() % kBatchSize != 0) {
          torn.fetch_add(1);
        }
        const db::ResultSet rows = snapshot->database().execute(
            "SELECT id, command FROM performances");
        if (rows.size() % kBatchSize != 0) {
          torn.fetch_add(1);
        }
        if (!ids.empty()) {
          (void)snapshot->load_knowledge(ids.back());
        }
        reads.fetch_add(1);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(store.snapshot()->knowledge_ids().size(),
            static_cast<std::size_t>(kBatches * kBatchSize));
}

TEST(SnapshotStore, CountersSplitDeltaAppliesFromFullRebuilds) {
  persist::KnowledgeRepository primary;
  primary.store(make_knowledge(0));
  SnapshotStore store(primary);

  (void)store.snapshot();  // first clone: no cache yet, full rebuild
  store.with_write([](persist::KnowledgeRepository& repository) {
    repository.store(make_knowledge(1));
  });
  (void)store.snapshot();  // cache + one-version delta: the cheap path

  const SnapshotStore::Counters counters = store.counters();
  EXPECT_EQ(counters.full_rebuilds, 1u);
  EXPECT_EQ(counters.delta_applies, 1u);
  EXPECT_EQ(store.rebuilds(), 2u);  // the sum, for pre-split consumers
}

// Property: a snapshot built by the delta path (clone of the previous
// snapshot + captured-statement replay) is byte-identical — compared by
// database dump — to a full from_dump rebuild of the primary, across
// randomized interleavings of store_batch, remove_knowledge, and save_as.
TEST(SnapshotStore, DeltaSnapshotsMatchFullRebuildByteForByte) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("iokc_snapshot_prop_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    persist::KnowledgeRepository primary;
    SnapshotStore store(primary);
    util::Rng rng(seed);
    std::vector<std::int64_t> ids;
    int counter = 0;

    for (int step = 0; step < 25; ++step) {
      const std::int64_t op = rng.uniform_int(0, ids.empty() ? 0 : 2);
      store.with_write([&](persist::KnowledgeRepository& repository) {
        if (op == 1) {
          const std::size_t victim = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
          repository.remove_knowledge(ids[victim]);
          ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
        } else if (op == 2) {
          // A flush, not a data change: its delta entry must replay as a
          // no-op without desynchronizing the version bookkeeping.
          repository.save_as((dir / "flush.db").string());
        } else {
          std::vector<knowledge::Knowledge> batch;
          const std::int64_t size = rng.uniform_int(1, 3);
          for (std::int64_t i = 0; i < size; ++i) {
            batch.push_back(make_knowledge(counter++));
          }
          for (const std::int64_t id : repository.store_batch(batch)) {
            ids.push_back(id);
          }
        }
      });
      if (rng.bernoulli(0.7)) {
        const auto snapshot = store.snapshot();
        const std::string expected =
            persist::KnowledgeRepository::from_dump(primary.database().dump())
                ->database()
                .dump();
        ASSERT_EQ(snapshot->database().dump(), expected)
            << "seed " << seed << " step " << step;
      }
    }
    // The property only bites if the cheap path actually ran.
    EXPECT_GT(store.counters().delta_applies, 0u) << "seed " << seed;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace iokc::svc
