#include "src/svc/protocol.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "src/svc/socket.hpp"
#include "src/util/error.hpp"
#include "src/util/json_writer.hpp"

namespace iokc::svc {
namespace {

TEST(Framing, HeaderRoundTrip) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{255}, std::size_t{65536},
                                 std::size_t{0xFFFFFFFF}}) {
    const auto header = encode_frame_header(size);
    EXPECT_EQ(decode_frame_header(header, 0xFFFFFFFFu), size);
  }
}

TEST(Framing, HeaderIsBigEndian) {
  const auto header = encode_frame_header(0x01020304u);
  EXPECT_EQ(static_cast<unsigned char>(header[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(header[1]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(header[2]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(header[3]), 0x04);
}

TEST(Framing, OversizedPayloadRejectedOnEncode) {
  EXPECT_THROW(encode_frame_header(0x100000000ull), ConfigError);
}

TEST(Framing, OversizedFrameRejectedOnDecode) {
  const auto header = encode_frame_header(2048);
  EXPECT_THROW(decode_frame_header(header, 1024), ParseError);
  EXPECT_EQ(decode_frame_header(header, 2048), 2048u);
}

TEST(Framing, WriteRefusesPayloadOverCap) {
  Socket listener = listen_on("127.0.0.1", 0);
  Socket client = connect_to("127.0.0.1", local_port(listener), 1000);
  EXPECT_THROW(write_frame(client, std::string(2049, 'x'), 2048), ConfigError);
}

TEST(Framing, SocketRoundTripAndCleanEof) {
  Socket listener = listen_on("127.0.0.1", 0);
  const std::uint16_t port = local_port(listener);
  std::string received;
  bool got_eof = false;
  std::thread server([&] {
    Socket connection = accept_connection(listener, 2000);
    ASSERT_TRUE(connection.valid());
    received = read_frame(connection, kDefaultMaxFrameBytes, 2000).value();
    // Second read: the peer closed at a frame boundary -> nullopt, no throw.
    got_eof = !read_frame(connection, kDefaultMaxFrameBytes, 2000).has_value();
  });
  {
    Socket client = connect_to("127.0.0.1", port, 1000);
    write_frame(client, R"({"endpoint":"health"})", kDefaultMaxFrameBytes);
  }  // close -> EOF on the server side
  server.join();
  EXPECT_EQ(received, R"({"endpoint":"health"})");
  EXPECT_TRUE(got_eof);
}

TEST(Framing, MidFrameEofThrows) {
  Socket listener = listen_on("127.0.0.1", 0);
  const std::uint16_t port = local_port(listener);
  std::thread server([&] {
    Socket connection = accept_connection(listener, 2000);
    ASSERT_TRUE(connection.valid());
    EXPECT_THROW(read_frame(connection, kDefaultMaxFrameBytes, 2000), IoError);
  });
  {
    Socket client = connect_to("127.0.0.1", port, 1000);
    // Header promising 100 bytes, then only 3 delivered before close.
    const auto header = encode_frame_header(100);
    send_all(client, std::string_view(header.data(), header.size()));
    send_all(client, "abc");
  }
  server.join();
}

TEST(Framing, ReadTimesOut) {
  Socket listener = listen_on("127.0.0.1", 0);
  Socket client = connect_to("127.0.0.1", local_port(listener), 1000);
  Socket connection = accept_connection(listener, 2000);
  ASSERT_TRUE(connection.valid());
  EXPECT_THROW(read_frame(connection, kDefaultMaxFrameBytes, 50), IoError);
}

TEST(Framing, PeekFrameSeesCompleteFramesInPlace) {
  std::string wire;
  append_frame_to(wire, "first");
  append_frame_to(wire, "second");

  const auto first = peek_frame(wire);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload, "first");
  EXPECT_EQ(first->frame_bytes, kFrameHeaderBytes + 5);
  // Zero copy: the view aliases the wire buffer itself.
  EXPECT_EQ(first->payload.data(), wire.data() + kFrameHeaderBytes);

  const auto second =
      peek_frame(std::string_view(wire).substr(first->frame_bytes));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload, "second");
}

TEST(Framing, PeekFrameReportsIncompleteFrames) {
  std::string wire;
  append_frame_to(wire, "payload");
  // Nothing buffered, a split header, and a split payload: all "not yet".
  EXPECT_FALSE(peek_frame(std::string_view()).has_value());
  for (const std::size_t cut : {std::size_t{1}, std::size_t{3},
                                kFrameHeaderBytes, wire.size() - 1}) {
    EXPECT_FALSE(peek_frame(std::string_view(wire).substr(0, cut)).has_value())
        << cut;
  }
  EXPECT_TRUE(peek_frame(wire).has_value());
}

TEST(Framing, PeekFrameRejectsOversizedHeaderBeforeBuffering) {
  const auto header = encode_frame_header(4096);
  // The length alone is enough to convict: no payload bytes needed.
  EXPECT_THROW(
      peek_frame(std::string_view(header.data(), header.size()), 1024),
      ParseError);
}

TEST(Framing, BeginEndFrameEncodesInPlace) {
  std::string wire = "prior";
  const std::size_t header_offset = begin_frame(wire);
  wire += "{\"a\":1}";
  const std::size_t payload_bytes = end_frame(wire, header_offset);
  EXPECT_EQ(payload_bytes, 7u);
  // The result is byte-identical to the copying primitive.
  std::string expected = "prior";
  append_frame_to(expected, "{\"a\":1}");
  EXPECT_EQ(wire, expected);
  const auto view = peek_frame(std::string_view(wire).substr(5));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->payload, "{\"a\":1}");
}

TEST(Framing, EndFrameRollsBackOversizedPayloads) {
  std::string wire = "keep";
  const std::size_t header_offset = begin_frame(wire);
  wire += std::string(2049, 'x');
  EXPECT_THROW(end_frame(wire, header_offset, 2048), ConfigError);
  EXPECT_EQ(wire, "keep");  // no half-built frame left behind
}

TEST(Framing, SendFrameVRoundTripsLargePayloads) {
  // The gathered header+payload send must land as one well-formed frame,
  // including when the payload spans many socket-level writes.
  Socket listener = listen_on("127.0.0.1", 0);
  const std::uint16_t port = local_port(listener);
  const std::string big(1u << 20, 'k');
  std::string received;
  std::thread server([&] {
    Socket connection = accept_connection(listener, 2000);
    ASSERT_TRUE(connection.valid());
    received = read_frame(connection, kDefaultMaxFrameBytes, 5000).value();
  });
  {
    Socket client = connect_to("127.0.0.1", port, 1000);
    send_frame_v(client, big);
  }
  server.join();
  EXPECT_EQ(received, big);
}

TEST(Protocol, DumpToMatchesToJsonDump) {
  Request request;
  request.endpoint = "knowledge/put";
  util::JsonObject params;
  params.emplace_back("name", util::JsonValue("ior-c16"));
  params.emplace_back("bw", util::JsonValue(1234.5));
  request.params = util::JsonValue(std::move(params));

  std::string direct;
  util::JsonWriter writer(direct);
  request.dump_to(writer);
  EXPECT_EQ(direct, request.to_json().dump());

  const Response response = Response::success(util::parse_json(direct));
  std::string response_direct;
  util::JsonWriter response_writer(response_direct);
  response.dump_to(response_writer);
  EXPECT_EQ(response_direct, response.to_json().dump());
}

TEST(Protocol, RequestRoundTrip) {
  Request request;
  request.endpoint = "knowledge/get";
  util::JsonObject params;
  params.emplace_back("id", util::JsonValue(std::int64_t{7}));
  request.params = util::JsonValue(std::move(params));
  const Request back =
      Request::from_json(util::parse_json(request.to_json().dump()));
  EXPECT_EQ(back.endpoint, "knowledge/get");
  EXPECT_EQ(back.params.at("id").as_int(), 7);
}

TEST(Protocol, RequestParamsDefaultToEmptyObject) {
  const Request request =
      Request::from_json(util::parse_json(R"({"endpoint":"health"})"));
  EXPECT_EQ(request.endpoint, "health");
  EXPECT_TRUE(request.params.is_object());
  EXPECT_TRUE(request.params.as_object().empty());
}

TEST(Protocol, RequestRejectsNonObjectParams) {
  EXPECT_THROW(Request::from_json(util::parse_json(
                   R"({"endpoint":"health","params":[1]})")),
               ParseError);
}

TEST(Protocol, ResponseRoundTrips) {
  const Response ok = Response::success(util::JsonValue(std::int64_t{42}));
  const Response ok_back =
      Response::from_json(util::parse_json(ok.to_json().dump()));
  EXPECT_TRUE(ok_back.ok);
  EXPECT_EQ(ok_back.result.as_int(), 42);

  const Response err = Response::failure("boom");
  const Response err_back =
      Response::from_json(util::parse_json(err.to_json().dump()));
  EXPECT_FALSE(err_back.ok);
  EXPECT_EQ(err_back.error, "boom");
}

}  // namespace
}  // namespace iokc::svc
