#include "src/svc/protocol.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "src/svc/socket.hpp"
#include "src/util/error.hpp"

namespace iokc::svc {
namespace {

TEST(Framing, HeaderRoundTrip) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{255}, std::size_t{65536},
                                 std::size_t{0xFFFFFFFF}}) {
    const auto header = encode_frame_header(size);
    EXPECT_EQ(decode_frame_header(header, 0xFFFFFFFFu), size);
  }
}

TEST(Framing, HeaderIsBigEndian) {
  const auto header = encode_frame_header(0x01020304u);
  EXPECT_EQ(static_cast<unsigned char>(header[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(header[1]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(header[2]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(header[3]), 0x04);
}

TEST(Framing, OversizedPayloadRejectedOnEncode) {
  EXPECT_THROW(encode_frame_header(0x100000000ull), ConfigError);
}

TEST(Framing, OversizedFrameRejectedOnDecode) {
  const auto header = encode_frame_header(2048);
  EXPECT_THROW(decode_frame_header(header, 1024), ParseError);
  EXPECT_EQ(decode_frame_header(header, 2048), 2048u);
}

TEST(Framing, WriteRefusesPayloadOverCap) {
  Socket listener = listen_on("127.0.0.1", 0);
  Socket client = connect_to("127.0.0.1", local_port(listener), 1000);
  EXPECT_THROW(write_frame(client, std::string(2049, 'x'), 2048), ConfigError);
}

TEST(Framing, SocketRoundTripAndCleanEof) {
  Socket listener = listen_on("127.0.0.1", 0);
  const std::uint16_t port = local_port(listener);
  std::string received;
  bool got_eof = false;
  std::thread server([&] {
    Socket connection = accept_connection(listener, 2000);
    ASSERT_TRUE(connection.valid());
    received = read_frame(connection, kDefaultMaxFrameBytes, 2000).value();
    // Second read: the peer closed at a frame boundary -> nullopt, no throw.
    got_eof = !read_frame(connection, kDefaultMaxFrameBytes, 2000).has_value();
  });
  {
    Socket client = connect_to("127.0.0.1", port, 1000);
    write_frame(client, R"({"endpoint":"health"})", kDefaultMaxFrameBytes);
  }  // close -> EOF on the server side
  server.join();
  EXPECT_EQ(received, R"({"endpoint":"health"})");
  EXPECT_TRUE(got_eof);
}

TEST(Framing, MidFrameEofThrows) {
  Socket listener = listen_on("127.0.0.1", 0);
  const std::uint16_t port = local_port(listener);
  std::thread server([&] {
    Socket connection = accept_connection(listener, 2000);
    ASSERT_TRUE(connection.valid());
    EXPECT_THROW(read_frame(connection, kDefaultMaxFrameBytes, 2000), IoError);
  });
  {
    Socket client = connect_to("127.0.0.1", port, 1000);
    // Header promising 100 bytes, then only 3 delivered before close.
    const auto header = encode_frame_header(100);
    send_all(client, std::string_view(header.data(), header.size()));
    send_all(client, "abc");
  }
  server.join();
}

TEST(Framing, ReadTimesOut) {
  Socket listener = listen_on("127.0.0.1", 0);
  Socket client = connect_to("127.0.0.1", local_port(listener), 1000);
  Socket connection = accept_connection(listener, 2000);
  ASSERT_TRUE(connection.valid());
  EXPECT_THROW(read_frame(connection, kDefaultMaxFrameBytes, 50), IoError);
}

TEST(Protocol, RequestRoundTrip) {
  Request request;
  request.endpoint = "knowledge/get";
  util::JsonObject params;
  params.emplace_back("id", util::JsonValue(std::int64_t{7}));
  request.params = util::JsonValue(std::move(params));
  const Request back =
      Request::from_json(util::parse_json(request.to_json().dump()));
  EXPECT_EQ(back.endpoint, "knowledge/get");
  EXPECT_EQ(back.params.at("id").as_int(), 7);
}

TEST(Protocol, RequestParamsDefaultToEmptyObject) {
  const Request request =
      Request::from_json(util::parse_json(R"({"endpoint":"health"})"));
  EXPECT_EQ(request.endpoint, "health");
  EXPECT_TRUE(request.params.is_object());
  EXPECT_TRUE(request.params.as_object().empty());
}

TEST(Protocol, RequestRejectsNonObjectParams) {
  EXPECT_THROW(Request::from_json(util::parse_json(
                   R"({"endpoint":"health","params":[1]})")),
               ParseError);
}

TEST(Protocol, ResponseRoundTrips) {
  const Response ok = Response::success(util::JsonValue(std::int64_t{42}));
  const Response ok_back =
      Response::from_json(util::parse_json(ok.to_json().dump()));
  EXPECT_TRUE(ok_back.ok);
  EXPECT_EQ(ok_back.result.as_int(), 42);

  const Response err = Response::failure("boom");
  const Response err_back =
      Response::from_json(util::parse_json(err.to_json().dump()));
  EXPECT_FALSE(err_back.ok);
  EXPECT_EQ(err_back.error, "boom");
}

}  // namespace
}  // namespace iokc::svc
