#include "src/extract/extractor.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/util/error.hpp"

namespace iokc::extract {
namespace {

/// A fake workspace with hand-written (but format-correct) outputs, so the
/// extractor is tested independently of the engines.
class ExtractorTest : public ::testing::Test {
 protected:
  ExtractorTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("iokc_extract_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  ~ExtractorTest() override { std::filesystem::remove_all(root_); }

  std::filesystem::path make_wp(const std::string& name,
                                const std::string& stdout_text,
                                bool done = true) {
    const std::filesystem::path dir = root_ / "bench" / "000000" / name;
    std::filesystem::create_directories(dir);
    write(dir / "stdout", stdout_text);
    if (done) {
      write(dir / "done", "");
    }
    return dir;
  }

  static void write(const std::filesystem::path& path,
                    const std::string& text) {
    std::ofstream out(path);
    out << text;
  }

  static std::string ior_output() {
    return
        "IOR-3.3.0+sim: MPI Coordinated Test of Parallel I/O\n"
        "Command line        : ior -a POSIX -b 1m -t 256k -s 2 -i 1 -N 4 -o "
        "/s/f -k\n"
        "api                 : POSIX\n"
        "test filename       : /s/f\n"
        "access              : single-shared-file\n"
        "tasks               : 4\n"
        "nodes               : 2\n"
        "Results: \n\n"
        "access    bw(MiB/s)  IOPS  Latency(s) block(KiB) xfer(KiB) open(s) "
        "wr/rd(s) close(s) total(s) iter\n"
        "------\n"
        "write 123.45 61.0 0.01 1024 256 0.001 1.0 0.001 1.01 0\n"
        "Summary of all tests:\n";
  }

  std::filesystem::path root_;
};

TEST_F(ExtractorTest, ExtractsKnowledgeFromFile) {
  const auto dir = make_wp("000000_run", ior_output());
  KnowledgeExtractor extractor;
  const ExtractionResult result = extractor.extract_file(dir / "stdout");
  ASSERT_EQ(result.knowledge.size(), 1u);
  EXPECT_EQ(result.knowledge[0].num_tasks, 4u);
  EXPECT_FALSE(result.knowledge[0].system.has_value());
  EXPECT_FALSE(result.knowledge[0].filesystem.has_value());
}

TEST_F(ExtractorTest, AttachesSiblingSnapshots) {
  const auto dir = make_wp("000000_run", ior_output());
  write(dir / "sysinfo.txt",
        "hostname: n0\nos_release: L\ncpu_model: X\nsockets: 2\n"
        "cores_per_socket: 10\ntotal_cores: 20\nfrequency_mhz: 2500.0\n"
        "l1d_kib: 32\nl2_kib: 256\nl3_kib: 25600\n"
        "memory_bytes: 137438953472\ninterconnect: IB\n");
  write(dir / "fsinfo.txt",
        "fs: beegfs-sim\nEntry type: file\nEntryID: 1-AB-1\n"
        "Metadata node: meta1 [ID: 1]\nStripe pattern details:\n"
        "+ Type: RAID0\n+ Chunksize: 512k\n"
        "+ Number of storage targets: desired: 4; actual: 4\n"
        "+ Storage Pool: 1 (Default)\n");

  KnowledgeExtractor extractor;
  const ExtractionResult result = extractor.extract_file(dir / "stdout");
  ASSERT_EQ(result.knowledge.size(), 1u);
  ASSERT_TRUE(result.knowledge[0].system.has_value());
  EXPECT_EQ(result.knowledge[0].system->hostname, "n0");
  ASSERT_TRUE(result.knowledge[0].filesystem.has_value());
  EXPECT_EQ(result.knowledge[0].filesystem->fs_name, "beegfs-sim");
  EXPECT_EQ(result.knowledge[0].filesystem->chunk_size, 512u * 1024u);
}

TEST_F(ExtractorTest, WorkspaceAutoDiscovery) {
  make_wp("000000_a", ior_output());
  make_wp("000001_b", ior_output());
  make_wp("000002_incomplete", ior_output(), /*done=*/false);
  make_wp("000003_unknown", "some unrecognized output\n");

  KnowledgeExtractor extractor;
  const ExtractionResult result = extractor.extract_workspace(root_);
  EXPECT_EQ(result.knowledge.size(), 2u);
  EXPECT_EQ(result.skipped.size(), 1u);
}

TEST_F(ExtractorTest, ParallelWorkspaceExtractionMatchesSerial) {
  // Each work package gets a distinct test filename so merge order is
  // observable in the results.
  for (int wp = 0; wp < 12; ++wp) {
    char name[32];
    std::snprintf(name, sizeof name, "%06d_run", wp);
    std::string text = ior_output();
    const std::string tagged = "/s/f" + std::to_string(wp);
    for (std::size_t at = text.find("/s/f"); at != std::string::npos;
         at = text.find("/s/f", at + tagged.size())) {
      text.replace(at, 4, tagged);
    }
    make_wp(name, text);
  }
  make_wp("000012_incomplete", ior_output(), /*done=*/false);

  KnowledgeExtractor extractor;
  const ExtractionResult serial = extractor.extract_workspace(root_, 1);
  const ExtractionResult parallel = extractor.extract_workspace(root_, 8);
  ASSERT_EQ(serial.knowledge.size(), 12u);
  ASSERT_EQ(parallel.knowledge.size(), 12u);
  // Merge order is discovery order (sorted paths), independent of jobs.
  for (std::size_t i = 0; i < serial.knowledge.size(); ++i) {
    EXPECT_EQ(serial.knowledge[i].test_file, parallel.knowledge[i].test_file);
    EXPECT_EQ(serial.knowledge[i].test_file,
              "/s/f" + std::to_string(i));
  }
  EXPECT_THROW(extractor.extract_workspace(root_, -1), ConfigError);
}

TEST_F(ExtractorTest, DarshanLogBesideStdoutIsExtracted) {
  const auto dir = make_wp("000000_run", ior_output());
  write(dir / "darshan.log",
        "# darshan log version: 3.41-sim\n# exe: ior -N 4\n# nprocs: 4\n"
        "# module: POSIX\n"
        "POSIX\t-1\t/s/f\tPOSIX_BYTES_WRITTEN\t1048576\n");
  KnowledgeExtractor extractor;
  const ExtractionResult result = extractor.extract_workspace(root_);
  ASSERT_EQ(result.knowledge.size(), 2u);  // IOR report + Darshan source
  bool saw_darshan = false;
  for (const auto& k : result.knowledge) {
    saw_darshan = saw_darshan || k.benchmark == "darshan";
  }
  EXPECT_TRUE(saw_darshan);
}

TEST_F(ExtractorTest, MissingFileThrows) {
  KnowledgeExtractor extractor;
  EXPECT_THROW(extractor.extract_file(root_ / "nope"), IoError);
}

TEST_F(ExtractorTest, EmptyWorkspaceGivesEmptyResult) {
  KnowledgeExtractor extractor;
  const ExtractionResult result = extractor.extract_workspace(root_);
  EXPECT_EQ(result.total(), 0u);
  EXPECT_TRUE(result.skipped.empty());
}

TEST_F(ExtractorTest, MergeCombinesResults) {
  ExtractionResult a;
  a.knowledge.resize(2);
  ExtractionResult b;
  b.knowledge.resize(1);
  b.io500.resize(1);
  b.skipped.emplace_back("/x");
  a.merge(std::move(b));
  EXPECT_EQ(a.knowledge.size(), 3u);
  EXPECT_EQ(a.io500.size(), 1u);
  EXPECT_EQ(a.skipped.size(), 1u);
  EXPECT_EQ(a.total(), 4u);
}

}  // namespace
}  // namespace iokc::extract
