#include "src/extract/parsers.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/fs/pfs.hpp"
#include "src/generators/io500.hpp"
#include "src/generators/ior.hpp"
#include "src/generators/mdtest.hpp"
#include "src/iostack/client.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/slurm.hpp"
#include "src/sim/sysinfo.hpp"
#include "src/util/error.hpp"

namespace iokc::extract {
namespace {

/// Fixture that generates real engine output to parse (text round trip).
class ParserRoundTrip : public ::testing::Test {
 protected:
  ParserRoundTrip() {
    sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 2;
    cluster_ = std::make_unique<sim::Cluster>(queue_, cluster_spec, 17);
    pfs_ = std::make_unique<fs::ParallelFileSystem>(
        *cluster_, fs::PfsSpec::fuchs_beegfs());
    client_ = std::make_unique<iostack::IoClient>(*pfs_,
                                                  iostack::IoApi::kPosix);
  }

  sim::EventQueue queue_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<fs::ParallelFileSystem> pfs_;
  std::unique_ptr<iostack::IoClient> client_;
};

TEST_F(ParserRoundTrip, IorOutputToKnowledge) {
  const gen::IorConfig config = gen::parse_ior_command(
      "ior -a posix -b 1m -t 256k -s 2 -F -C -i 3 -N 4 -o /scratch/pt -k");
  iostack::IoClient client(*pfs_, config.api);
  gen::IorBenchmark bench(client, config, gen::block_rank_mapping({0, 1}, 4));
  const gen::IorRunResult run = bench.run();

  const knowledge::Knowledge k = parse_ior_output(run.render_output());
  EXPECT_EQ(k.benchmark, "IOR");
  EXPECT_EQ(k.api, "POSIX");
  EXPECT_EQ(k.test_file, "/scratch/pt");
  EXPECT_TRUE(k.file_per_process);
  EXPECT_EQ(k.num_tasks, 4u);
  EXPECT_EQ(k.num_nodes, 2u);
  ASSERT_EQ(k.summaries.size(), 2u);

  // Per-iteration numbers survive the text round trip to 2 decimals.
  const knowledge::OpSummary* write = k.find_summary("write");
  ASSERT_NE(write, nullptr);
  ASSERT_EQ(write->results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(write->results[i].bw_mib, run.ops_for("write")[i]->bw_mib,
                0.01);
    EXPECT_EQ(write->results[i].iteration, static_cast<int>(i));
  }
  // The parsed command re-parses into the same configuration.
  const gen::IorConfig reparsed = gen::parse_ior_command(k.command);
  EXPECT_EQ(reparsed.block_size, config.block_size);
  EXPECT_EQ(reparsed.num_tasks, config.num_tasks);
}

TEST_F(ParserRoundTrip, MdtestOutputToKnowledge) {
  gen::MdtestConfig config;
  config.files_per_rank = 30;
  config.num_tasks = 4;
  config.unique_dir_per_task = true;
  config.base_dir = "/scratch/mdt_parse";
  gen::MdtestBenchmark bench(*client_, config,
                             gen::block_rank_mapping({0, 1}, 4));
  const gen::MdtestRunResult run = bench.run();

  const knowledge::Knowledge k = parse_mdtest_output(run.render_output());
  EXPECT_EQ(k.benchmark, "mdtest");
  EXPECT_EQ(k.num_tasks, 4u);
  EXPECT_EQ(k.num_nodes, 2u);
  const knowledge::OpSummary* create = k.find_summary("create");
  ASSERT_NE(create, nullptr);
  EXPECT_NEAR(create->mean_ops, run.iterations[0].creation_rate, 0.01);
}

TEST_F(ParserRoundTrip, Io500OutputToKnowledge) {
  gen::Io500Config config;
  config.num_tasks = 4;
  config.ior_easy_bytes_per_rank = 8ull << 20;
  config.ior_hard_bytes_per_rank = 1ull << 20;
  config.mdtest_easy_files_per_rank = 20;
  config.mdtest_hard_files_per_rank = 10;
  gen::Io500Benchmark bench(*client_, config,
                            gen::block_rank_mapping({0, 1}, 4));
  const gen::Io500Result run = bench.run();

  const knowledge::Io500Knowledge k = parse_io500_output(run.render_output());
  EXPECT_EQ(k.num_tasks, 4u);
  EXPECT_EQ(k.testcases.size(), 12u);
  EXPECT_NEAR(k.score_total, run.score_total, 1e-4);
  const knowledge::Io500Testcase* easy = k.find_testcase("ior-easy-write");
  ASSERT_NE(easy, nullptr);
  EXPECT_NEAR(easy->value, run.find_phase("ior-easy-write")->value, 1e-4);
  EXPECT_EQ(easy->unit, "GiB/s");
}

TEST(Parsers, SysinfoRoundTrip) {
  const sim::SystemInfo info =
      sim::collect_system_info(sim::ClusterSpec::fuchs_csc(), 5);
  const knowledge::SystemInfoRecord record =
      parse_sysinfo(sim::render_sysinfo_summary(info));
  EXPECT_EQ(record.hostname, "FUCHS-CSC-sim-node005");
  EXPECT_EQ(record.total_cores, 20);
  EXPECT_EQ(record.memory_bytes, 128ull << 30);
  EXPECT_EQ(record.interconnect, "InfiniBand FDR");
  EXPECT_DOUBLE_EQ(record.frequency_mhz, 2500.0);
}

TEST(Parsers, SysinfoRejectsEmpty) {
  EXPECT_THROW(parse_sysinfo(""), ParseError);
  EXPECT_THROW(parse_sysinfo("no colons here\n"), ParseError);
}

TEST(Parsers, FsinfoParsesBeeGfsEntryText) {
  const std::string text =
      "Entry type: file\n"
      "EntryID: A-12345678-2\n"
      "Metadata node: meta2 [ID: 2]\n"
      "Stripe pattern details:\n"
      "+ Type: RAID0\n"
      "+ Chunksize: 512k\n"
      "+ Number of storage targets: desired: 4; actual: 4\n"
      "+ Storage Pool: 1 (Default)\n";
  const knowledge::FileSystemInfo info = parse_fsinfo(text, "beegfs-sim");
  EXPECT_EQ(info.fs_name, "beegfs-sim");
  EXPECT_EQ(info.entry_type, "file");
  EXPECT_EQ(info.entry_id, "A-12345678-2");
  EXPECT_EQ(info.metadata_node, 2u);
  EXPECT_EQ(info.stripe_pattern, "RAID0");
  EXPECT_EQ(info.chunk_size, 512u * 1024u);
  EXPECT_EQ(info.num_targets, 4u);
  EXPECT_EQ(info.storage_pool, 1u);
}

TEST(Parsers, FsinfoRejectsMissingEntryId) {
  EXPECT_THROW(parse_fsinfo("Entry type: file\n", "x"), ParseError);
}

TEST(Parsers, FsinfoParsesLustreGetstripeText) {
  const std::string text =
      "/scratch/f\n"
      "lmm_stripe_count:  4\n"
      "lmm_stripe_size:   1048576\n"
      "lmm_pattern:       raid0\n"
      "lmm_layout_gen:    0\n"
      "lmm_stripe_offset: 7\n"
      "lmm_fid:           [0x200000400:0xA3-0000BEEF-1:0x0]\n"
      "lmm_pool:          pool1\n";
  const knowledge::FileSystemInfo info = parse_fsinfo(text, "lustre-sim");
  EXPECT_EQ(info.fs_name, "lustre-sim");
  EXPECT_EQ(info.entry_type, "file");
  EXPECT_EQ(info.entry_id, "A3-0000BEEF-1");
  EXPECT_EQ(info.stripe_pattern, "RAID0");
  EXPECT_EQ(info.chunk_size, 1048576u);
  EXPECT_EQ(info.num_targets, 4u);
  EXPECT_EQ(info.storage_pool, 1u);
  EXPECT_EQ(info.metadata_node, 1u);
}

TEST(Parsers, LustreFsinfoRejectsMissingFid) {
  EXPECT_THROW(parse_fsinfo("lmm_stripe_count: 4\n", "x"), ParseError);
}

TEST(Parsers, JobinfoRoundTripThroughScontrolText) {
  sim::SlurmContext slurm(777);
  const sim::SlurmJobInfo job = slurm.register_job("ior", {0, 1, 2, 3}, 80,
                                                   12.5);
  const knowledge::JobInfoRecord record =
      parse_jobinfo(job.render_scontrol());
  EXPECT_EQ(record.job_id, 777u);
  EXPECT_EQ(record.job_name, "ior");
  EXPECT_EQ(record.partition, "parallel");
  EXPECT_EQ(record.user, "iokc");
  EXPECT_EQ(record.num_nodes, 4u);
  EXPECT_EQ(record.num_tasks, 80u);
  EXPECT_EQ(record.node_list, "node[000-003]");
  EXPECT_DOUBLE_EQ(record.start_time, 12.5);
}

TEST(Parsers, JobinfoRejectsMissingJobId) {
  EXPECT_THROW(parse_jobinfo("JobName=ior\n"), ParseError);
}

TEST(Parsers, MalformedBenchmarkOutputsThrow) {
  EXPECT_THROW(parse_ior_output("IOR-3.3.0+sim\nnothing else\n"), ParseError);
  EXPECT_THROW(parse_ior_output(""), ParseError);
  EXPECT_THROW(parse_mdtest_output("mdtest-3.4.0 was launched\n"), ParseError);
  EXPECT_THROW(parse_io500_output("IO500 version x\n"), ParseError);
  EXPECT_THROW(parse_haccio_output("HACC-IO+sim\n"), ParseError);
  EXPECT_THROW(parse_darshan_log("POSIX -1 f X 1\n"), ParseError);
}

TEST(Parsers, TruncatedIorResultLineIsSkippedNotFatal) {
  // A short garbage line inside Results must not crash the parser as long as
  // at least one valid line exists.
  const std::string text =
      "IOR-3.3.0+sim: x\n"
      "Command line        : ior -N 2\n"
      "Results: \n\n"
      "access    bw(MiB/s)  IOPS  Latency(s)  block(KiB) xfer(KiB) open(s) "
      "wr/rd(s) close(s) total(s) iter\n"
      "------\n"
      "write 100.0 50.0 0.01 1024 256 0.001 1.0 0.001 1.01 0\n"
      "bogus line\n"
      "Summary of all tests:\n";
  const knowledge::Knowledge k = parse_ior_output(text);
  ASSERT_EQ(k.summaries.size(), 1u);
  EXPECT_DOUBLE_EQ(k.summaries[0].results[0].bw_mib, 100.0);
}

TEST(Parsers, SniffsAllFormats) {
  EXPECT_EQ(sniff_format("IOR-3.3.0+sim: x\n"), SourceFormat::kIor);
  EXPECT_EQ(sniff_format("mdtest-3.4.0+sim was launched\n"),
            SourceFormat::kMdtest);
  EXPECT_EQ(sniff_format("IO500 version io500-sim\n"), SourceFormat::kIo500);
  EXPECT_EQ(sniff_format("HACC-IO+sim kernel\n"), SourceFormat::kHaccIo);
  EXPECT_EQ(sniff_format("# darshan log version: 3.41\n"),
            SourceFormat::kDarshan);
  EXPECT_EQ(sniff_format("random text\n"), SourceFormat::kUnknown);
  EXPECT_EQ(sniff_format(""), SourceFormat::kUnknown);
  // Leading blank lines are fine.
  EXPECT_EQ(sniff_format("\n\nIOR-3.3.0: y\n"), SourceFormat::kIor);
}

}  // namespace
}  // namespace iokc::extract
