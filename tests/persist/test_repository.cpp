#include "src/persist/repository.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>

#include "src/util/error.hpp"

namespace iokc::persist {
namespace {

knowledge::Knowledge sample_knowledge(const std::string& command) {
  knowledge::Knowledge k;
  k.command = command;
  k.benchmark = "IOR";
  k.api = "MPIIO";
  k.test_file = "/s/t";
  k.file_per_process = true;
  k.start_time = 0.0;
  k.end_time = 50.5;
  k.num_tasks = 80;
  k.num_nodes = 4;
  knowledge::OpSummary write;
  write.operation = "write";
  write.api = "MPIIO";
  for (int i = 0; i < 3; ++i) {
    knowledge::OpResult r;
    r.iteration = i;
    r.bw_mib = 2800.0 + i;
    r.iops = 1400.0;
    r.latency_sec = 0.05;
    r.open_sec = 0.01;
    r.wrrd_sec = 4.4;
    r.close_sec = 0.002;
    r.total_sec = 4.41;
    write.results.push_back(r);
  }
  write.recompute();
  k.summaries.push_back(write);
  knowledge::FileSystemInfo fs;
  fs.fs_name = "beegfs-sim";
  fs.entry_type = "file";
  fs.entry_id = "1-AB-1";
  fs.metadata_node = 1;
  fs.stripe_pattern = "RAID0";
  fs.chunk_size = 524288;
  fs.num_targets = 4;
  fs.storage_pool = 1;
  k.filesystem = fs;
  knowledge::SystemInfoRecord sys;
  sys.hostname = "n0";
  sys.os_release = "L";
  sys.cpu_model = "Xeon";
  sys.sockets = 2;
  sys.cores_per_socket = 10;
  sys.total_cores = 20;
  sys.frequency_mhz = 2500.0;
  sys.l1d_kib = 32;
  sys.l2_kib = 256;
  sys.l3_kib = 25600;
  sys.memory_bytes = 137438953472ull;
  sys.interconnect = "IB";
  k.system = sys;
  knowledge::JobInfoRecord job;
  job.job_id = 4242;
  job.job_name = "ior";
  job.partition = "parallel";
  job.user = "iokc";
  job.num_nodes = 4;
  job.num_tasks = 80;
  job.node_list = "node[000-003]";
  job.submit_time = 0.5;
  job.start_time = 0.5;
  k.job = job;
  return k;
}

knowledge::Io500Knowledge sample_io500() {
  knowledge::Io500Knowledge k;
  k.command = "io500 -N 40";
  k.num_tasks = 40;
  k.num_nodes = 2;
  k.score_bw_gib = 0.78;
  k.score_md_kiops = 9.1;
  k.score_total = 2.66;
  for (const char* name : {"ior-easy-write", "ior-hard-write", "find"}) {
    knowledge::Io500Testcase testcase;
    testcase.name = name;
    testcase.options = "opts";
    testcase.value = 1.25;
    testcase.unit = "GiB/s";
    testcase.time_sec = 30.0;
    k.testcases.push_back(testcase);
  }
  k.system = sample_knowledge("x").system;
  return k;
}

TEST(RepoTarget, ParsesAllForms) {
  EXPECT_EQ(RepoTarget::parse("mem:").kind, RepoTarget::Kind::kMemory);
  EXPECT_EQ(RepoTarget::parse("").kind, RepoTarget::Kind::kMemory);
  const RepoTarget file = RepoTarget::parse("file:/tmp/k.db");
  EXPECT_EQ(file.kind, RepoTarget::Kind::kFile);
  EXPECT_EQ(file.path, "/tmp/k.db");
  EXPECT_EQ(RepoTarget::parse("/tmp/k.db").path, "/tmp/k.db");
  const RepoTarget remote =
      RepoTarget::parse("remote://share/global.db", "/mnt/pfs");
  EXPECT_EQ(remote.path, "/mnt/pfs/share/global.db");
  EXPECT_THROW(RepoTarget::parse("remote://x/y"), ConfigError);
  EXPECT_THROW(RepoTarget::parse("http://example.com/db"), ConfigError);
}

TEST(Repository, SchemaCreatesAllNineTablesPlusSysinfo) {
  KnowledgeRepository repo;
  for (const char* table :
       {"performances", "summaries", "results", "filesystems", "IOFHsRuns",
        "IOFHsScores", "IOFHsTestcases", "IOFHsOptions", "IOFHsResults",
        "systeminfos"}) {
    EXPECT_TRUE(repo.database().has_table(table)) << table;
  }
}

TEST(Repository, StoreLoadRoundTripKnowledge) {
  KnowledgeRepository repo;
  const knowledge::Knowledge original = sample_knowledge("ior -N 80");
  const std::int64_t id = repo.store(original);
  EXPECT_GT(id, 0);
  const knowledge::Knowledge restored = repo.load_knowledge(id);
  EXPECT_EQ(restored, original);
}

TEST(Repository, StoreLoadRoundTripIo500) {
  KnowledgeRepository repo;
  const knowledge::Io500Knowledge original = sample_io500();
  const std::int64_t id = repo.store(original);
  const knowledge::Io500Knowledge restored = repo.load_io500(id);
  EXPECT_EQ(restored, original);
}

TEST(Repository, ListsAndIds) {
  KnowledgeRepository repo;
  repo.store(sample_knowledge("cmd A"));
  repo.store(sample_knowledge("cmd B"));
  repo.store(sample_io500());
  EXPECT_EQ(repo.knowledge_ids().size(), 2u);
  EXPECT_EQ(repo.io500_ids().size(), 1u);
  const auto commands = repo.list_commands();
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_EQ(commands[0].second, "cmd A");
  EXPECT_EQ(commands[1].second, "cmd B");
}

TEST(Repository, StoreBatchAssignsIdsInInputOrder) {
  KnowledgeRepository repo;
  std::vector<knowledge::Knowledge> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(sample_knowledge("cmd " + std::to_string(i)));
  }
  const std::vector<std::int64_t> ids = repo.store_batch(batch);
  ASSERT_EQ(ids.size(), 5u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(ids[i], ids[i - 1]);
    }
    EXPECT_EQ(repo.load_knowledge(ids[i]).command,
              "cmd " + std::to_string(i));
  }
  EXPECT_TRUE(repo.store_batch(std::vector<knowledge::Knowledge>{}).empty());

  const std::vector<std::int64_t> io500_ids =
      repo.store_batch(std::vector<knowledge::Io500Knowledge>{sample_io500()});
  ASSERT_EQ(io500_ids.size(), 1u);
  EXPECT_EQ(repo.load_io500(io500_ids[0]), sample_io500());
}

TEST(Repository, BatchStoreMatchesSerialStores) {
  KnowledgeRepository serial;
  KnowledgeRepository batched;
  std::vector<knowledge::Knowledge> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(sample_knowledge("cmd " + std::to_string(i)));
    serial.store(batch.back());
  }
  batched.store_batch(batch);
  EXPECT_EQ(serial.database().dump(), batched.database().dump());
}

TEST(Repository, LoadUnknownIdThrows) {
  KnowledgeRepository repo;
  EXPECT_THROW(repo.load_knowledge(77), DbError);
  EXPECT_THROW(repo.load_io500(77), DbError);
}

TEST(Repository, RemoveKnowledgeCascades) {
  KnowledgeRepository repo;
  const std::int64_t keep = repo.store(sample_knowledge("keep"));
  const std::int64_t remove = repo.store(sample_knowledge("remove"));
  repo.remove_knowledge(remove);
  EXPECT_EQ(repo.knowledge_ids(), std::vector<std::int64_t>{keep});
  // All children of the removed object are gone.
  EXPECT_EQ(repo.database()
                .execute("SELECT * FROM summaries WHERE performance_id = " +
                         std::to_string(remove))
                .size(),
            0u);
  EXPECT_EQ(repo.load_knowledge(keep).command, "keep");
}

TEST(Repository, SaveAndReopenFromFile) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("iokc_repo_test_" + std::to_string(::getpid()) + ".db");
  std::filesystem::remove(path);
  const knowledge::Knowledge original = sample_knowledge("persisted");
  std::int64_t id = 0;
  {
    KnowledgeRepository repo(RepoTarget::parse("file:" + path.string()));
    id = repo.store(original);
    repo.save();
  }
  {
    KnowledgeRepository reopened(RepoTarget::parse("file:" + path.string()));
    EXPECT_EQ(reopened.load_knowledge(id), original);
    // New objects continue the id sequence.
    EXPECT_GT(reopened.store(sample_knowledge("new")), id);
  }
  std::filesystem::remove(path);
}

TEST(Repository, CsvExportHasHeaderAndRows) {
  KnowledgeRepository repo;
  repo.store(sample_knowledge("csv me"));
  const std::string csv = repo.export_csv("performances");
  EXPECT_NE(csv.find("id,command"), std::string::npos);
  EXPECT_NE(csv.find("csv me"), std::string::npos);
  EXPECT_THROW(repo.export_csv("nope"), DbError);
}

TEST(Repository, CommandsWithQuotesSurvive) {
  KnowledgeRepository repo;
  knowledge::Knowledge k = sample_knowledge("ior -o /tmp/it's a 'test'");
  const std::int64_t id = repo.store(k);
  EXPECT_EQ(repo.load_knowledge(id).command, "ior -o /tmp/it's a 'test'");
}

TEST(Repository, JsonExportImportRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("iokc_repo_json_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  KnowledgeRepository source;
  const std::int64_t k_id = source.store(sample_knowledge("exported"));
  const std::int64_t io_id = source.store(sample_io500());
  source.export_knowledge_json(k_id, (dir / "k.json").string());
  source.export_io500_json(io_id, (dir / "io.json").string());

  // "Manually upload" both into a different (local) repository.
  KnowledgeRepository target;
  const std::int64_t new_k = target.import_json_file((dir / "k.json").string());
  const std::int64_t new_io =
      target.import_json_file((dir / "io.json").string());
  EXPECT_EQ(target.load_knowledge(new_k), source.load_knowledge(k_id));
  EXPECT_EQ(target.load_io500(new_io), source.load_io500(io_id));

  EXPECT_THROW(target.import_json_file((dir / "missing.json").string()),
               IoError);
  std::filesystem::remove_all(dir);
}

TEST(Repository, SystemInfoSharedByBothKinds) {
  KnowledgeRepository repo;
  repo.store(sample_knowledge("a"));
  repo.store(sample_io500());
  const auto rows = repo.database().execute("SELECT * FROM systeminfos");
  EXPECT_EQ(rows.size(), 2u);
}

// Regression: a throw mid-batch (here: a NaN metric in the middle object)
// used to leave the leading objects and their children half-committed.
TEST(Repository, FailingBatchLeavesNoOrphans) {
  KnowledgeRepository repo;
  const std::string before = repo.database().dump();
  std::vector<knowledge::Knowledge> batch;
  batch.push_back(sample_knowledge("first"));
  batch.push_back(sample_knowledge("second"));
  batch[1].summaries[0].mean_bw_mib = std::nan("");
  batch.push_back(sample_knowledge("third"));
  EXPECT_THROW(repo.store_batch(batch), DbError);
  // Not just "no performances": no summaries, results, or sysinfos either.
  EXPECT_EQ(repo.database().dump(), before);
  // The repository stays usable and id assignment starts where it would
  // have without the failed attempt.
  EXPECT_EQ(repo.store(sample_knowledge("retry")), 1);
}

TEST(Repository, FailingSingleStoreRollsBackChildren) {
  KnowledgeRepository repo;
  knowledge::Knowledge bad = sample_knowledge("bad");
  bad.summaries[0].results[2].bw_mib =
      std::numeric_limits<double>::infinity();
  const std::string before = repo.database().dump();
  EXPECT_THROW(repo.store(bad), DbError);
  EXPECT_EQ(repo.database().dump(), before);
}

TEST(Repository, StoreSourcesCommitsPerSourceAndSkipsRecorded) {
  KnowledgeRepository repo;
  std::vector<SourceBatch> batches(2);
  batches[0].source = "sweep/000000/000000_run/stdout";
  batches[0].knowledge.push_back(sample_knowledge("a"));
  batches[0].knowledge.push_back(sample_knowledge("b"));
  batches[1].source = "sweep/000000/000001_run/stdout";
  batches[1].io500.push_back(sample_io500());
  const StoreOutcome first = repo.store_sources(batches);
  EXPECT_EQ(first.knowledge_ids, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(first.io500_ids, (std::vector<std::int64_t>{1}));
  EXPECT_TRUE(first.skipped_sources.empty());
  EXPECT_EQ(repo.extracted_sources(),
            (std::vector<std::string>{batches[0].source, batches[1].source}));

  // Storing the same sources again is a no-op — exactly-once semantics.
  const std::string dump = repo.database().dump();
  const StoreOutcome second = repo.store_sources(batches);
  EXPECT_TRUE(second.knowledge_ids.empty());
  EXPECT_TRUE(second.io500_ids.empty());
  EXPECT_EQ(second.skipped_sources.size(), 2u);
  EXPECT_EQ(repo.database().dump(), dump);
}

TEST(Repository, StoreSourcesFailureKeepsEarlierSources) {
  KnowledgeRepository repo;
  std::vector<SourceBatch> batches(2);
  batches[0].source = "good";
  batches[0].knowledge.push_back(sample_knowledge("ok"));
  batches[1].source = "bad";
  batches[1].knowledge.push_back(sample_knowledge("broken"));
  batches[1].knowledge[0].end_time = std::nan("");
  EXPECT_THROW(repo.store_sources(batches), DbError);
  // Source 0 committed; source 1 vanished entirely.
  EXPECT_EQ(repo.extracted_sources(), (std::vector<std::string>{"good"}));
  EXPECT_EQ(repo.knowledge_ids().size(), 1u);
  // A retry with the bad source fixed completes idempotently.
  batches[1].knowledge[0].end_time = 1.0;
  const StoreOutcome retry = repo.store_sources(batches);
  EXPECT_EQ(retry.skipped_sources, (std::vector<std::string>{"good"}));
  EXPECT_EQ(retry.knowledge_ids.size(), 1u);
  EXPECT_EQ(repo.knowledge_ids().size(), 2u);
}

}  // namespace
}  // namespace iokc::persist
