#include "src/iostack/client.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/iostack/hints.hpp"
#include "src/iostack/pattern.hpp"
#include "src/util/error.hpp"

namespace iokc::iostack {
namespace {

TEST(Pattern, ApiStrings) {
  EXPECT_EQ(to_string(IoApi::kPosix), "POSIX");
  EXPECT_EQ(to_string(IoApi::kMpiio), "MPIIO");
  EXPECT_EQ(to_string(IoApi::kHdf5), "HDF5");
  EXPECT_EQ(api_from_string("posix"), IoApi::kPosix);
  EXPECT_EQ(api_from_string("MPIIO"), IoApi::kMpiio);
  EXPECT_EQ(api_from_string("mpi-io"), IoApi::kMpiio);
  EXPECT_EQ(api_from_string("hdf5"), IoApi::kHdf5);
  EXPECT_THROW(api_from_string("netcdf"), ParseError);
}

TEST(Pattern, AccessAndFileModeStrings) {
  EXPECT_EQ(access_pattern_from_string("sequential"),
            AccessPattern::kSequential);
  EXPECT_EQ(access_pattern_from_string("Random"), AccessPattern::kRandom);
  EXPECT_THROW(access_pattern_from_string("zigzag"), ParseError);
  EXPECT_EQ(file_mode_from_string("file-per-process"),
            FileMode::kFilePerProcess);
  EXPECT_EQ(file_mode_from_string("single-shared-file"),
            FileMode::kSharedFile);
  EXPECT_EQ(file_mode_from_string("fpg"), FileMode::kFilePerGroup);
  EXPECT_THROW(file_mode_from_string("x"), ParseError);
  EXPECT_EQ(to_string(FileMode::kFilePerGroup), "file-per-group");
}

TEST(Hints, RenderParseRoundTrip) {
  MpiioHints hints;
  hints.collective_buffering = false;
  hints.cb_nodes = 4;
  hints.cb_buffer_size = 8 * 1024 * 1024;
  const MpiioHints parsed = parse_hints(render_hints(hints));
  EXPECT_EQ(parsed, hints);
}

TEST(Hints, EmptyTextGivesDefaults) {
  EXPECT_EQ(parse_hints(""), MpiioHints{});
  EXPECT_EQ(parse_hints("   "), MpiioHints{});
}

TEST(Hints, RejectsUnknownKeys) {
  EXPECT_THROW(parse_hints("bogus=1"), ParseError);
  EXPECT_THROW(parse_hints("cb_nodes"), ParseError);
}

TEST(ApiCosts, Hdf5CostsMoreThanMpiioCostsMoreThanPosix) {
  const ApiCosts posix = default_api_costs(IoApi::kPosix);
  const ApiCosts mpiio = default_api_costs(IoApi::kMpiio);
  const ApiCosts hdf5 = default_api_costs(IoApi::kHdf5);
  EXPECT_LT(posix.per_op_sec, mpiio.per_op_sec);
  EXPECT_LT(mpiio.per_op_sec, hdf5.per_op_sec);
  EXPECT_LT(posix.open_sec, hdf5.open_sec);
}

/// Fixture with a small environment.
class IoClientTest : public ::testing::Test {
 protected:
  IoClientTest() {
    sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 4;
    cluster_spec.jitter_sigma = 0.0;
    cluster_ = std::make_unique<sim::Cluster>(queue_, cluster_spec, 3);
    fs::PfsSpec pfs_spec;
    pfs_spec.targets.assign(4, fs::TargetSpec{100.0e6, 150.0e6, 1.0e-4});
    pfs_ = std::make_unique<fs::ParallelFileSystem>(*cluster_, pfs_spec);
  }

  double timed(const std::function<void(IoClient::Callback)>& op) {
    const double start = queue_.now();
    bool fired = false;
    op([&fired](sim::SimTime) { fired = true; });
    queue_.run();
    EXPECT_TRUE(fired);
    return queue_.now() - start;
  }

  sim::EventQueue queue_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<fs::ParallelFileSystem> pfs_;
};

TEST_F(IoClientTest, OpenCreateWriteReadCloseChain) {
  IoClient client(*pfs_, IoApi::kPosix);
  timed([&](auto cb) { client.open("/f", 0, true, cb); });
  EXPECT_TRUE(pfs_->exists("/f"));
  timed([&](auto cb) { client.write("/f", 0, 1 << 20, 0, cb); });
  timed([&](auto cb) { client.read("/f", 0, 1 << 20, 1, cb); });
  timed([&](auto cb) { client.fsync("/f", 0, cb); });
  timed([&](auto cb) { client.close("/f", 0, cb); });
}

TEST_F(IoClientTest, Hdf5CreateWritesSuperblock) {
  IoClient client(*pfs_, IoApi::kHdf5);
  timed([&](auto cb) { client.open("/h5", 0, true, cb); });
  EXPECT_GE(pfs_->find_entry("/h5")->size, 2048u);
}

TEST_F(IoClientTest, CollectiveBufferingAggregatesSmallWrites) {
  // 32 ranks each writing 47008 bytes into a shared file: two-phase I/O
  // should beat independent small writes.
  MpiioHints buffered;
  buffered.collective_buffering = true;
  MpiioHints unbuffered;
  unbuffered.collective_buffering = false;

  std::vector<CollectiveRequest> requests;
  for (std::uint32_t r = 0; r < 32; ++r) {
    requests.push_back(CollectiveRequest{r * 47008ull, 47008, r % 4});
  }

  IoClient independent(*pfs_, IoApi::kMpiio, unbuffered);
  timed([&](auto cb) { independent.open("/ind", 0, true, cb); });
  const double independent_time =
      timed([&](auto cb) { independent.write_collective("/ind", requests, cb); });

  IoClient collective(*pfs_, IoApi::kMpiio, buffered);
  timed([&](auto cb) { collective.open("/col", 0, true, cb); });
  const double collective_time =
      timed([&](auto cb) { collective.write_collective("/col", requests, cb); });

  EXPECT_LT(collective_time, independent_time);
}

TEST_F(IoClientTest, CollectiveReadCompletes) {
  IoClient client(*pfs_, IoApi::kMpiio);
  timed([&](auto cb) { client.open("/f", 0, true, cb); });
  std::vector<CollectiveRequest> writes;
  for (std::uint32_t r = 0; r < 8; ++r) {
    writes.push_back(CollectiveRequest{r * (1ull << 20), 1 << 20, r % 4});
  }
  timed([&](auto cb) { client.write_collective("/f", writes, cb); });
  timed([&](auto cb) { client.read_collective("/f", writes, cb); });
}

TEST_F(IoClientTest, CollectiveWithNoRequestsThrows) {
  IoClient client(*pfs_, IoApi::kMpiio);
  timed([&](auto cb) { client.open("/f", 0, true, cb); });
  EXPECT_THROW(client.write_collective("/f", {}, [](sim::SimTime) {}),
               ConfigError);
}

TEST_F(IoClientTest, CbNodesLimitsAggregators) {
  MpiioHints hints;
  hints.cb_nodes = 1;
  IoClient client(*pfs_, IoApi::kMpiio, hints);
  timed([&](auto cb) { client.open("/f", 0, true, cb); });
  std::vector<CollectiveRequest> requests;
  for (std::uint32_t r = 0; r < 8; ++r) {
    requests.push_back(CollectiveRequest{r * (1ull << 20), 1 << 20, r % 4});
  }
  // Just exercises the single-aggregator path; must complete.
  timed([&](auto cb) { client.write_collective("/f", requests, cb); });
}

TEST_F(IoClientTest, PosixOpsAreCheaperThanHdf5) {
  IoClient posix(*pfs_, IoApi::kPosix);
  IoClient hdf5(*pfs_, IoApi::kHdf5);
  timed([&](auto cb) { posix.open("/p", 0, true, cb); });
  timed([&](auto cb) { hdf5.open("/h", 0, true, cb); });
  const double posix_time =
      timed([&](auto cb) { posix.write("/p", 0, 4096, 0, cb); });
  const double hdf5_time =
      timed([&](auto cb) { hdf5.write("/h", 0, 4096, 0, cb); });
  EXPECT_LT(posix_time, hdf5_time);
}

}  // namespace
}  // namespace iokc::iostack
