#include "src/jube/xml.hpp"

#include <gtest/gtest.h>

#include "src/util/error.hpp"

namespace iokc::jube {
namespace {

TEST(Xml, ParsesElementWithAttributes) {
  const XmlNode root = parse_xml(R"(<benchmark name="ior" outpath="runs"/>)");
  EXPECT_EQ(root.name, "benchmark");
  EXPECT_EQ(root.attribute("name"), "ior");
  EXPECT_EQ(root.attribute("outpath"), "runs");
  EXPECT_EQ(root.find_attribute("missing"), nullptr);
  EXPECT_THROW(root.attribute("missing"), ParseError);
}

TEST(Xml, ParsesNestedChildrenAndText) {
  const XmlNode root = parse_xml(R"(
    <jube>
      <benchmark name="b">
        <parameterset name="p">
          <parameter name="x">1,2</parameter>
          <parameter name="y">a</parameter>
        </parameterset>
        <step name="run">ior -t $x</step>
      </benchmark>
    </jube>)");
  EXPECT_EQ(root.name, "jube");
  const XmlNode* bench = root.find_child("benchmark");
  ASSERT_NE(bench, nullptr);
  const XmlNode* set = bench->find_child("parameterset");
  ASSERT_NE(set, nullptr);
  const auto parameters = set->children_named("parameter");
  ASSERT_EQ(parameters.size(), 2u);
  EXPECT_EQ(parameters[0]->text, "1,2");
  const XmlNode* step = bench->find_child("step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->text, "ior -t $x");
}

TEST(Xml, HandlesDeclarationAndComments) {
  const XmlNode root = parse_xml(
      "<?xml version=\"1.0\"?>\n<!-- top comment -->\n"
      "<a><!-- inner --><b/></a>");
  EXPECT_EQ(root.name, "a");
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "b");
}

TEST(Xml, DecodesEntities) {
  const XmlNode root =
      parse_xml(R"(<x attr="a&amp;b">1 &lt; 2 &gt; 0 &quot;q&quot;</x>)");
  EXPECT_EQ(root.attribute("attr"), "a&b");
  EXPECT_EQ(root.text, "1 < 2 > 0 \"q\"");
}

TEST(Xml, SingleQuotedAttributes) {
  const XmlNode root = parse_xml("<x a='v'/>");
  EXPECT_EQ(root.attribute("a"), "v");
}

TEST(Xml, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_xml(""), ParseError);
  EXPECT_THROW(parse_xml("<a>"), ParseError);
  EXPECT_THROW(parse_xml("<a></b>"), ParseError);
  EXPECT_THROW(parse_xml("<a b=c/>"), ParseError);
  EXPECT_THROW(parse_xml("<a>&bogus;</a>"), ParseError);
  EXPECT_THROW(parse_xml("<a/><b/>"), ParseError);
  EXPECT_THROW(parse_xml("<a><!-- unterminated </a>"), ParseError);
}

TEST(Xml, MixedTextAndChildren) {
  const XmlNode root = parse_xml("<a>pre<b/>post</a>");
  EXPECT_EQ(root.text, "prepost");
  EXPECT_EQ(root.children.size(), 1u);
}

}  // namespace
}  // namespace iokc::jube
