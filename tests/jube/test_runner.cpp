#include "src/jube/runner.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "src/util/error.hpp"

namespace iokc::jube {
namespace {

/// Temporary workspace removed at teardown.
class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest() {
    workspace_ = std::filesystem::temp_directory_path() /
                 ("iokc_jube_test_" + std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(workspace_);
  }
  ~RunnerTest() override { std::filesystem::remove_all(workspace_); }

  static ExecutorRegistry echo_registry() {
    ExecutorRegistry registry;
    registry.register_executor("echo", [](const std::string& command) {
      ExecutionOutput output;
      output.stdout_text = command + "\n";
      output.extra_files.emplace_back("extra.txt", "extra data");
      return output;
    });
    return registry;
  }

  static std::string read_file(const std::filesystem::path& path) {
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
  }

  std::filesystem::path workspace_;
};

TEST_F(RunnerTest, CreatesJubeShapedWorkspace) {
  JubeRunner runner(workspace_, echo_registry());
  JubeBenchmarkConfig config;
  config.name = "sweep";
  config.outpath = "bench_run";
  config.space.add_csv("x", "1,2");
  config.steps.push_back(JubeStep{"run", "echo value $x"});

  const JubeRunResult result = runner.run(config);
  EXPECT_EQ(result.run_id, 0);
  ASSERT_EQ(result.packages.size(), 2u);
  EXPECT_EQ(result.packages[0].command, "echo value 1");
  EXPECT_EQ(result.packages[1].command, "echo value 2");
  EXPECT_TRUE(std::filesystem::exists(result.run_dir / "configuration.xml"));
  for (const WorkPackageResult& package : result.packages) {
    EXPECT_TRUE(std::filesystem::exists(package.stdout_path));
    EXPECT_TRUE(std::filesystem::exists(package.dir / "done"));
    EXPECT_TRUE(std::filesystem::exists(package.dir / "parameters.txt"));
    EXPECT_TRUE(std::filesystem::exists(package.dir / "command.txt"));
    EXPECT_TRUE(std::filesystem::exists(package.dir / "extra.txt"));
  }
  EXPECT_EQ(read_file(result.packages[0].stdout_path), "echo value 1\n");
  EXPECT_EQ(read_file(result.packages[0].dir / "parameters.txt"), "x: 1\n");
}

TEST_F(RunnerTest, RunIdsIncrement) {
  JubeRunner runner(workspace_, echo_registry());
  JubeBenchmarkConfig config;
  config.name = "b";
  config.steps.push_back(JubeStep{"run", "echo hi"});
  EXPECT_EQ(runner.run(config).run_id, 0);
  EXPECT_EQ(runner.run(config).run_id, 1);
  EXPECT_EQ(runner.run(config).run_id, 2);
}

TEST_F(RunnerTest, UnknownProgramThrows) {
  JubeRunner runner(workspace_, echo_registry());
  JubeBenchmarkConfig config;
  config.name = "b";
  config.steps.push_back(JubeStep{"run", "nosuch --flag"});
  EXPECT_THROW(runner.run(config), ConfigError);
}

TEST_F(RunnerTest, DiscoverOutputsFindsCompletedSteps) {
  JubeRunner runner(workspace_, echo_registry());
  JubeBenchmarkConfig config;
  config.name = "b";
  config.space.add_csv("x", "1,2,3");
  config.steps.push_back(JubeStep{"run", "echo $x"});
  runner.run(config);

  const auto outputs = JubeRunner::discover_outputs(workspace_);
  EXPECT_EQ(outputs.size(), 3u);

  // Remove one "done" marker: that output becomes invisible.
  std::filesystem::remove(outputs[0].parent_path() / "done");
  EXPECT_EQ(JubeRunner::discover_outputs(workspace_).size(), 2u);
  // Nonexistent root: empty.
  EXPECT_TRUE(JubeRunner::discover_outputs(workspace_ / "nope").empty());
}

TEST_F(RunnerTest, ConfigXmlRoundTrip) {
  JubeBenchmarkConfig config;
  config.name = "ior-sweep";
  config.outpath = "runs";
  config.space.add_csv("transfer", "1m,2m,4m");
  config.space.add_csv("tasks", "40,80");
  config.steps.push_back(
      JubeStep{"run", "ior -a mpiio -t $transfer -N $tasks"});

  const JubeBenchmarkConfig parsed =
      JubeBenchmarkConfig::from_xml_text(config.to_xml());
  EXPECT_EQ(parsed.name, "ior-sweep");
  EXPECT_EQ(parsed.outpath, "runs");
  EXPECT_EQ(parsed.space.size(), 6u);
  ASSERT_EQ(parsed.steps.size(), 1u);
  EXPECT_EQ(parsed.steps[0].command_template,
            "ior -a mpiio -t $transfer -N $tasks");
}

TEST_F(RunnerTest, FromXmlRejectsBadConfigs) {
  EXPECT_THROW(JubeBenchmarkConfig::from_xml_text("<jube></jube>"),
               ParseError);
  EXPECT_THROW(JubeBenchmarkConfig::from_xml_text("<other/>"), ParseError);
  EXPECT_THROW(JubeBenchmarkConfig::from_xml_text(
                   "<benchmark name=\"b\"></benchmark>"),
               ParseError);  // no steps
}

TEST_F(RunnerTest, RegistryRejectsEmptyExecutor) {
  ExecutorRegistry registry;
  EXPECT_THROW(registry.register_executor("x", CommandExecutor{}),
               ConfigError);
  EXPECT_EQ(registry.find("missing"), nullptr);
}

}  // namespace
}  // namespace iokc::jube
