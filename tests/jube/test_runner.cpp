#include "src/jube/runner.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "src/util/error.hpp"

namespace iokc::jube {
namespace {

/// Temporary workspace removed at teardown.
class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest() {
    workspace_ = std::filesystem::temp_directory_path() /
                 ("iokc_jube_test_" + std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(workspace_);
  }
  ~RunnerTest() override { std::filesystem::remove_all(workspace_); }

  static ExecutorRegistry echo_registry() {
    ExecutorRegistry registry;
    registry.register_executor("echo", [](const std::string& command) {
      ExecutionOutput output;
      output.stdout_text = command + "\n";
      output.extra_files.emplace_back("extra.txt", "extra data");
      return output;
    });
    return registry;
  }

  static std::string read_file(const std::filesystem::path& path) {
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
  }

  std::filesystem::path workspace_;
};

TEST_F(RunnerTest, CreatesJubeShapedWorkspace) {
  JubeRunner runner(workspace_, echo_registry());
  JubeBenchmarkConfig config;
  config.name = "sweep";
  config.outpath = "bench_run";
  config.space.add_csv("x", "1,2");
  config.steps.push_back(JubeStep{"run", "echo value $x"});

  const JubeRunResult result = runner.run(config);
  EXPECT_EQ(result.run_id, 0);
  ASSERT_EQ(result.packages.size(), 2u);
  EXPECT_EQ(result.packages[0].command, "echo value 1");
  EXPECT_EQ(result.packages[1].command, "echo value 2");
  EXPECT_TRUE(std::filesystem::exists(result.run_dir / "configuration.xml"));
  for (const WorkPackageResult& package : result.packages) {
    EXPECT_TRUE(std::filesystem::exists(package.stdout_path));
    EXPECT_TRUE(std::filesystem::exists(package.dir / "done"));
    EXPECT_TRUE(std::filesystem::exists(package.dir / "parameters.txt"));
    EXPECT_TRUE(std::filesystem::exists(package.dir / "command.txt"));
    EXPECT_TRUE(std::filesystem::exists(package.dir / "extra.txt"));
  }
  EXPECT_EQ(read_file(result.packages[0].stdout_path), "echo value 1\n");
  EXPECT_EQ(read_file(result.packages[0].dir / "parameters.txt"), "x: 1\n");
}

TEST_F(RunnerTest, RunIdsIncrement) {
  JubeRunner runner(workspace_, echo_registry());
  JubeBenchmarkConfig config;
  config.name = "b";
  config.steps.push_back(JubeStep{"run", "echo hi"});
  EXPECT_EQ(runner.run(config).run_id, 0);
  EXPECT_EQ(runner.run(config).run_id, 1);
  EXPECT_EQ(runner.run(config).run_id, 2);
}

TEST_F(RunnerTest, UnknownProgramThrows) {
  JubeRunner runner(workspace_, echo_registry());
  JubeBenchmarkConfig config;
  config.name = "b";
  config.steps.push_back(JubeStep{"run", "nosuch --flag"});
  EXPECT_THROW(runner.run(config), ConfigError);
}

TEST_F(RunnerTest, UnknownProgramErrorNamesProgramAndRegisteredSet) {
  ExecutorRegistry registry = echo_registry();
  registry.register_executor("cat", [](const std::string&) {
    return ExecutionOutput{};
  });
  JubeRunner runner(workspace_, std::move(registry));
  JubeBenchmarkConfig config;
  config.name = "b";
  config.steps.push_back(JubeStep{"run", "nosuch --flag"});
  try {
    runner.run(config);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("'nosuch'"), std::string::npos) << what;
    EXPECT_NE(what.find("cat, echo"), std::string::npos) << what;
  }
  // Nothing may have run: validation happens before any package starts.
  EXPECT_TRUE(JubeRunner::discover_outputs(workspace_).empty());
}

TEST_F(RunnerTest, UnknownProgramErrorWithEmptyRegistrySaysNone) {
  JubeRunner runner(workspace_, ExecutorRegistry{});
  JubeBenchmarkConfig config;
  config.name = "b";
  config.steps.push_back(JubeStep{"run", "nosuch"});
  try {
    runner.run(config);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("(none)"), std::string::npos);
  }
}

TEST_F(RunnerTest, RegistryProgramsAreSorted) {
  ExecutorRegistry registry;
  auto noop = [](const std::string&) { return ExecutionOutput{}; };
  registry.register_executor("zeta", noop);
  registry.register_executor("alpha", noop);
  registry.register_executor("mid", noop);
  EXPECT_EQ(registry.programs(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST_F(RunnerTest, DiscoverOutputsFindsCompletedSteps) {
  JubeRunner runner(workspace_, echo_registry());
  JubeBenchmarkConfig config;
  config.name = "b";
  config.space.add_csv("x", "1,2,3");
  config.steps.push_back(JubeStep{"run", "echo $x"});
  runner.run(config);

  const auto outputs = JubeRunner::discover_outputs(workspace_);
  EXPECT_EQ(outputs.size(), 3u);

  // Remove one "done" marker: that output becomes invisible.
  std::filesystem::remove(outputs[0].parent_path() / "done");
  EXPECT_EQ(JubeRunner::discover_outputs(workspace_).size(), 2u);
  // Nonexistent root: empty.
  EXPECT_TRUE(JubeRunner::discover_outputs(workspace_ / "nope").empty());
}

TEST_F(RunnerTest, ConfigXmlRoundTrip) {
  JubeBenchmarkConfig config;
  config.name = "ior-sweep";
  config.outpath = "runs";
  config.space.add_csv("transfer", "1m,2m,4m");
  config.space.add_csv("tasks", "40,80");
  config.steps.push_back(
      JubeStep{"run", "ior -a mpiio -t $transfer -N $tasks"});

  const JubeBenchmarkConfig parsed =
      JubeBenchmarkConfig::from_xml_text(config.to_xml());
  EXPECT_EQ(parsed.name, "ior-sweep");
  EXPECT_EQ(parsed.outpath, "runs");
  EXPECT_EQ(parsed.space.size(), 6u);
  ASSERT_EQ(parsed.steps.size(), 1u);
  EXPECT_EQ(parsed.steps[0].command_template,
            "ior -a mpiio -t $transfer -N $tasks");
}

TEST_F(RunnerTest, FromXmlRejectsBadConfigs) {
  EXPECT_THROW(JubeBenchmarkConfig::from_xml_text("<jube></jube>"),
               ParseError);
  EXPECT_THROW(JubeBenchmarkConfig::from_xml_text("<other/>"), ParseError);
  EXPECT_THROW(JubeBenchmarkConfig::from_xml_text(
                   "<benchmark name=\"b\"></benchmark>"),
               ParseError);  // no steps
}

TEST_F(RunnerTest, FactoryModeRunsPackagesOnManyThreadsInOrder) {
  // Each work package's registry tags output with its wp id; the merged
  // result must come back in work-package order regardless of job count.
  auto factory = [](int wp_id) {
    ExecutorRegistry registry;
    registry.register_executor("echo", [wp_id](const std::string& command) {
      ExecutionOutput output;
      output.stdout_text =
          "wp=" + std::to_string(wp_id) + " " + command + "\n";
      return output;
    });
    return registry;
  };
  JubeRunner runner(workspace_, RegistryFactory(factory));
  JubeBenchmarkConfig config;
  config.name = "sweep";
  config.space.add_csv("x", "1,2,3,4,5,6,7,8");
  config.steps.push_back(JubeStep{"run", "echo $x"});

  RunOptions options;
  options.jobs = 4;
  const JubeRunResult result = runner.run(config, options);
  ASSERT_EQ(result.packages.size(), 8u);
  for (std::size_t wp = 0; wp < result.packages.size(); ++wp) {
    EXPECT_EQ(result.packages[wp].work_package, static_cast<int>(wp));
    EXPECT_EQ(read_file(result.packages[wp].stdout_path),
              "wp=" + std::to_string(wp) + " echo " +
                  std::to_string(wp + 1) + "\n");
  }
}

TEST_F(RunnerTest, FailingPackageLeavesNoDoneMarker) {
  auto factory = [](int) {
    ExecutorRegistry registry;
    registry.register_executor("echo", [](const std::string& command) {
      if (command.find("3") != std::string::npos) {
        throw ConfigError("executor crash on " + command);
      }
      ExecutionOutput output;
      output.stdout_text = command + "\n";
      return output;
    });
    return registry;
  };
  JubeRunner runner(workspace_, RegistryFactory(factory));
  JubeBenchmarkConfig config;
  config.name = "b";
  config.space.add_csv("x", "1,2,3,4");
  config.steps.push_back(JubeStep{"run", "echo $x"});

  RunOptions options;
  options.jobs = 2;
  EXPECT_THROW(runner.run(config, options), ConfigError);

  // The crashed package wrote its inputs but never its marker, so discovery
  // (and therefore extraction) sees only the three packages that finished.
  const auto outputs = JubeRunner::discover_outputs(workspace_);
  EXPECT_EQ(outputs.size(), 3u);
  const std::filesystem::path crashed =
      workspace_ / "bench_run" / "000000" / "000002_run";
  EXPECT_TRUE(std::filesystem::exists(crashed / "command.txt"));
  EXPECT_FALSE(std::filesystem::exists(crashed / "done"));
}

TEST_F(RunnerTest, SharedRegistryRunnerIgnoresJobs) {
  // A shared-registry runner must stay serial even if jobs are requested:
  // its executors may share mutable state.
  JubeRunner runner(workspace_, echo_registry());
  JubeBenchmarkConfig config;
  config.name = "b";
  config.space.add_csv("x", "1,2,3");
  config.steps.push_back(JubeStep{"run", "echo $x"});
  RunOptions options;
  options.jobs = 8;
  const JubeRunResult result = runner.run(config, options);
  EXPECT_EQ(result.packages.size(), 3u);
  EXPECT_THROW(runner.run(config, RunOptions{-1}), ConfigError);
}

TEST_F(RunnerTest, RegistryRejectsEmptyExecutor) {
  ExecutorRegistry registry;
  EXPECT_THROW(registry.register_executor("x", CommandExecutor{}),
               ConfigError);
  EXPECT_EQ(registry.find("missing"), nullptr);
}

TEST_F(RunnerTest, ResumeSkipsCompletedPackagesAndRerunsIncomplete) {
  JubeBenchmarkConfig config;
  config.name = "sweep";
  config.space.add_csv("x", "1,2,3");
  config.steps.push_back(JubeStep{"run", "echo value $x"});

  // Count actual executions with a factory registry (capture-free per run).
  auto counting_factory = [](int* counter) {
    return [counter](int) {
      ExecutorRegistry registry;
      registry.register_executor("echo", [counter](const std::string& cmd) {
        ++*counter;
        ExecutionOutput output;
        output.stdout_text = cmd + "\n";
        return output;
      });
      return registry;
    };
  };

  int first_runs = 0;
  JubeRunner runner(workspace_, counting_factory(&first_runs));
  const JubeRunResult first = runner.run(config);
  EXPECT_EQ(first_runs, 3);

  // Simulate a crash that wiped package 1's done marker mid-write.
  std::filesystem::remove(first.packages[1].dir / "done");

  int resumed_runs = 0;
  JubeRunner resumer(workspace_, counting_factory(&resumed_runs));
  RunOptions options;
  options.resume = true;
  const JubeRunResult resumed = resumer.run(config, options);
  // Same run directory, only the incomplete package re-executed, and the
  // result still reports every package.
  EXPECT_EQ(resumed.run_id, first.run_id);
  EXPECT_EQ(resumed.run_dir, first.run_dir);
  EXPECT_EQ(resumed_runs, 1);
  ASSERT_EQ(resumed.packages.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(resumed.packages[i].command, first.packages[i].command);
    EXPECT_TRUE(std::filesystem::exists(resumed.packages[i].dir / "done"));
  }

  // A fully complete run resumes as a pure no-op.
  int noop_runs = 0;
  JubeRunner noop(workspace_, counting_factory(&noop_runs));
  const JubeRunResult again = noop.run(config, options);
  EXPECT_EQ(noop_runs, 0);
  EXPECT_EQ(again.run_id, first.run_id);
  EXPECT_EQ(again.packages.size(), 3u);
}

TEST_F(RunnerTest, ResumeWithChangedConfigStartsFreshRun) {
  JubeBenchmarkConfig config;
  config.name = "sweep";
  config.space.add_csv("x", "1,2");
  config.steps.push_back(JubeStep{"run", "echo value $x"});
  JubeRunner runner(workspace_, echo_registry());
  const JubeRunResult first = runner.run(config);

  // Different parameter space: the old run directory must NOT be reused —
  // mixing outputs of different sweeps would corrupt extraction.
  config.space = ParameterSpace{};
  config.space.add_csv("x", "1,2,3");
  RunOptions options;
  options.resume = true;
  const JubeRunResult second = runner.run(config, options);
  EXPECT_NE(second.run_id, first.run_id);
  EXPECT_EQ(second.packages.size(), 3u);
}

TEST_F(RunnerTest, ResumeWithoutPriorRunStartsFirstRun) {
  JubeBenchmarkConfig config;
  config.name = "sweep";
  config.steps.push_back(JubeStep{"run", "echo hi"});
  JubeRunner runner(workspace_, echo_registry());
  RunOptions options;
  options.resume = true;
  const JubeRunResult result = runner.run(config, options);
  EXPECT_EQ(result.run_id, 0);
  EXPECT_EQ(result.packages.size(), 1u);
}

}  // namespace
}  // namespace iokc::jube
