#include "src/jube/parameters.hpp"

#include <gtest/gtest.h>

#include "src/util/error.hpp"

namespace iokc::jube {
namespace {

TEST(ParameterSpace, ExpandsCartesianProduct) {
  ParameterSpace space;
  space.add_csv("t", "1m,2m");
  space.add_csv("n", "40,80,160");
  EXPECT_EQ(space.size(), 6u);
  const auto assignments = space.expand();
  ASSERT_EQ(assignments.size(), 6u);
  // First parameter varies slowest.
  EXPECT_EQ(assignments[0].at("t"), "1m");
  EXPECT_EQ(assignments[0].at("n"), "40");
  EXPECT_EQ(assignments[1].at("n"), "80");
  EXPECT_EQ(assignments[3].at("t"), "2m");
}

TEST(ParameterSpace, EmptySpaceYieldsOneEmptyAssignment) {
  ParameterSpace space;
  const auto assignments = space.expand();
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_TRUE(assignments[0].empty());
}

TEST(ParameterSpace, CsvValuesAreTrimmed) {
  ParameterSpace space;
  space.add_csv("x", " a , b ,c ");
  EXPECT_EQ(space.parameters()[0].values,
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParameterSpace, RejectsDuplicatesAndEmpties) {
  ParameterSpace space;
  space.add_csv("x", "1");
  EXPECT_THROW(space.add_csv("x", "2"), ConfigError);
  EXPECT_THROW(space.add(Parameter{"", {"1"}}), ConfigError);
  EXPECT_THROW(space.add(Parameter{"y", {}}), ConfigError);
}

TEST(Substitute, ReplacesDollarNames) {
  const Assignment assignment{{"transfer", "2m"}, {"tasks", "80"}};
  EXPECT_EQ(substitute("ior -t $transfer -N $tasks", assignment),
            "ior -t 2m -N 80");
}

TEST(Substitute, BracedForm) {
  const Assignment assignment{{"x", "v"}};
  EXPECT_EQ(substitute("a${x}b", assignment), "avb");
}

TEST(Substitute, DollarEscape) {
  EXPECT_EQ(substitute("cost $$5", {}), "cost $5");
}

TEST(Substitute, Errors) {
  EXPECT_THROW(substitute("$missing", {}), ConfigError);
  EXPECT_THROW(substitute("${unterminated", {}), ConfigError);
  EXPECT_THROW(substitute("$ alone", {}), ConfigError);
}

TEST(Substitute, NameBoundaryIsNonAlnum) {
  const Assignment assignment{{"t", "X"}};
  EXPECT_EQ(substitute("-$t-", assignment), "-X-");
  EXPECT_EQ(substitute("$t/file", assignment), "X/file");
}

}  // namespace
}  // namespace iokc::jube
