#include "src/fs/page_cache.hpp"

#include <gtest/gtest.h>

namespace iokc::fs {
namespace {

TEST(PageCache, AccumulatesBytesPerNode) {
  PageCache cache(1000);
  cache.add_bytes(0, "/f", 300);
  cache.add_bytes(0, "/f", 200);
  EXPECT_EQ(cache.bytes_cached(0, "/f"), 500u);
  EXPECT_EQ(cache.bytes_cached(1, "/f"), 0u);
}

TEST(PageCache, ResidencyRequiresWholeFile) {
  PageCache cache(1000);
  cache.add_bytes(0, "/f", 500);
  EXPECT_FALSE(cache.resident(0, "/f", 600));
  EXPECT_TRUE(cache.resident(0, "/f", 500));
  EXPECT_TRUE(cache.resident(0, "/f", 400));
}

TEST(PageCache, ZeroSizeFileIsNeverResident) {
  PageCache cache(1000);
  EXPECT_FALSE(cache.resident(0, "/f", 0));
}

TEST(PageCache, CapacityBoundsAdmission) {
  PageCache cache(100);
  cache.add_bytes(0, "/a", 80);
  cache.add_bytes(0, "/b", 80);  // only 20 admitted
  EXPECT_EQ(cache.bytes_cached(0, "/a"), 80u);
  EXPECT_EQ(cache.bytes_cached(0, "/b"), 20u);
  EXPECT_EQ(cache.used_bytes(0), 100u);
}

TEST(PageCache, InvalidateDropsEverywhere) {
  PageCache cache(1000);
  cache.add_bytes(0, "/f", 100);
  cache.add_bytes(1, "/f", 100);
  cache.add_bytes(0, "/g", 50);
  cache.invalidate("/f");
  EXPECT_EQ(cache.bytes_cached(0, "/f"), 0u);
  EXPECT_EQ(cache.bytes_cached(1, "/f"), 0u);
  EXPECT_EQ(cache.bytes_cached(0, "/g"), 50u);
  EXPECT_EQ(cache.used_bytes(0), 50u);
}

TEST(PageCache, InvalidateOthersKeepsWriterCopy) {
  PageCache cache(1000);
  cache.add_bytes(0, "/f", 100);
  cache.add_bytes(1, "/f", 100);
  cache.add_bytes(2, "/f", 100);
  cache.invalidate_others("/f", 1);
  EXPECT_EQ(cache.bytes_cached(0, "/f"), 0u);
  EXPECT_EQ(cache.bytes_cached(1, "/f"), 100u);
  EXPECT_EQ(cache.bytes_cached(2, "/f"), 0u);
}

TEST(PageCache, InvalidateNode) {
  PageCache cache(1000);
  cache.add_bytes(0, "/f", 100);
  cache.add_bytes(1, "/f", 100);
  cache.invalidate_node(0);
  EXPECT_EQ(cache.bytes_cached(0, "/f"), 0u);
  EXPECT_EQ(cache.bytes_cached(1, "/f"), 100u);
  EXPECT_EQ(cache.used_bytes(0), 0u);
}

TEST(PageCache, FreedCapacityIsReusable) {
  PageCache cache(100);
  cache.add_bytes(0, "/a", 100);
  cache.invalidate("/a");
  cache.add_bytes(0, "/b", 100);
  EXPECT_EQ(cache.bytes_cached(0, "/b"), 100u);
}

}  // namespace
}  // namespace iokc::fs
