#include "src/fs/stripe.hpp"

#include <gtest/gtest.h>

#include "src/util/error.hpp"

namespace iokc::fs {
namespace {

TEST(Stripe, SplitAlignedRequest) {
  StripeConfig stripe;
  stripe.chunk_size = 1024;
  const auto spans = split_into_chunks(stripe, 0, 4096);
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].chunk_index, i);
    EXPECT_EQ(spans[i].offset_in_chunk, 0u);
    EXPECT_EQ(spans[i].length, 1024u);
  }
}

TEST(Stripe, SplitUnalignedRequest) {
  StripeConfig stripe;
  stripe.chunk_size = 1024;
  const auto spans = split_into_chunks(stripe, 1000, 100);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].chunk_index, 0u);
  EXPECT_EQ(spans[0].offset_in_chunk, 1000u);
  EXPECT_EQ(spans[0].length, 24u);
  EXPECT_EQ(spans[1].chunk_index, 1u);
  EXPECT_EQ(spans[1].offset_in_chunk, 0u);
  EXPECT_EQ(spans[1].length, 76u);
}

TEST(Stripe, SplitEmptyRequest) {
  StripeConfig stripe;
  EXPECT_TRUE(split_into_chunks(stripe, 123, 0).empty());
}

TEST(Stripe, SplitRejectsZeroChunk) {
  StripeConfig stripe;
  stripe.chunk_size = 0;
  EXPECT_THROW(split_into_chunks(stripe, 0, 10), ConfigError);
}

/// Property: spans are contiguous, within-chunk, and sum to the request.
class StripeSplitProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t,
                                                 std::uint64_t>> {};

TEST_P(StripeSplitProperty, SpansTileTheRequest) {
  const auto [chunk, offset, length] = GetParam();
  StripeConfig stripe;
  stripe.chunk_size = chunk;
  const auto spans = split_into_chunks(stripe, offset, length);
  std::uint64_t position = offset;
  std::uint64_t total = 0;
  for (const ChunkSpan& span : spans) {
    EXPECT_EQ(span.chunk_index * chunk + span.offset_in_chunk, position);
    EXPECT_LE(span.offset_in_chunk + span.length, chunk);
    EXPECT_GT(span.length, 0u);
    position += span.length;
    total += span.length;
  }
  EXPECT_EQ(total, length);
}

INSTANTIATE_TEST_SUITE_P(
    Requests, StripeSplitProperty,
    ::testing::Values(
        std::make_tuple(512ull * 1024, 0ull, 2ull * 1024 * 1024),
        std::make_tuple(512ull * 1024, 47008ull, 47008ull),
        std::make_tuple(4096ull, 1ull, 3ull),
        std::make_tuple(4096ull, 4095ull, 2ull),
        std::make_tuple(1048576ull, 123456789ull, 98765ull),
        std::make_tuple(65536ull, 65536ull, 65536ull)));

TEST(Stripe, SlotMappingRoundRobin) {
  StripeConfig stripe;
  stripe.num_targets = 4;
  EXPECT_EQ(chunk_to_stripe_slot(stripe, 0, 4), 0u);
  EXPECT_EQ(chunk_to_stripe_slot(stripe, 1, 4), 1u);
  EXPECT_EQ(chunk_to_stripe_slot(stripe, 5, 4), 1u);
}

TEST(Stripe, SlotMappingClampsToActualTargets) {
  StripeConfig stripe;
  stripe.num_targets = 8;
  // Only 3 actual targets available: width = min(8, 3) = 3.
  EXPECT_EQ(chunk_to_stripe_slot(stripe, 3, 3), 0u);
  EXPECT_EQ(chunk_to_stripe_slot(stripe, 4, 3), 1u);
}

TEST(Stripe, SlotMappingRejectsZeroTargets) {
  StripeConfig stripe;
  EXPECT_THROW(chunk_to_stripe_slot(stripe, 0, 0), ConfigError);
}

TEST(Stripe, PatternStrings) {
  EXPECT_EQ(to_string(StripePattern::kRaid0), "RAID0");
  EXPECT_EQ(to_string(StripePattern::kBuddyMirror), "Buddy Mirror");
  EXPECT_EQ(stripe_pattern_from_string("raid0"), StripePattern::kRaid0);
  EXPECT_EQ(stripe_pattern_from_string("Buddy Mirror"),
            StripePattern::kBuddyMirror);
  EXPECT_THROW(stripe_pattern_from_string("raid6"), ParseError);
}

TEST(Stripe, RenderDetailsBeeGfsShape) {
  StripeConfig stripe;
  stripe.chunk_size = 512 * 1024;
  stripe.num_targets = 4;
  const std::string text = render_stripe_details(stripe, 12);
  EXPECT_NE(text.find("Stripe pattern details:"), std::string::npos);
  EXPECT_NE(text.find("+ Type: RAID0"), std::string::npos);
  EXPECT_NE(text.find("+ Chunksize: 512k"), std::string::npos);
  EXPECT_NE(text.find("desired: 4; actual: 4"), std::string::npos);
  EXPECT_NE(text.find("+ Storage Pool: 1 (Default)"), std::string::npos);
}

TEST(Stripe, RenderDetailsClampsActual) {
  StripeConfig stripe;
  stripe.num_targets = 16;
  const std::string text = render_stripe_details(stripe, 12);
  EXPECT_NE(text.find("desired: 16; actual: 12"), std::string::npos);
}

}  // namespace
}  // namespace iokc::fs
