#include "src/fs/pfs.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/cluster.hpp"
#include "src/util/error.hpp"

namespace iokc::fs {
namespace {

/// Fixture: a small deterministic cluster + file system.
class PfsTest : public ::testing::Test {
 protected:
  PfsTest() {
    sim::ClusterSpec cluster_spec;
    cluster_spec.node_count = 4;
    cluster_spec.jitter_sigma = 0.0;  // deterministic service times
    cluster_ = std::make_unique<sim::Cluster>(queue_, cluster_spec, 7);

    PfsSpec pfs_spec;
    pfs_spec.targets.assign(4, TargetSpec{100.0e6, 200.0e6, 0.0});
    pfs_spec.num_metadata_servers = 2;
    pfs_ = std::make_unique<ParallelFileSystem>(*cluster_, pfs_spec);
  }

  sim::SimTime run_op(
      const std::function<void(ParallelFileSystem::Callback)>& op) {
    sim::SimTime done = -1.0;
    op([&done](sim::SimTime t) { done = t; });
    queue_.run();
    EXPECT_GE(done, 0.0) << "operation never completed";
    return done;
  }

  sim::EventQueue queue_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<ParallelFileSystem> pfs_;
};

TEST_F(PfsTest, CreateThenStatAndUnlink) {
  run_op([&](auto cb) { pfs_->create("/scratch/f", 0, cb); });
  EXPECT_TRUE(pfs_->exists("/scratch/f"));
  const FsEntry* entry = pfs_->find_entry("/scratch/f");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->type, EntryType::kFile);
  EXPECT_FALSE(entry->entry_id.empty());
  EXPECT_GE(entry->metadata_node, 1u);
  EXPECT_FALSE(entry->target_ids.empty());

  run_op([&](auto cb) { pfs_->stat("/scratch/f", 0, cb); });
  run_op([&](auto cb) { pfs_->unlink("/scratch/f", 0, cb); });
  EXPECT_FALSE(pfs_->exists("/scratch/f"));
}

TEST_F(PfsTest, CreateDuplicateThrows) {
  run_op([&](auto cb) { pfs_->create("/f", 0, cb); });
  EXPECT_THROW(pfs_->create("/f", 0, [](sim::SimTime) {}), iokc::SimError);
}

TEST_F(PfsTest, OperationsOnMissingFilesThrow) {
  EXPECT_THROW(pfs_->open("/missing", 0, [](sim::SimTime) {}), iokc::SimError);
  EXPECT_THROW(pfs_->stat("/missing", 0, [](sim::SimTime) {}), iokc::SimError);
  EXPECT_THROW(pfs_->unlink("/missing", 0, [](sim::SimTime) {}),
               iokc::SimError);
  EXPECT_THROW(pfs_->write("/missing", 0, 10, 0, [](sim::SimTime) {}),
               iokc::SimError);
  EXPECT_THROW(pfs_->read("/missing", 0, 10, 0, [](sim::SimTime) {}),
               iokc::SimError);
}

TEST_F(PfsTest, WriteGrowsFileAndReadsBack) {
  run_op([&](auto cb) { pfs_->create("/f", 0, cb); });
  run_op([&](auto cb) { pfs_->write("/f", 0, 1024 * 1024, 0, cb); });
  EXPECT_EQ(pfs_->find_entry("/f")->size, 1024u * 1024u);
  EXPECT_EQ(pfs_->bytes_written(), 1024u * 1024u);
  run_op([&](auto cb) { pfs_->read("/f", 0, 1024 * 1024, 1, cb); });
  EXPECT_EQ(pfs_->bytes_read(), 1024u * 1024u);
}

TEST_F(PfsTest, ReadBeyondEofThrows) {
  run_op([&](auto cb) { pfs_->create("/f", 0, cb); });
  run_op([&](auto cb) { pfs_->write("/f", 0, 1000, 0, cb); });
  EXPECT_THROW(pfs_->read("/f", 500, 501, 0, [](sim::SimTime) {}),
               iokc::SimError);
}

TEST_F(PfsTest, PageCacheMakesLocalRereadsFast) {
  run_op([&](auto cb) { pfs_->create("/f", 0, cb); });
  run_op([&](auto cb) { pfs_->write("/f", 0, 64 * 1024 * 1024, 0, cb); });

  const double t0 = queue_.now();
  run_op([&](auto cb) { pfs_->read("/f", 0, 64 * 1024 * 1024, 0, cb); });
  const double local_read = queue_.now() - t0;

  const double t1 = queue_.now();
  run_op([&](auto cb) { pfs_->read("/f", 0, 64 * 1024 * 1024, 1, cb); });
  const double remote_read = queue_.now() - t1;

  // The writer's node reads from memory; the remote node hits storage.
  EXPECT_LT(local_read * 5.0, remote_read);
}

TEST_F(PfsTest, RewriteInvalidatesRemoteCaches) {
  run_op([&](auto cb) { pfs_->create("/f", 0, cb); });
  run_op([&](auto cb) { pfs_->write("/f", 0, 16 * 1024 * 1024, 0, cb); });
  // Node 1 reads the whole file -> now cached on node 1.
  run_op([&](auto cb) { pfs_->read("/f", 0, 16 * 1024 * 1024, 1, cb); });
  EXPECT_TRUE(pfs_->page_cache().resident(1, "/f", 16 * 1024 * 1024));
  // Node 0 rewrites -> node 1's copy must be gone.
  run_op([&](auto cb) { pfs_->write("/f", 0, 16 * 1024 * 1024, 0, cb); });
  EXPECT_FALSE(pfs_->page_cache().resident(1, "/f", 16 * 1024 * 1024));
}

TEST_F(PfsTest, MoreStripeTargetsRaiseSingleFileBandwidth) {
  StripeConfig narrow;
  narrow.num_targets = 1;
  StripeConfig wide;
  wide.num_targets = 4;
  run_op([&](auto cb) { pfs_->create("/narrow", 0, cb, narrow); });
  run_op([&](auto cb) { pfs_->create("/wide", 0, cb, wide); });

  const double t0 = queue_.now();
  run_op([&](auto cb) { pfs_->write("/narrow", 0, 32 * 1024 * 1024, 0, cb); });
  const double narrow_time = queue_.now() - t0;
  const double t1 = queue_.now();
  run_op([&](auto cb) { pfs_->write("/wide", 0, 32 * 1024 * 1024, 1, cb); });
  const double wide_time = queue_.now() - t1;
  EXPECT_LT(wide_time * 2.0, narrow_time);
}

TEST_F(PfsTest, BuddyMirrorWritesCostMore) {
  StripeConfig raid0;
  raid0.num_targets = 2;
  StripeConfig mirrored = raid0;
  mirrored.pattern = StripePattern::kBuddyMirror;
  run_op([&](auto cb) { pfs_->create("/r0", 0, cb, raid0); });
  run_op([&](auto cb) { pfs_->create("/bm", 0, cb, mirrored); });

  const double t0 = queue_.now();
  run_op([&](auto cb) { pfs_->write("/r0", 0, 16 * 1024 * 1024, 0, cb); });
  const double raid0_time = queue_.now() - t0;
  const double t1 = queue_.now();
  run_op([&](auto cb) { pfs_->write("/bm", 0, 16 * 1024 * 1024, 0, cb); });
  const double mirror_time = queue_.now() - t1;
  EXPECT_GT(mirror_time, raid0_time * 1.5);
}

TEST_F(PfsTest, UnalignedWritesArePenalized) {
  run_op([&](auto cb) { pfs_->create("/f", 0, cb); });
  const double t0 = queue_.now();
  run_op([&](auto cb) { pfs_->write("/f", 0, 1024 * 1024, 0, cb); });
  const double aligned_time = queue_.now() - t0;
  const double t1 = queue_.now();
  run_op([&](auto cb) { pfs_->write("/f", 47008, 1024 * 1024, 0, cb); });
  const double unaligned_time = queue_.now() - t1;
  EXPECT_GT(unaligned_time, aligned_time * 2.0);
}

TEST_F(PfsTest, DegradedTargetSlowsItsFiles) {
  StripeConfig one_target;
  one_target.num_targets = 1;
  run_op([&](auto cb) { pfs_->create("/f", 0, cb, one_target); });
  const std::uint32_t target = pfs_->find_entry("/f")->target_ids[0];

  const double t0 = queue_.now();
  run_op([&](auto cb) { pfs_->write("/f", 0, 8 * 1024 * 1024, 0, cb); });
  const double healthy_time = queue_.now() - t0;

  pfs_->set_target_degraded(target, 0.25);
  const double t1 = queue_.now();
  run_op([&](auto cb) { pfs_->write("/f", 0, 8 * 1024 * 1024, 0, cb); });
  const double degraded_time = queue_.now() - t1;
  EXPECT_GT(degraded_time, healthy_time * 3.0);
}

TEST_F(PfsTest, FsyncTouchesAllStripeTargets) {
  run_op([&](auto cb) { pfs_->create("/f", 0, cb); });
  const std::uint64_t before = pfs_->metadata_ops();
  run_op([&](auto cb) { pfs_->fsync("/f", 0, cb); });
  EXPECT_GT(pfs_->metadata_ops(), before);
}

TEST_F(PfsTest, EntryInfoRoundTripShape) {
  run_op([&](auto cb) { pfs_->create("/scratch/data", 0, cb); });
  const std::string info = pfs_->render_entry_info("/scratch/data");
  EXPECT_NE(info.find("Entry type: file"), std::string::npos);
  EXPECT_NE(info.find("EntryID: "), std::string::npos);
  EXPECT_NE(info.find("Metadata node: meta"), std::string::npos);
  EXPECT_NE(info.find("Stripe pattern details:"), std::string::npos);
  EXPECT_THROW(pfs_->render_entry_info("/nope"), iokc::SimError);
}

TEST_F(PfsTest, LustreFlavorRendersGetstripeDialect) {
  PfsSpec spec = PfsSpec::lustre_scratch();
  spec.targets.assign(4, TargetSpec{100.0e6, 200.0e6, 0.0});
  ParallelFileSystem lustre(*cluster_, spec);
  sim::SimTime done = -1.0;
  lustre.create("/scratch/lf", 0, [&](sim::SimTime t) { done = t; });
  queue_.run();
  ASSERT_GE(done, 0.0);
  const std::string info = lustre.render_entry_info("/scratch/lf");
  EXPECT_NE(info.find("lmm_stripe_count:  4"), std::string::npos);
  EXPECT_NE(info.find("lmm_stripe_size:   1048576"), std::string::npos);
  EXPECT_NE(info.find("lmm_pattern:       raid0"), std::string::npos);
  EXPECT_NE(info.find("lmm_fid:"), std::string::npos);
  EXPECT_EQ(info.find("Entry type:"), std::string::npos);
}

TEST_F(PfsTest, MkdirCreatesDirectoryEntries) {
  run_op([&](auto cb) { pfs_->mkdir("/dir", 0, cb); });
  const FsEntry* entry = pfs_->find_entry("/dir");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->type, EntryType::kDirectory);
  const std::string info = pfs_->render_entry_info("/dir");
  EXPECT_NE(info.find("Entry type: directory"), std::string::npos);
  EXPECT_THROW(pfs_->mkdir("/dir", 0, [](sim::SimTime) {}), iokc::SimError);
}

TEST_F(PfsTest, ZeroLengthWriteCompletes) {
  run_op([&](auto cb) { pfs_->create("/f", 0, cb); });
  run_op([&](auto cb) { pfs_->write("/f", 0, 0, 0, cb); });
  EXPECT_EQ(pfs_->find_entry("/f")->size, 0u);
}

TEST_F(PfsTest, StoragePoolSelection) {
  PfsSpec spec;
  spec.targets.assign(4, TargetSpec{});
  StoragePoolSpec fast;
  fast.id = 2;
  fast.name = "fast";
  fast.target_ids = {2, 3};
  StoragePoolSpec slow;
  slow.id = 1;
  slow.name = "Default";
  slow.target_ids = {0, 1};
  spec.pools = {slow, fast};
  ParallelFileSystem pfs(*cluster_, spec);

  StripeConfig in_fast;
  in_fast.storage_pool = 2;
  in_fast.num_targets = 4;
  sim::SimTime done = -1.0;
  pfs.create("/f", 0, [&](sim::SimTime t) { done = t; }, in_fast);
  queue_.run();
  ASSERT_GE(done, 0.0);
  for (const std::uint32_t target : pfs.find_entry("/f")->target_ids) {
    EXPECT_GE(target, 2u);
  }
  // Unknown pool rejected.
  StripeConfig bad;
  bad.storage_pool = 9;
  EXPECT_THROW(pfs.create("/g", 0, [](sim::SimTime) {}, bad),
               iokc::ConfigError);
}

}  // namespace
}  // namespace iokc::fs
