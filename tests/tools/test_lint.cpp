#include "tools/iokc-lint/lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace iokc::lint {
namespace {

namespace fs = std::filesystem;

// Builds a throwaway fixture tree under the gtest temp dir; files are given
// as (relative path, contents).
class FixtureTree {
 public:
  explicit FixtureTree(const std::string& name)
      : root_(fs::path(testing::TempDir()) / ("iokc_lint_" + name)) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~FixtureTree() { fs::remove_all(root_); }

  void add(const std::string& relative, const std::string& contents) {
    const fs::path path = root_ / relative;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << contents;
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

std::vector<std::string> rules_of(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> rules;
  for (const Diagnostic& d : diagnostics) {
    rules.push_back(d.rule);
  }
  return rules;
}

TEST(Lint, CleanTreePasses) {
  FixtureTree tree("clean");
  tree.add("util/thing.hpp", "#pragma once\nint thing();\n");
  tree.add("util/thing.cpp",
           "#include \"src/util/thing.hpp\"\n"
           "int thing() { return 1; }\n");
  tree.add("fs/stripe.cpp",
           "#include \"src/util/thing.hpp\"\n"
           "#include \"src/sim/clock.hpp\"\n"
           "void f() { throw SimError(\"fs owns SimError\"); }\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, UpwardIncludeIsALayeringViolation) {
  FixtureTree tree("layering");
  tree.add("sim/engine.cpp", "#include \"src/cli/cli.hpp\"\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
  EXPECT_EQ(diagnostics[0].line, 1u);
  EXPECT_NE(diagnostics[0].message.find("'sim'"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("'cli'"), std::string::npos);
}

TEST(Lint, SameRankSiblingIncludeIsFlagged) {
  // extract and persist are parallel layer-4 siblings; neither may include
  // the other.
  FixtureTree tree("siblings");
  tree.add("extract/extractor.cpp", "#include \"src/persist/repository.hpp\"\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
}

TEST(Lint, DownwardAndSelfIncludesPass) {
  FixtureTree tree("downward");
  tree.add("cli/main.cpp",
           "#include \"src/cli/cli.hpp\"\n"
           "#include \"src/cycle/cycle.hpp\"\n"
           "#include \"src/util/log.hpp\"\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, IntraDbUpwardIncludeIsFlagged) {
  // src/db is itself layered: index (layer 3) must not reach up to the
  // planner (layer 6).
  FixtureTree tree("db_intra_up");
  tree.add("db/index.cpp",
           "#include \"src/db/index.hpp\"\n"
           "#include \"src/db/planner.hpp\"\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
  EXPECT_EQ(diagnostics[0].line, 2u);
  EXPECT_NE(diagnostics[0].message.find("'index'"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("'planner'"), std::string::npos);
}

TEST(Lint, IntraDbDownwardAndOwnHeaderPass) {
  FixtureTree tree("db_intra_ok");
  tree.add("db/planner.cpp",
           "#include \"src/db/planner.hpp\"\n"
           "#include \"src/db/table.hpp\"\n"
           "#include \"src/db/expr.hpp\"\n"
           "#include \"src/util/log.hpp\"\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, DbFileMissingFromTheIntraDbTableIsFlagged) {
  // A new src/db file must be placed in the intra-db layering table before
  // it may include db siblings — adding a file IS a layering decision.
  FixtureTree tree("db_intra_unknown");
  tree.add("db/cursor.cpp", "#include \"src/db/value.hpp\"\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
  EXPECT_NE(diagnostics[0].message.find("'cursor'"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("intra-db layering table"),
            std::string::npos);
}

TEST(Lint, UtilJsonUpwardIncludeIsFlagged) {
  // The JSON stack inside util is layered: the stage-1 scanner (json_index,
  // layer 2) must not reach up into the tree parser (json, layer 3).
  FixtureTree tree("util_json_up");
  tree.add("util/json_index.cpp",
           "#include \"src/util/json_index.hpp\"\n"
           "#include \"src/util/json.hpp\"\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
  EXPECT_EQ(diagnostics[0].line, 2u);
  EXPECT_NE(diagnostics[0].message.find("'json_index'"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("'json'"), std::string::npos);
}

TEST(Lint, UtilJsonDownwardAndUnrankedUtilIncludesPass) {
  // json (layer 3) may include everything below it, and util files outside
  // the JSON table — error.hpp here, csv.cpp as an includer — stay
  // unconstrained in both directions.
  FixtureTree tree("util_json_ok");
  tree.add("util/json.cpp",
           "#include \"src/util/json.hpp\"\n"
           "#include \"src/util/json_index.hpp\"\n"
           "#include \"src/util/json_writer.hpp\"\n"
           "#include \"src/util/padded_string.hpp\"\n"
           "#include \"src/util/error.hpp\"\n");
  tree.add("util/csv.cpp", "#include \"src/util/json.hpp\"\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, MissingPragmaOnceIsFlagged) {
  FixtureTree tree("pragma");
  tree.add("util/guarded.hpp", "#pragma once\nint a();\n");
  tree.add("util/naked.hpp", "int b();\n");
  tree.add("util/impl.cpp", "int b() { return 2; }\n");  // .cpp exempt
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "pragma-once");
  EXPECT_NE(diagnostics[0].file.find("naked.hpp"), std::string::npos);
}

TEST(Lint, ForeignSubsystemThrowIsFlagged) {
  FixtureTree tree("ownership");
  tree.add("analysis/stats.cpp",
           "void f() { throw SimError(\"not ours\"); }\n");
  tree.add("db/table.cpp",
           "void g() { throw DbError(\"ours\"); }\n");
  tree.add("sim/engine.cpp",
           "void h() { throw iokc::SimError(\"qualified, ours\"); }\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "exception-ownership");
  EXPECT_NE(diagnostics[0].file.find("stats.cpp"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("SimError"), std::string::npos);
}

TEST(Lint, RootErrorAndStdExceptionsAreFlagged) {
  FixtureTree tree("rooterror");
  tree.add("util/a.cpp", "void f() { throw Error(\"too generic\"); }\n");
  tree.add("util/b.cpp",
           "#include <stdexcept>\n"
           "void g() { throw std::runtime_error(\"raw\"); }\n");
  tree.add("util/c.cpp", "void h() { try { g(); } catch (...) { throw; } }\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "exception-ownership");
  EXPECT_EQ(diagnostics[1].rule, "exception-ownership");
}

TEST(Lint, NonLiteralFormatStringIsFlagged) {
  FixtureTree tree("format");
  tree.add("util/log.cpp",
           "#include <cstdio>\n"
           "void log_ok(int v) { std::printf(\"%d\", v); }\n"
           "void log_bad(const char* fmt) { std::printf(fmt); }\n"
           "void log_f(const char* fmt) { std::fprintf(stderr, fmt); }\n"
           "void log_n(char* b, const char* fmt) {\n"
           "  std::snprintf(b, 8, fmt);\n"
           "}\n");
  const auto diagnostics = lint_tree(tree.root());
  EXPECT_EQ(rules_of(diagnostics),
            (std::vector<std::string>{"format-literal", "format-literal",
                                      "format-literal"}));
}

TEST(Lint, ConcatenatedAndWrappedLiteralsPass) {
  FixtureTree tree("formatok");
  tree.add("util/log.cpp",
           "#include <cstdio>\n"
           "void f(double x) {\n"
           "  char buf[64];\n"
           "  std::snprintf(buf, sizeof buf,\n"
           "                \"%.2f\", x);\n"
           "  std::printf(\"a\" \"b\");\n"
           "}\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, CommentsAndStringsDoNotTrigger) {
  FixtureTree tree("scrub");
  tree.add("sim/engine.cpp",
           "// #include \"src/cli/cli.hpp\"\n"
           "/* throw DbError(\"commented\"); */\n"
           "const char* kDoc = \"throw DbError(not code) printf(fmt)\";\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, RawStringsAreScrubbed) {
  FixtureTree tree("rawstring");
  tree.add("persist/schema.cpp",
           "const char* kSql = R\"sql(\n"
           "  -- throw SimError(\"inside sql\") #include \"src/cli/x.hpp\"\n"
           ")sql\";\n"
           "void f() { throw DbError(\"persist owns DbError\"); }\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, UnknownModulesSkipLayeringButKeepOtherRules) {
  FixtureTree tree("unknown");
  tree.add("scripts/tool.cpp",
           "#include \"src/cli/cli.hpp\"\n"
           "void f(const char* fmt) { printf(fmt); }\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "format-literal");
}

TEST(Lint, OptionsDisableIndividualRules) {
  FixtureTree tree("options");
  tree.add("sim/engine.cpp", "#include \"src/cli/cli.hpp\"\n");
  Options options;
  options.check_layering = false;
  EXPECT_TRUE(lint_tree(tree.root(), options).empty());
}

TEST(Lint, DiagnosticRenderingIsStable) {
  Diagnostic d{"src/sim/engine.cpp", 12, "layering", "nope"};
  EXPECT_EQ(to_string(d), "src/sim/engine.cpp:12: [layering] nope");
}

TEST(Lint, ModuleRanksMatchTheArchitecture) {
  EXPECT_EQ(module_rank("util"), 0);
  EXPECT_LT(module_rank("util"), module_rank("obs"));
  EXPECT_LT(module_rank("obs"), module_rank("sim"));
  EXPECT_LT(module_rank("util"), module_rank("sim"));
  EXPECT_LT(module_rank("sim"), module_rank("fs"));
  EXPECT_LT(module_rank("fs"), module_rank("iostack"));
  EXPECT_LT(module_rank("iostack"), module_rank("generators"));
  EXPECT_EQ(module_rank("extract"), module_rank("persist"));
  EXPECT_LT(module_rank("persist"), module_rank("analysis"));
  EXPECT_LT(module_rank("analysis"), module_rank("usage"));
  EXPECT_LT(module_rank("usage"), module_rank("cycle"));
  EXPECT_EQ(module_rank("svc"), module_rank("cycle"));  // parallel siblings
  EXPECT_LT(module_rank("usage"), module_rank("svc"));
  EXPECT_LT(module_rank("cycle"), module_rank("cli"));
  EXPECT_LT(module_rank("svc"), module_rank("cli"));
  EXPECT_EQ(module_rank("no_such_module"), -1);
}

// -- blocking-under-lock ----------------------------------------------------

TEST(Lint, BlockingSyscallUnderGuardIsFlagged) {
  FixtureTree tree("blocking");
  tree.add("db/wal.cpp",
           "#include \"src/util/mutex.hpp\"\n"
           "void flush(int fd, util::Mutex& m) {\n"
           "  const util::LockGuard lock(m);\n"
           "  ::fsync(fd);\n"
           "}\n"
           "void flush_outside(int fd, util::Mutex& m) {\n"
           "  { const util::LockGuard lock(m); }\n"
           "  ::fsync(fd);\n"
           "}\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "blocking-under-lock");
  EXPECT_EQ(diagnostics[0].line, 4u);
  EXPECT_NE(diagnostics[0].message.find("fsync"), std::string::npos);
}

TEST(Lint, MemberCallSharingABlockingNameIsNotFlagged) {
  // `.send(...)` is some object's member, not the socket syscall; only free
  // calls match the builtin list.
  FixtureTree tree("member");
  tree.add("svc/conn.cpp",
           "void f(Channel& ch, util::Mutex& m) {\n"
           "  const util::LockGuard lock(m);\n"
           "  ch.send(1);\n"
           "}\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, BlockingMarkerPropagatesAcrossFiles) {
  // `commit` is declared blocking in db/; the call through a member in
  // persist/ must still fire because analyze_tree collects markers globally.
  FixtureTree tree("marker");
  tree.add("db/database.hpp",
           "#pragma once\n"
           "struct Database {\n"
           "  void commit();  // iokc-lint: blocking\n"
           "};\n");
  tree.add("persist/repo.cpp",
           "#include \"src/db/database.hpp\"\n"
           "void store(Database& db, util::Mutex& m) {\n"
           "  const util::LockGuard lock(m);\n"
           "  db.commit();\n"
           "}\n");
  const auto analysis = analyze_tree({tree.root()});
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics[0].rule, "blocking-under-lock");
  EXPECT_NE(analysis.diagnostics[0].file.find("repo.cpp"), std::string::npos);
}

TEST(Lint, CollectBlockingMarkersFindsDeclarations) {
  const auto names = collect_blocking_markers(
      "void commit();  // iokc-lint: blocking\n"
      "void read_only() const;\n"
      "void save(const std::string& p);  // iokc-lint: blocking\n");
  EXPECT_EQ(names, (std::vector<std::string>{"commit", "save"}));
}

// -- suppressions -----------------------------------------------------------

TEST(Lint, JustifiedAllowSuppressesTheFinding) {
  FixtureTree tree("allow");
  tree.add("db/wal.cpp",
           "void flush(int fd, util::Mutex& m) {\n"
           "  const util::LockGuard lock(m);\n"
           "  // iokc-lint: allow(blocking-under-lock): durability contract --\n"
           "  // the commit must not return before the record is on disk.\n"
           "  ::fsync(fd);\n"
           "}\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, AllowWithoutJustificationIsItselfADiagnostic) {
  FixtureTree tree("allownojust");
  tree.add("db/wal.cpp",
           "void flush(int fd, util::Mutex& m) {\n"
           "  const util::LockGuard lock(m);\n"
           "  ::fsync(fd);  // iokc-lint: allow(blocking-under-lock)\n"
           "}\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "suppression");
  EXPECT_NE(diagnostics[0].message.find("justification"), std::string::npos);
}

TEST(Lint, AllowForADifferentRuleDoesNotSuppress) {
  FixtureTree tree("allowwrong");
  tree.add("db/wal.cpp",
           "void flush(int fd, util::Mutex& m) {\n"
           "  const util::LockGuard lock(m);\n"
           "  // iokc-lint: allow(raw-mutex): wrong rule entirely\n"
           "  ::fsync(fd);\n"
           "}\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "blocking-under-lock");
}

// -- lock-order -------------------------------------------------------------

TEST(Lint, RankInversionInNestedGuardsIsFlagged) {
  FixtureTree tree("rank");
  tree.add("svc/state.cpp",
           "util::Mutex low_{util::LockRank::kObs, \"obs.low\"};\n"
           "util::Mutex high_{util::LockRank::kSvc, \"svc.high\"};\n"
           "void inverted() {\n"
           "  const util::LockGuard outer(low_);\n"
           "  const util::LockGuard inner(high_);\n"
           "}\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "lock-order");
  EXPECT_EQ(diagnostics[0].line, 5u);
  EXPECT_NE(diagnostics[0].message.find("svc.high"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("obs.low"), std::string::npos);
}

TEST(Lint, AcquisitionCycleIsFlagged) {
  // Unranked mutexes (no LockRank in scope) still feed the cycle check via
  // their fallback module:variable names.
  FixtureTree tree("cycle");
  tree.add("db/ab.cpp",
           "void f(util::Mutex& a_, util::Mutex& b_) {\n"
           "  const util::LockGuard la(a_);\n"
           "  const util::LockGuard lb(b_);\n"
           "}\n"
           "void g(util::Mutex& a_, util::Mutex& b_) {\n"
           "  const util::LockGuard lb(b_);\n"
           "  const util::LockGuard la(a_);\n"
           "}\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "lock-order");
  EXPECT_NE(diagnostics[0].message.find("cycle"), std::string::npos);
}

TEST(Lint, LockGraphIsExportedAsDot) {
  FixtureTree tree("dot");
  tree.add("svc/state.cpp",
           "util::Mutex outer_{util::LockRank::kSvc, \"svc.outer\"};\n"
           "util::Mutex inner_{util::LockRank::kObs, \"obs.inner\"};\n"
           "void f() {\n"
           "  const util::LockGuard lo(outer_);\n"
           "  const util::LockGuard li(inner_);\n"
           "}\n");
  const auto analysis = analyze_tree({tree.root()});
  EXPECT_TRUE(analysis.diagnostics.empty());
  ASSERT_EQ(analysis.lock_nodes.size(), 2u);
  ASSERT_EQ(analysis.lock_edges.size(), 1u);
  EXPECT_EQ(analysis.lock_edges[0].from, "svc.outer");
  EXPECT_EQ(analysis.lock_edges[0].to, "obs.inner");
  const std::string dot =
      lock_graph_dot(analysis.lock_nodes, analysis.lock_edges);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"svc.outer\" -> \"obs.inner\""), std::string::npos);
  EXPECT_NE(dot.find("rank 60"), std::string::npos);
}

// -- raw-mutex --------------------------------------------------------------

TEST(Lint, RawStdMutexOutsideUtilIsFlagged) {
  FixtureTree tree("rawmutex");
  tree.add("db/state.cpp",
           "#include <mutex>\n"
           "std::mutex m;\n"
           "void f() { std::lock_guard<std::mutex> lock(m); }\n");
  tree.add("util/wrapper.cpp",
           "#include <mutex>\n"
           "std::mutex allowed_here;\n");
  const auto diagnostics = lint_tree(tree.root());
  // Line 2 declares std::mutex; line 3 uses std::lock_guard and names
  // std::mutex again as its template argument. util/ is exempt.
  ASSERT_EQ(diagnostics.size(), 3u);
  for (const Diagnostic& d : diagnostics) {
    EXPECT_EQ(d.rule, "raw-mutex");
    EXPECT_NE(d.file.find("db"), std::string::npos);
  }
}

TEST(Lint, ConditionVariableAnyIsAllowedEverywhere) {
  // The annotated wrappers are BasicLockable, so condition_variable_any is
  // the one std synchronization type callers legitimately need.
  FixtureTree tree("cvany");
  tree.add("svc/waiter.cpp",
           "#include <condition_variable>\n"
           "std::condition_variable_any cv;\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, NewPassesCanBeDisabled) {
  FixtureTree tree("disable");
  tree.add("db/all.cpp",
           "#include <mutex>\n"
           "std::mutex raw;\n"
           "void f(int fd, util::Mutex& m) {\n"
           "  const util::LockGuard lock(m);\n"
           "  ::fsync(fd);\n"
           "}\n");
  Options options;
  options.check_blocking_under_lock = false;
  options.check_raw_mutex = false;
  options.check_lock_order = false;
  EXPECT_TRUE(lint_tree(tree.root(), options).empty());
}

TEST(Lint, TheRepoItselfIsClean) {
  // Mirrors the standalone `iokc_lint.repo` ctest and the CI invocation:
  // src and tools are one analysis, so the blocking markers declared in
  // src/db apply to tools/ too, and the lock graph is global.
  const fs::path src = fs::path(IOKC_REPO_ROOT) / "src";
  const fs::path tools = fs::path(IOKC_REPO_ROOT) / "tools";
  const auto analysis = analyze_tree({src.string(), tools.string()});
  for (const Diagnostic& d : analysis.diagnostics) {
    ADD_FAILURE() << to_string(d);
  }
  // The shipped lock graph must know every ranked mutex in the tree.
  EXPECT_GE(analysis.lock_nodes.size(), 7u);
}

}  // namespace
}  // namespace iokc::lint
