#include "tools/iokc-lint/lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace iokc::lint {
namespace {

namespace fs = std::filesystem;

// Builds a throwaway fixture tree under the gtest temp dir; files are given
// as (relative path, contents).
class FixtureTree {
 public:
  explicit FixtureTree(const std::string& name)
      : root_(fs::path(testing::TempDir()) / ("iokc_lint_" + name)) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~FixtureTree() { fs::remove_all(root_); }

  void add(const std::string& relative, const std::string& contents) {
    const fs::path path = root_ / relative;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << contents;
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

std::vector<std::string> rules_of(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> rules;
  for (const Diagnostic& d : diagnostics) {
    rules.push_back(d.rule);
  }
  return rules;
}

TEST(Lint, CleanTreePasses) {
  FixtureTree tree("clean");
  tree.add("util/thing.hpp", "#pragma once\nint thing();\n");
  tree.add("util/thing.cpp",
           "#include \"src/util/thing.hpp\"\n"
           "int thing() { return 1; }\n");
  tree.add("fs/stripe.cpp",
           "#include \"src/util/thing.hpp\"\n"
           "#include \"src/sim/clock.hpp\"\n"
           "void f() { throw SimError(\"fs owns SimError\"); }\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, UpwardIncludeIsALayeringViolation) {
  FixtureTree tree("layering");
  tree.add("sim/engine.cpp", "#include \"src/cli/cli.hpp\"\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
  EXPECT_EQ(diagnostics[0].line, 1u);
  EXPECT_NE(diagnostics[0].message.find("'sim'"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("'cli'"), std::string::npos);
}

TEST(Lint, SameRankSiblingIncludeIsFlagged) {
  // extract and persist are parallel layer-4 siblings; neither may include
  // the other.
  FixtureTree tree("siblings");
  tree.add("extract/extractor.cpp", "#include \"src/persist/repository.hpp\"\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
}

TEST(Lint, DownwardAndSelfIncludesPass) {
  FixtureTree tree("downward");
  tree.add("cli/main.cpp",
           "#include \"src/cli/cli.hpp\"\n"
           "#include \"src/cycle/cycle.hpp\"\n"
           "#include \"src/util/log.hpp\"\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, MissingPragmaOnceIsFlagged) {
  FixtureTree tree("pragma");
  tree.add("util/guarded.hpp", "#pragma once\nint a();\n");
  tree.add("util/naked.hpp", "int b();\n");
  tree.add("util/impl.cpp", "int b() { return 2; }\n");  // .cpp exempt
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "pragma-once");
  EXPECT_NE(diagnostics[0].file.find("naked.hpp"), std::string::npos);
}

TEST(Lint, ForeignSubsystemThrowIsFlagged) {
  FixtureTree tree("ownership");
  tree.add("analysis/stats.cpp",
           "void f() { throw SimError(\"not ours\"); }\n");
  tree.add("db/table.cpp",
           "void g() { throw DbError(\"ours\"); }\n");
  tree.add("sim/engine.cpp",
           "void h() { throw iokc::SimError(\"qualified, ours\"); }\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "exception-ownership");
  EXPECT_NE(diagnostics[0].file.find("stats.cpp"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("SimError"), std::string::npos);
}

TEST(Lint, RootErrorAndStdExceptionsAreFlagged) {
  FixtureTree tree("rooterror");
  tree.add("util/a.cpp", "void f() { throw Error(\"too generic\"); }\n");
  tree.add("util/b.cpp",
           "#include <stdexcept>\n"
           "void g() { throw std::runtime_error(\"raw\"); }\n");
  tree.add("util/c.cpp", "void h() { try { g(); } catch (...) { throw; } }\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "exception-ownership");
  EXPECT_EQ(diagnostics[1].rule, "exception-ownership");
}

TEST(Lint, NonLiteralFormatStringIsFlagged) {
  FixtureTree tree("format");
  tree.add("util/log.cpp",
           "#include <cstdio>\n"
           "void log_ok(int v) { std::printf(\"%d\", v); }\n"
           "void log_bad(const char* fmt) { std::printf(fmt); }\n"
           "void log_f(const char* fmt) { std::fprintf(stderr, fmt); }\n"
           "void log_n(char* b, const char* fmt) {\n"
           "  std::snprintf(b, 8, fmt);\n"
           "}\n");
  const auto diagnostics = lint_tree(tree.root());
  EXPECT_EQ(rules_of(diagnostics),
            (std::vector<std::string>{"format-literal", "format-literal",
                                      "format-literal"}));
}

TEST(Lint, ConcatenatedAndWrappedLiteralsPass) {
  FixtureTree tree("formatok");
  tree.add("util/log.cpp",
           "#include <cstdio>\n"
           "void f(double x) {\n"
           "  char buf[64];\n"
           "  std::snprintf(buf, sizeof buf,\n"
           "                \"%.2f\", x);\n"
           "  std::printf(\"a\" \"b\");\n"
           "}\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, CommentsAndStringsDoNotTrigger) {
  FixtureTree tree("scrub");
  tree.add("sim/engine.cpp",
           "// #include \"src/cli/cli.hpp\"\n"
           "/* throw DbError(\"commented\"); */\n"
           "const char* kDoc = \"throw DbError(not code) printf(fmt)\";\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, RawStringsAreScrubbed) {
  FixtureTree tree("rawstring");
  tree.add("persist/schema.cpp",
           "const char* kSql = R\"sql(\n"
           "  -- throw SimError(\"inside sql\") #include \"src/cli/x.hpp\"\n"
           ")sql\";\n"
           "void f() { throw DbError(\"persist owns DbError\"); }\n");
  EXPECT_TRUE(lint_tree(tree.root()).empty());
}

TEST(Lint, UnknownModulesSkipLayeringButKeepOtherRules) {
  FixtureTree tree("unknown");
  tree.add("scripts/tool.cpp",
           "#include \"src/cli/cli.hpp\"\n"
           "void f(const char* fmt) { printf(fmt); }\n");
  const auto diagnostics = lint_tree(tree.root());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "format-literal");
}

TEST(Lint, OptionsDisableIndividualRules) {
  FixtureTree tree("options");
  tree.add("sim/engine.cpp", "#include \"src/cli/cli.hpp\"\n");
  Options options;
  options.check_layering = false;
  EXPECT_TRUE(lint_tree(tree.root(), options).empty());
}

TEST(Lint, DiagnosticRenderingIsStable) {
  Diagnostic d{"src/sim/engine.cpp", 12, "layering", "nope"};
  EXPECT_EQ(to_string(d), "src/sim/engine.cpp:12: [layering] nope");
}

TEST(Lint, ModuleRanksMatchTheArchitecture) {
  EXPECT_EQ(module_rank("util"), 0);
  EXPECT_LT(module_rank("util"), module_rank("obs"));
  EXPECT_LT(module_rank("obs"), module_rank("sim"));
  EXPECT_LT(module_rank("util"), module_rank("sim"));
  EXPECT_LT(module_rank("sim"), module_rank("fs"));
  EXPECT_LT(module_rank("fs"), module_rank("iostack"));
  EXPECT_LT(module_rank("iostack"), module_rank("generators"));
  EXPECT_EQ(module_rank("extract"), module_rank("persist"));
  EXPECT_LT(module_rank("persist"), module_rank("analysis"));
  EXPECT_LT(module_rank("analysis"), module_rank("usage"));
  EXPECT_LT(module_rank("usage"), module_rank("cycle"));
  EXPECT_EQ(module_rank("svc"), module_rank("cycle"));  // parallel siblings
  EXPECT_LT(module_rank("usage"), module_rank("svc"));
  EXPECT_LT(module_rank("cycle"), module_rank("cli"));
  EXPECT_LT(module_rank("svc"), module_rank("cli"));
  EXPECT_EQ(module_rank("no_such_module"), -1);
}

TEST(Lint, TheRepoItselfIsClean) {
  // Mirrors the standalone `iokc_lint.repo` ctest: the shipped source tree
  // must satisfy its own lint rules.
  const fs::path src = fs::path(IOKC_REPO_ROOT) / "src";
  const fs::path tools = fs::path(IOKC_REPO_ROOT) / "tools";
  for (const fs::path& root : {src, tools}) {
    for (const Diagnostic& d : lint_tree(root.string())) {
      ADD_FAILURE() << to_string(d);
    }
  }
}

}  // namespace
}  // namespace iokc::lint
