#include "src/util/mutex.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>

#include "src/util/check.hpp"

namespace iokc::util {
namespace {

// The rank detector aborts the process, so the violation tests are death
// tests; they only apply when the checks layer is compiled in, and gtest
// death tests fork(), which ThreadSanitizer does not support.
#if defined(__SANITIZE_THREAD__)
#define IOKC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IOKC_TSAN 1
#endif
#endif
#ifndef IOKC_TSAN
#define IOKC_TSAN 0
#endif

TEST(Mutex, DescendingAcquisitionIsAllowed) {
  Mutex svc(LockRank::kSvc, "svc.test");
  Mutex db(LockRank::kDb, "db.test");
  Mutex util(LockRank::kUtil, "util.test");
  const LockGuard outer(svc);
  const LockGuard middle(db);
  const LockGuard inner(util);
  SUCCEED();
}

TEST(Mutex, OutOfLifoReleaseIsAllowed) {
  // UniqueLock can release in any order; the detector tracks the held set,
  // not a strict stack.
  Mutex svc(LockRank::kSvc, "svc.test");
  Mutex db(LockRank::kDb, "db.test");
  UniqueLock outer(svc);
  UniqueLock inner(db);
  outer.unlock();  // released before the lower-ranked inner lock
  inner.unlock();
  SUCCEED();
}

TEST(Mutex, SharedLocksFollowTheSameRankOrder) {
  SharedMutex svc(LockRank::kSvc, "svc.shared");
  Mutex db(LockRank::kDb, "db.test");
  const SharedLockGuard reader(svc);
  const LockGuard inner(db);
  SUCCEED();
}

TEST(Mutex, UniqueLockRelocks) {
  Mutex m(LockRank::kDb, "db.relock");
  UniqueLock lock(m);
  lock.unlock();
  lock.lock();
  SUCCEED();
}

TEST(Mutex, UniqueLockPairsWithConditionVariableAny) {
  Mutex m(LockRank::kUtil, "util.cv");
  std::condition_variable_any cv;
  bool ready = false;
  std::thread signaller([&] {
    UniqueLock lock(m);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock lock(m);
    while (!ready) {
      cv.wait(lock);
    }
  }
  signaller.join();
  EXPECT_TRUE(ready);
}

TEST(Mutex, RanksAreStrictlyOrderedAcrossLayers) {
  EXPECT_LT(static_cast<int>(LockRank::kUtil), static_cast<int>(LockRank::kObs));
  EXPECT_LT(static_cast<int>(LockRank::kObs), static_cast<int>(LockRank::kDb));
  EXPECT_LT(static_cast<int>(LockRank::kDb),
            static_cast<int>(LockRank::kPersist));
  EXPECT_LT(static_cast<int>(LockRank::kPersist),
            static_cast<int>(LockRank::kSim));
  EXPECT_LT(static_cast<int>(LockRank::kSim),
            static_cast<int>(LockRank::kCycle));
  EXPECT_LT(static_cast<int>(LockRank::kCycle),
            static_cast<int>(LockRank::kSvc));
}

#if IOKC_CHECKS_ENABLED && !IOKC_TSAN

TEST(MutexDeathTest, InvertedAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex db(LockRank::kDb, "db.low");
        Mutex svc(LockRank::kSvc, "svc.high");
        const LockGuard outer(db);
        const LockGuard inner(svc);  // rank 60 while holding rank 20
      },
      "lock-rank violation.*svc\\.high.*db\\.low");
}

TEST(MutexDeathTest, EqualRankNestingAborts) {
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kDb, "db.a");
        Mutex b(LockRank::kDb, "db.b");
        const LockGuard outer(a);
        const LockGuard inner(b);  // equal rank: order would be ambiguous
      },
      "lock-rank violation");
}

TEST(MutexDeathTest, RecursiveAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex m(LockRank::kDb, "db.twice");
        m.lock();
        m.lock();  // would deadlock; the detector aborts instead of hanging
      },
      "lock-rank violation.*recursive");
}

#endif  // IOKC_CHECKS_ENABLED && !IOKC_TSAN

}  // namespace
}  // namespace iokc::util
