// Exercises the disabled side of the invariant macros: with
// IOKC_DISABLE_CHECKS the macros must compile out entirely — operands are
// parsed but never evaluated, so failing conditions neither throw nor abort.
#undef IOKC_FORCE_CHECKS
#ifndef IOKC_DISABLE_CHECKS
#define IOKC_DISABLE_CHECKS
#endif
#include "src/util/check.hpp"

#include <gtest/gtest.h>

namespace iokc::util {
namespace {

static_assert(IOKC_CHECKS_ENABLED == 0,
              "IOKC_DISABLE_CHECKS must force the macros off");

TEST(CheckDisabled, FailingConditionsAreNoOps) {
  EXPECT_NO_THROW(IOKC_CHECK(false, "must not fire in release"));
  IOKC_ASSERT(false);  // would abort if the macro were live
  SUCCEED();
}

TEST(CheckDisabled, OperandsAreNotEvaluated) {
  int evaluations = 0;
  IOKC_ASSERT([&] {
    ++evaluations;
    return false;
  }());
  IOKC_CHECK([&] {
    ++evaluations;
    return false;
  }(), "unevaluated");
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace iokc::util
