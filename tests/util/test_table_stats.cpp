#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"
#include "src/util/summary_stats.hpp"
#include "src/util/table.hpp"

namespace iokc::util {
namespace {

TEST(TextTable, RendersAlignedTable) {
  TextTable table;
  table.set_header({"op", "MiB/s"});
  table.set_alignment({Align::kLeft, Align::kRight});
  table.add_row({"write", "2850.13"});
  table.add_row({"read", "3001.2"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| op    |"), std::string::npos);
  EXPECT_NE(out.find("| write | 2850.13 |"), std::string::npos);
  EXPECT_NE(out.find("|  3001.2 |"), std::string::npos);
  // Rules above header, below header, and at the bottom.
  EXPECT_EQ(std::count(out.begin(), out.end(), '+') % 3, 0);
}

TEST(TextTable, PadsShortRows) {
  TextTable table;
  table.set_header({"a", "b", "c"});
  table.add_row({"1"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(SummaryStats, Empty) {
  const SummaryStats stats = summarize({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(SummaryStats, SingleValue) {
  const std::vector<double> values{5.0};
  const SummaryStats stats = summarize(values);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.min, 5.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(SummaryStats, KnownSample) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SummaryStats stats = summarize(values);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 9.0);
  EXPECT_NEAR(stats.stddev, 2.1380899, 1e-6);  // sample stddev (n-1)
  EXPECT_DOUBLE_EQ(stats.sum, 40.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(values, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(median(values), 2.5);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> values{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(values), 5.0);
}

TEST(Percentile, Errors) {
  const std::vector<double> values{1.0};
  EXPECT_THROW(percentile({}, 50.0), ConfigError);
  EXPECT_THROW(percentile(values, -1.0), ConfigError);
  EXPECT_THROW(percentile(values, 101.0), ConfigError);
}

TEST(GeometricMean, KnownValues) {
  const std::vector<double> values{1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(values), 4.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  const std::vector<double> zero{1.0, 0.0};
  const std::vector<double> negative{1.0, -2.0};
  EXPECT_THROW(geometric_mean({}), ConfigError);
  EXPECT_THROW(geometric_mean(zero), ConfigError);
  EXPECT_THROW(geometric_mean(negative), ConfigError);
}

}  // namespace
}  // namespace iokc::util
