#include "src/util/strings.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/error.hpp"

namespace iokc::util {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitWsDropsEmpty) {
  EXPECT_EQ(split_ws("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Strings, SplitLinesHandlesCrlfAndMissingFinalNewline) {
  EXPECT_EQ(split_lines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_lines("a\r\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_lines(""), (std::vector<std::string>{}));
  EXPECT_EQ(split_lines("only"), (std::vector<std::string>{"only"}));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, CasePredicates) {
  EXPECT_EQ(to_lower("MpI-Io"), "mpi-io");
  EXPECT_TRUE(starts_with("io500 result", "io500"));
  EXPECT_FALSE(starts_with("io", "io500"));
  EXPECT_TRUE(contains("hello world", "lo wo"));
  EXPECT_FALSE(contains("hello", "z"));
}

TEST(Strings, ParseI64) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64(" -7 "), -7);
  EXPECT_THROW(parse_i64("4.2"), ParseError);
  EXPECT_THROW(parse_i64(""), ParseError);
  EXPECT_THROW(parse_i64("x"), ParseError);
}

TEST(Strings, ParseF64) {
  EXPECT_DOUBLE_EQ(parse_f64("2850.13"), 2850.13);
  EXPECT_DOUBLE_EQ(parse_f64(" 1e3 "), 1000.0);
  EXPECT_THROW(parse_f64("abc"), ParseError);
  EXPECT_THROW(parse_f64("1.5x"), ParseError);
  EXPECT_THROW(parse_f64(""), ParseError);
}

TEST(Strings, ParseF64RejectsOverflow) {
  EXPECT_THROW(parse_f64("1e999"), ParseError);
  EXPECT_THROW(parse_f64("-1e999"), ParseError);
  // Gradual underflow stays finite and is accepted.
  EXPECT_GE(parse_f64("1e-400"), 0.0);
  // Textual inf/nan remain parseable for benchmark-log tolerance; only
  // overflow is an error.
  EXPECT_TRUE(std::isinf(parse_f64("inf")));
  EXPECT_TRUE(std::isnan(parse_f64("nan")));
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a'b'c", "'", "''"), "a''b''c");
  EXPECT_EQ(replace_all("xxx", "x", "yy"), "yyyyyy");
  EXPECT_EQ(replace_all("abc", "", "z"), "abc");
  EXPECT_EQ(replace_all("abc", "q", "z"), "abc");
}

}  // namespace
}  // namespace iokc::util
