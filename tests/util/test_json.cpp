#include "src/util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <string_view>

#include "src/util/error.hpp"
#include "src/util/json_index.hpp"
#include "src/util/rng.hpp"

namespace iokc::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_EQ(parse_json("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, IntAndDoubleStayDistinct) {
  EXPECT_TRUE(parse_json("5").is_int());
  EXPECT_TRUE(parse_json("5.0").is_double());
  EXPECT_DOUBLE_EQ(parse_json("5").as_double(), 5.0);  // numeric affinity
  EXPECT_THROW(parse_json("5.5").as_int(), ParseError);
}

TEST(Json, ParsesNested) {
  const JsonValue v =
      parse_json(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").at("e").is_null());
}

TEST(Json, StringEscapes) {
  const JsonValue v = parse_json(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, DumpEscapesControlCharacters) {
  const JsonValue v(std::string("a\"b\nc"));
  EXPECT_EQ(v.dump(), "\"a\\\"b\\nc\"");
}

TEST(Json, DumpEscapesEveryC0ControlCharacter) {
  // RFC 8259 §7: U+0000 through U+001F must never appear raw in a string.
  std::string raw;
  for (char c = 0; c < 0x20; ++c) {
    raw += c;
  }
  const std::string dumped = JsonValue(raw).dump();
  for (char c = 1; c < 0x20; ++c) {
    EXPECT_EQ(dumped.find(c), std::string::npos)
        << "raw control byte " << static_cast<int>(c) << " in " << dumped;
  }
  EXPECT_NE(dumped.find("\\u0000"), std::string::npos);  // embedded NUL
  EXPECT_NE(dumped.find("\\u0008"), std::string::npos);  // \b has no shortcut
  EXPECT_NE(dumped.find("\\u001f"), std::string::npos);
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\r"), std::string::npos);
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  // The escaped form parses back to the original bytes.
  EXPECT_EQ(parse_json(dumped).as_string(), raw);
}

TEST(Json, DumpPassesValidUtf8Verbatim) {
  const std::string two = "h\xC3\xA9llo";              // é
  const std::string three = "\xE2\x82\xAC" "42";       // €
  const std::string four = "\xF0\x9D\x84\x9E";         // 𝄞 (U+1D11E)
  EXPECT_EQ(JsonValue(two).dump(), "\"" + two + "\"");
  EXPECT_EQ(JsonValue(three).dump(), "\"" + three + "\"");
  EXPECT_EQ(JsonValue(four).dump(), "\"" + four + "\"");
}

TEST(Json, DumpReplacesInvalidUtf8) {
  // Each invalid byte becomes U+FFFD, so the output is always parseable.
  EXPECT_EQ(JsonValue(std::string("a\x80z")).dump(),  // stray continuation
            "\"a\\ufffdz\"");
  EXPECT_EQ(JsonValue(std::string("a\xFFz")).dump(),  // invalid lead
            "\"a\\ufffdz\"");
  EXPECT_EQ(JsonValue(std::string("a\xC3")).dump(),   // truncated at end
            "\"a\\ufffd\"");
  EXPECT_EQ(JsonValue(std::string("\xC0\xAF")).dump(),  // overlong '/'
            "\"\\ufffd\\ufffd\"");
  EXPECT_EQ(JsonValue(std::string("\xED\xA0\x80")).dump(),  // surrogate
            "\"\\ufffd\\ufffd\\ufffd\"");
  EXPECT_EQ(JsonValue(std::string("\xF4\x90\x80\x80")).dump(),  // > U+10FFFF
            "\"\\ufffd\\ufffd\\ufffd\\ufffd\"");
  // A valid sequence interrupted by a bad continuation byte.
  EXPECT_EQ(JsonValue(std::string("\xC3\x28")).dump(), "\"\\ufffd(\"");
  // Everything above survives a parse round trip.
  for (const std::string& s :
       {std::string("a\x80z"), std::string("\xED\xA0\x80")}) {
    EXPECT_NO_THROW(parse_json(JsonValue(s).dump()));
  }
}

TEST(Json, ObjectOrderPreserved) {
  const JsonValue v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  const JsonObject& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(Json, FindAndAt) {
  const JsonValue v = parse_json(R"({"x": 1})");
  EXPECT_NE(v.find("x"), nullptr);
  EXPECT_EQ(v.find("y"), nullptr);
  EXPECT_THROW(v.at("y"), ParseError);
}

TEST(Json, SetInsertsAndReplaces) {
  JsonValue v;
  v.set("a", JsonValue(1));
  v.set("b", JsonValue("x"));
  v.set("a", JsonValue(2));
  EXPECT_EQ(v.at("a").as_int(), 2);
  EXPECT_EQ(v.as_object().size(), 2u);
}

TEST(Json, CompactAndPrettyRoundTrip) {
  const std::string doc =
      R"({"name":"iokc","values":[1,2.5,null,true],"nested":{"k":"v"}})";
  const JsonValue v = parse_json(doc);
  EXPECT_EQ(parse_json(v.dump()).dump(), v.dump());
  EXPECT_EQ(parse_json(v.dump(2)).dump(), v.dump());
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(parse_json(""), ParseError);
  EXPECT_THROW(parse_json("{"), ParseError);
  EXPECT_THROW(parse_json("[1,]"), ParseError);
  EXPECT_THROW(parse_json("{\"a\":}"), ParseError);
  EXPECT_THROW(parse_json("\"unterminated"), ParseError);
  EXPECT_THROW(parse_json("tru"), ParseError);
  EXPECT_THROW(parse_json("1 2"), ParseError);
  EXPECT_THROW(parse_json("{'single': 1}"), ParseError);
}

TEST(Json, RejectsNonFiniteNumbers) {
  // The JSON grammar has no inf/nan: overflowing literals must be rejected
  // rather than silently becoming values dump() cannot round-trip.
  EXPECT_THROW(parse_json("1e999"), ParseError);
  EXPECT_THROW(parse_json("[-1e999]"), ParseError);
  EXPECT_THROW(parse_json("{\"bw\": 1e400}"), ParseError);
  EXPECT_THROW(parse_json("Infinity"), ParseError);
  EXPECT_THROW(parse_json("NaN"), ParseError);
  // Underflow to zero/denormal stays finite and parses.
  EXPECT_DOUBLE_EQ(parse_json("1e-999").as_double(), 0.0);
}

TEST(Json, OverflowErrorsCarryPosition) {
  try {
    parse_json("{\"a\": 1e999}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, TypeMismatchesThrow) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.as_object(), ParseError);
  EXPECT_THROW(v.as_string(), ParseError);
  EXPECT_THROW(v.as_bool(), ParseError);
  EXPECT_THROW(v.as_int(), ParseError);
}

TEST(Json, LargeIntegerPrecision) {
  const std::int64_t big = 9007199254740993ll;  // 2^53 + 1
  const JsonValue v = parse_json(std::to_string(big));
  EXPECT_EQ(v.as_int(), big);
  EXPECT_EQ(parse_json(v.dump()).as_int(), big);
}

TEST(Json, SurrogatePairsDecodeToFourByteUtf8) {
  // \uD834\uDD1E is U+1D11E (𝄞). The seed parser emitted each half as a
  // separate 3-byte sequence (CESU-8) — which dump() then replaced with
  // U+FFFD as invalid UTF-8, corrupting the round trip.
  const JsonValue v = parse_json("\"\\uD834\\uDD1E\"");
  EXPECT_EQ(v.as_string(), "\xF0\x9D\x84\x9E");
  // Round trip: the decoded astral character dumps verbatim and re-parses.
  EXPECT_EQ(parse_json(v.dump()).as_string(), "\xF0\x9D\x84\x9E");
  // Lowercase hex and mixed case are equally valid.
  EXPECT_EQ(parse_json("\"\\ud834\\udd1e\"").as_string(), "\xF0\x9D\x84\x9E");
  // Highest code point: U+10FFFF.
  EXPECT_EQ(parse_json("\"\\uDBFF\\uDFFF\"").as_string(), "\xF4\x8F\xBF\xBF");
}

TEST(Json, LoneAndMisorderedSurrogatesAreRejected) {
  EXPECT_THROW(parse_json("\"\\uD834\""), ParseError);        // lone high
  EXPECT_THROW(parse_json("\"\\uDD1E\""), ParseError);        // lone low
  EXPECT_THROW(parse_json("\"\\uDD1E\\uD834\""), ParseError); // reversed
  EXPECT_THROW(parse_json("\"\\uD834x\""), ParseError);       // high then text
  EXPECT_THROW(parse_json("\"\\uD834\\n\""), ParseError);     // high then esc
  EXPECT_THROW(parse_json("\"\\uD834\\u0041\""), ParseError); // high then BMP
}

TEST(Json, NumberGrammarAcceptsRfc8259Forms) {
  EXPECT_EQ(parse_json("0").as_int(), 0);
  EXPECT_EQ(parse_json("-0").as_int(), 0);  // RFC allows a signed zero
  EXPECT_TRUE(std::signbit(parse_json("-0.0").as_double()));
  EXPECT_DOUBLE_EQ(parse_json("0.5").as_double(), 0.5);
  EXPECT_DOUBLE_EQ(parse_json("1e+10").as_double(), 1e10);
  EXPECT_DOUBLE_EQ(parse_json("1E-2").as_double(), 0.01);
  EXPECT_DOUBLE_EQ(parse_json("0e0").as_double(), 0.0);
}

TEST(Json, NumberGrammarRejectsNonRfc8259Forms) {
  // RFC 8259 §6: no leading zeros, no bare '.', no sign-only, no hex. The
  // seed parser's strtod accepted several of these.
  for (const char* doc : {"01", "-01", "00", "+1", "1.", ".5", "-.5", "1e",
                          "1e+", "1E-", "0x10", "1.2.3", "--1", "-", "1.e3",
                          "+0", "01.5", "1e1.5"}) {
    EXPECT_THROW(parse_json(doc), ParseError) << doc;
    EXPECT_THROW(parse_json_scalar(doc), ParseError) << doc;
  }
}

TEST(Json, WhitespaceIsExactlyTheFourRfc8259Bytes) {
  EXPECT_EQ(parse_json(" \t\r\n 1 \t\r\n").as_int(), 1);
  // The seed parser used locale isspace(), which also accepted \f and \v.
  EXPECT_THROW(parse_json("\f1"), ParseError);
  EXPECT_THROW(parse_json("\v1"), ParseError);
  EXPECT_THROW(parse_json("1\f"), ParseError);
  EXPECT_THROW(parse_json("[1,\v2]"), ParseError);
  EXPECT_THROW(parse_json_scalar("\f1"), ParseError);
  EXPECT_THROW(parse_json_scalar("1\v"), ParseError);
}

namespace {
std::string nested_arrays(std::size_t depth) {
  std::string doc(depth, '[');
  doc += "1";
  doc.append(depth, ']');
  return doc;
}
}  // namespace

TEST(Json, DepthCapDefaultsTo256OnBothParsers) {
  EXPECT_NO_THROW(parse_json(nested_arrays(kDefaultJsonMaxDepth)));
  EXPECT_THROW(parse_json(nested_arrays(kDefaultJsonMaxDepth + 1)),
               ParseError);
  EXPECT_NO_THROW(parse_json_scalar(nested_arrays(kDefaultJsonMaxDepth)));
  EXPECT_THROW(parse_json_scalar(nested_arrays(kDefaultJsonMaxDepth + 1)),
               ParseError);
}

TEST(Json, DepthCapIsConfigurable) {
  JsonParseOptions options;
  options.max_depth = 4;
  EXPECT_NO_THROW(parse_json(nested_arrays(4), options));
  EXPECT_THROW(parse_json(nested_arrays(5), options), ParseError);
  // Objects count toward the same budget.
  EXPECT_THROW(parse_json(R"({"a":{"b":{"c":{"d":{"e":1}}}}})", options),
               ParseError);
  EXPECT_THROW(parse_json_scalar(nested_arrays(5), options), ParseError);
}

TEST(JsonIndex, SimdAndSwarScansAgreeOnRandomizedDocuments) {
  // build_structural_index dispatches to SSE2 when available; the SWAR
  // fallback must produce the identical entry sequence. Fuzz with documents
  // that exercise escapes, quotes inside strings, and unaligned tails.
  Rng rng(0x5eedu);
  StructuralIndex simd_index;
  StructuralIndex swar_index;
  // Regression: adjacent bytes whose values differ by one. A borrow-based
  // SWAR equality test flags the byte above a match — ",-1" classified the
  // '-' as a comma and "\]" as a double backslash — so negative numbers and
  // bracket escapes diverged from the SSE2 scan on non-SIMD builds.
  for (const std::string_view doc :
       {std::string_view("[-1,-2,-3]"), std::string_view("[\"a\\]z\",-4]"),
        std::string_view("[\"#\",\"\\\\]\"]"), std::string_view("[1,-0.5]")}) {
    build_structural_index(doc, simd_index);
    detail::build_structural_index_swar(doc, swar_index);
    ASSERT_EQ(simd_index.positions, swar_index.positions) << doc;
  }
  for (int round = 0; round < 200; ++round) {
    std::string doc = "{\"k\":[";
    const int items = static_cast<int>(rng.uniform_int(0, 12));
    for (int i = 0; i < items; ++i) {
      if (i != 0) doc += ',';
      switch (rng.uniform_int(0, 3)) {
        case 0: doc += std::to_string(rng.uniform_int(-1000, 1000)); break;
        case 1: doc += "\"s\\\\\\\"q\\u0041"
                       + std::string(rng.uniform_int(0, 70), 'x') + "\"";
                break;
        case 2: doc += "true"; break;
        default: doc += "{\"n\":null}"; break;
      }
    }
    doc += "]}";
    doc.append(rng.uniform_int(0, 63), ' ');  // vary tail-block alignment
    build_structural_index(doc, simd_index);
    detail::build_structural_index_swar(doc, swar_index);
    ASSERT_EQ(simd_index.positions, swar_index.positions) << doc;
  }
}

TEST(Json, StreamingScanHandlesMultiChunkDocuments) {
  // Stage 1 scans lazily in 256 KiB chunks; build a document several chunks
  // long and verify the tree matches the scalar parser element for element.
  std::string doc = "[";
  for (int i = 0; i < 120000; ++i) {
    if (i != 0) doc += ',';
    doc += std::to_string(i);
  }
  doc += "]";
  ASSERT_GT(doc.size(), 512u * 1024u);  // at least three chunks
  const JsonValue fast = parse_json(doc);
  const JsonValue scalar = parse_json_scalar(doc);
  ASSERT_EQ(fast.as_array().size(), 120000u);
  EXPECT_EQ(fast.as_array()[119999].as_int(), 119999);
  EXPECT_EQ(fast.dump(), scalar.dump());
}

TEST(Json, StreamingScanHandlesStringsAcrossChunkBoundaries) {
  // A single string longer than the scan chunk: the in-string state must
  // carry across chunk refills and the closing quote must still pair up.
  const std::string long_string(600'000, 'a');
  const std::string doc = "{\"blob\":\"" + long_string + "\",\"tail\":7}";
  const JsonValue v = parse_json(doc);
  EXPECT_EQ(v.at("blob").as_string(), long_string);
  EXPECT_EQ(v.at("tail").as_int(), 7);
}

TEST(Json, StreamingScanReportsUnterminatedStringInLateChunk) {
  // The unterminated-string diagnosis happens lazily when the scan reaches
  // end of input — including when the open quote sits chunks deep.
  std::string doc = "[";
  for (int i = 0; i < 100000; ++i) {
    doc += std::to_string(i);
    doc += ',';
  }
  doc += "\"never closed";
  ASSERT_GT(doc.size(), 512u * 1024u);
  EXPECT_THROW(parse_json(doc), ParseError);
  EXPECT_THROW(parse_json_scalar(doc), ParseError);
}

TEST(Json, StreamingScanRejectsTrailingGarbageInLateChunk) {
  std::string doc = "[";
  for (int i = 0; i < 100000; ++i) {
    if (i != 0) doc += ',';
    doc += "1";
  }
  doc += "] []";
  EXPECT_THROW(parse_json(doc), ParseError);
  EXPECT_THROW(parse_json_scalar(doc), ParseError);
}

}  // namespace
}  // namespace iokc::util
