#include "src/util/json.hpp"

#include <gtest/gtest.h>

#include "src/util/error.hpp"

namespace iokc::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_EQ(parse_json("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, IntAndDoubleStayDistinct) {
  EXPECT_TRUE(parse_json("5").is_int());
  EXPECT_TRUE(parse_json("5.0").is_double());
  EXPECT_DOUBLE_EQ(parse_json("5").as_double(), 5.0);  // numeric affinity
  EXPECT_THROW(parse_json("5.5").as_int(), ParseError);
}

TEST(Json, ParsesNested) {
  const JsonValue v =
      parse_json(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").at("e").is_null());
}

TEST(Json, StringEscapes) {
  const JsonValue v = parse_json(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, DumpEscapesControlCharacters) {
  const JsonValue v(std::string("a\"b\nc"));
  EXPECT_EQ(v.dump(), "\"a\\\"b\\nc\"");
}

TEST(Json, DumpEscapesEveryC0ControlCharacter) {
  // RFC 8259 §7: U+0000 through U+001F must never appear raw in a string.
  std::string raw;
  for (char c = 0; c < 0x20; ++c) {
    raw += c;
  }
  const std::string dumped = JsonValue(raw).dump();
  for (char c = 1; c < 0x20; ++c) {
    EXPECT_EQ(dumped.find(c), std::string::npos)
        << "raw control byte " << static_cast<int>(c) << " in " << dumped;
  }
  EXPECT_NE(dumped.find("\\u0000"), std::string::npos);  // embedded NUL
  EXPECT_NE(dumped.find("\\u0008"), std::string::npos);  // \b has no shortcut
  EXPECT_NE(dumped.find("\\u001f"), std::string::npos);
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\r"), std::string::npos);
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  // The escaped form parses back to the original bytes.
  EXPECT_EQ(parse_json(dumped).as_string(), raw);
}

TEST(Json, DumpPassesValidUtf8Verbatim) {
  const std::string two = "h\xC3\xA9llo";              // é
  const std::string three = "\xE2\x82\xAC" "42";       // €
  const std::string four = "\xF0\x9D\x84\x9E";         // 𝄞 (U+1D11E)
  EXPECT_EQ(JsonValue(two).dump(), "\"" + two + "\"");
  EXPECT_EQ(JsonValue(three).dump(), "\"" + three + "\"");
  EXPECT_EQ(JsonValue(four).dump(), "\"" + four + "\"");
}

TEST(Json, DumpReplacesInvalidUtf8) {
  // Each invalid byte becomes U+FFFD, so the output is always parseable.
  EXPECT_EQ(JsonValue(std::string("a\x80z")).dump(),  // stray continuation
            "\"a\\ufffdz\"");
  EXPECT_EQ(JsonValue(std::string("a\xFFz")).dump(),  // invalid lead
            "\"a\\ufffdz\"");
  EXPECT_EQ(JsonValue(std::string("a\xC3")).dump(),   // truncated at end
            "\"a\\ufffd\"");
  EXPECT_EQ(JsonValue(std::string("\xC0\xAF")).dump(),  // overlong '/'
            "\"\\ufffd\\ufffd\"");
  EXPECT_EQ(JsonValue(std::string("\xED\xA0\x80")).dump(),  // surrogate
            "\"\\ufffd\\ufffd\\ufffd\"");
  EXPECT_EQ(JsonValue(std::string("\xF4\x90\x80\x80")).dump(),  // > U+10FFFF
            "\"\\ufffd\\ufffd\\ufffd\\ufffd\"");
  // A valid sequence interrupted by a bad continuation byte.
  EXPECT_EQ(JsonValue(std::string("\xC3\x28")).dump(), "\"\\ufffd(\"");
  // Everything above survives a parse round trip.
  for (const std::string& s :
       {std::string("a\x80z"), std::string("\xED\xA0\x80")}) {
    EXPECT_NO_THROW(parse_json(JsonValue(s).dump()));
  }
}

TEST(Json, ObjectOrderPreserved) {
  const JsonValue v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  const JsonObject& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(Json, FindAndAt) {
  const JsonValue v = parse_json(R"({"x": 1})");
  EXPECT_NE(v.find("x"), nullptr);
  EXPECT_EQ(v.find("y"), nullptr);
  EXPECT_THROW(v.at("y"), ParseError);
}

TEST(Json, SetInsertsAndReplaces) {
  JsonValue v;
  v.set("a", JsonValue(1));
  v.set("b", JsonValue("x"));
  v.set("a", JsonValue(2));
  EXPECT_EQ(v.at("a").as_int(), 2);
  EXPECT_EQ(v.as_object().size(), 2u);
}

TEST(Json, CompactAndPrettyRoundTrip) {
  const std::string doc =
      R"({"name":"iokc","values":[1,2.5,null,true],"nested":{"k":"v"}})";
  const JsonValue v = parse_json(doc);
  EXPECT_EQ(parse_json(v.dump()).dump(), v.dump());
  EXPECT_EQ(parse_json(v.dump(2)).dump(), v.dump());
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(parse_json(""), ParseError);
  EXPECT_THROW(parse_json("{"), ParseError);
  EXPECT_THROW(parse_json("[1,]"), ParseError);
  EXPECT_THROW(parse_json("{\"a\":}"), ParseError);
  EXPECT_THROW(parse_json("\"unterminated"), ParseError);
  EXPECT_THROW(parse_json("tru"), ParseError);
  EXPECT_THROW(parse_json("1 2"), ParseError);
  EXPECT_THROW(parse_json("{'single': 1}"), ParseError);
}

TEST(Json, RejectsNonFiniteNumbers) {
  // The JSON grammar has no inf/nan: overflowing literals must be rejected
  // rather than silently becoming values dump() cannot round-trip.
  EXPECT_THROW(parse_json("1e999"), ParseError);
  EXPECT_THROW(parse_json("[-1e999]"), ParseError);
  EXPECT_THROW(parse_json("{\"bw\": 1e400}"), ParseError);
  EXPECT_THROW(parse_json("Infinity"), ParseError);
  EXPECT_THROW(parse_json("NaN"), ParseError);
  // Underflow to zero/denormal stays finite and parses.
  EXPECT_DOUBLE_EQ(parse_json("1e-999").as_double(), 0.0);
}

TEST(Json, OverflowErrorsCarryPosition) {
  try {
    parse_json("{\"a\": 1e999}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, TypeMismatchesThrow) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.as_object(), ParseError);
  EXPECT_THROW(v.as_string(), ParseError);
  EXPECT_THROW(v.as_bool(), ParseError);
  EXPECT_THROW(v.as_int(), ParseError);
}

TEST(Json, LargeIntegerPrecision) {
  const std::int64_t big = 9007199254740993ll;  // 2^53 + 1
  const JsonValue v = parse_json(std::to_string(big));
  EXPECT_EQ(v.as_int(), big);
  EXPECT_EQ(parse_json(v.dump()).as_int(), big);
}

}  // namespace
}  // namespace iokc::util
