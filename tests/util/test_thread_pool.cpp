#include "src/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "src/util/error.hpp"

namespace iokc::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleCoversTasksSubmittedFromTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &counter] {
      ++counter;
      pool.submit([&counter] { ++counter; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, StealsWhenLoadIsUneven) {
  // All tasks land on the deques round-robin, but one long task pins its
  // worker; the others must steal to finish the rest.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter, i] {
      if (i == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      ++counter;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
  EXPECT_GT(pool.steal_count(), 0u);
}

TEST(ThreadPool, TasksSpreadOverMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  for (int i = 0; i < 200; ++i) {
    pool.submit([&mutex, &seen] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      const std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_GT(seen.size(), 1u);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> visits(257);
    parallel_for(visits.size(), jobs,
                 [&visits](std::size_t i) { ++visits[i]; });
    for (const std::atomic<int>& count : visits) {
      EXPECT_EQ(count.load(), 1);
    }
  }
}

TEST(ParallelFor, SerialRunsInlineInIndexOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  parallel_for(0, 8, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, RethrowsLowestIndexException) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    try {
      parallel_for(32, jobs, [](std::size_t i) {
        if (i == 7 || i == 19) {
          throw ConfigError("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& error) {
      EXPECT_STREQ(error.what(), "config error: boom 7");
    }
  }
}

TEST(ParallelFor, TaskContextCarriesTheLogicalIndex) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    std::vector<std::atomic<int>> seen(64);
    parallel_for(seen.size(), jobs, [&seen, jobs](const TaskContext& task) {
      // The logical index is exact regardless of which worker ran the task.
      seen[task.index].fetch_add(1, std::memory_order_relaxed);
      EXPECT_LT(task.worker, jobs);
    });
    for (const std::atomic<int>& visits : seen) {
      EXPECT_EQ(visits.load(), 1);
    }
  }
}

TEST(ParallelFor, InlineTaskContextReportsWorkerZero) {
  parallel_for(4, 1, [](const TaskContext& task) {
    EXPECT_EQ(task.worker, 0u);
  });
}

TEST(ParallelFor, RemainingTasksStillRunAfterAThrow) {
  std::atomic<int> counter{0};
  EXPECT_THROW(parallel_for(64, 4,
                            [&counter](std::size_t i) {
                              ++counter;
                              if (i == 0) {
                                throw ConfigError("first fails");
                              }
                            }),
               ConfigError);
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace iokc::util
