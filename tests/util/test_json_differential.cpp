// Differential suite: the two-stage fast parser (parse_json) and the
// byte-at-a-time reference parser (parse_json_scalar) must be externally
// indistinguishable — identical accept/reject verdicts on every input and
// byte-identical trees (compared through dump()) on every accepted one.
// Cases follow the JSONTestSuite convention: y_ must accept, n_ must
// reject, i_ is implementation-defined but the two parsers must agree.
// A randomized section fuzzes generated trees and byte-level mutations.
// The asan-ubsan preset runs this binary like any other test, so parser
// disagreements AND memory bugs on adversarial input surface here.
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/rng.hpp"

namespace iokc::util {
namespace {

/// Parse verdict: the dump of the tree when accepted, nullopt when the
/// parser threw ParseError. Anything else (other exception, crash) fails
/// the test outright.
std::optional<std::string> fast_verdict(std::string_view doc) {
  try {
    return parse_json(doc).dump();
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

std::optional<std::string> scalar_verdict(std::string_view doc) {
  try {
    return parse_json_scalar(doc).dump();
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

/// The core differential check. Returns the common verdict so callers can
/// additionally pin the expected outcome.
std::optional<std::string> agree(std::string_view doc) {
  const std::optional<std::string> fast = fast_verdict(doc);
  const std::optional<std::string> scalar = scalar_verdict(doc);
  EXPECT_EQ(fast.has_value(), scalar.has_value())
      << "verdict split on: " << doc;
  if (fast && scalar) {
    EXPECT_EQ(*fast, *scalar) << "tree split on: " << doc;
  }
  return fast;
}

TEST(JsonDifferential, AcceptCases) {
  const std::vector<std::string> y_cases = {
      // y_structure
      "null", "true", "false", "0", "-0", "42", "\"\"", "[]", "{}",
      "[null]", "{\"\":0}", " \t\r\n[1]\n\r\t ",
      // y_number
      "0e1", "0e+1", "-0.0", "1.5e300", "1.5e-300", "123456789012345678901",
      "-9223372036854775808", "9223372036854775807", "2.2250738585072014e-308",
      "1e-999",  // underflows to zero, stays finite
      "20e1", "[123e65]", "[1E22]", "[1E-2]", "[0.4e5]",
      // y_string
      "\"a\"", "\"\\\"\"", "\"\\\\\"", "\"\\/\"", "\"\\b\\f\\n\\r\\t\"",
      "\"\\u0041\"", "\"\\u005C\"", "\"\\u0000\"",  // escaped NUL is legal
      "\"\\uD834\\uDD1E\"",                         // surrogate pair
      "\"\\uDBFF\\uDFFF\"",                         // highest code point
      "\"h\xC3\xA9llo\"",                           // raw UTF-8
      "\"\xF0\x9D\x84\x9E\"",                       // raw astral UTF-8
      "\"\\u0964\"",                                // 3-byte BMP escape
      // y_object / y_array
      "{\"a\":[1,2.5,null,true,false,\"s\"],\"b\":{\"c\":{}}}",
      "[[[[[[[[[[1]]]]]]]]]]",
      "{\"dup\":1,\"dup\":2}",  // duplicate keys: order-preserving accept
  };
  for (const std::string& doc : y_cases) {
    EXPECT_TRUE(agree(doc).has_value()) << "expected accept: " << doc;
  }
}

TEST(JsonDifferential, RejectCases) {
  const std::vector<std::string> n_cases = {
      // n_structure
      "", " ", "[", "]", "{", "}", "[1,", "[1,]", "[,1]", "{\"a\":}",
      "{\"a\"}", "{\"a\":1,}", "{:1}", "[1]]", "[1] [2]", "nul", "tru",
      "falsee", "nulll", "truefalse", "[1}", "{\"a\":1]",
      "\x00[1]",  // NUL before document (std::string keeps the byte)
      // n_number
      "01", "-01", "+1", "1.", ".5", "-", "--1", "1e", "1e+", "0x10",
      "1.2.3", "Infinity", "-Infinity", "NaN", "1e999", "-1e999",
      "[1.e3]", "[+0]", "[0e]", "[.e1]", "[1eE2]", "[1 000]",
      // n_string
      "\"unterminated", "\"\\", "\"\\q\"", "\"\\u12\"", "\"\\uZZZZ\"",
      "\"\\uD834\"", "\"\\uDD1E\"", "\"\\uD834\\uD834\"", "\"\\uD834x\"",
      "'single'", "\"tab\there\"",        // raw control byte in string
      std::string("\"nul\x00here\"", 10),  // raw NUL in string
      // n_whitespace (locale isspace regressions)
      "\f1", "\v1", "1\f", "[1,\v2]", "\xA0[1]",
  };
  for (const std::string& doc : n_cases) {
    EXPECT_FALSE(agree(doc).has_value()) << "expected reject: " << doc;
  }
}

TEST(JsonDifferential, ImplementationDefinedCasesAgree) {
  // i_ cases: RFC 8259 leaves these open (precision loss, huge magnitudes,
  // raw invalid UTF-8 in strings). Whatever this implementation does, both
  // parsers must do the same thing.
  const std::vector<std::string> i_cases = {
      "[123123e100000]", "[-123123e100000]", "[0.4e00669999]",
      "[1.0000000000000002]", "[9007199254740993]",
      "[0.00000000000000000000000000000001]",
      "\"a\x80z\"", "\"\xC3(\"", "\"\xED\xA0\x80\"",  // invalid raw UTF-8
      "[" + std::string(400, '[') + "1" + std::string(400, ']') + "]",
  };
  for (const std::string& doc : i_cases) {
    agree(doc);
  }
}

/// Generates a random JSON tree, biased toward the shapes knowledge
/// objects take (string-keyed objects of metrics arrays).
JsonValue random_tree(Rng& rng, int depth) {
  const std::int64_t kind = rng.uniform_int(0, depth >= 4 ? 4 : 6);
  switch (kind) {
    case 0: return JsonValue(nullptr);
    case 1: return JsonValue(rng.uniform_int(0, 1) == 0);
    case 2: return JsonValue(rng.uniform_int(-1000000, 1000000));
    case 3: return JsonValue(rng.uniform(-1e6, 1e6));
    case 4: {
      std::string s;
      const std::int64_t len = rng.uniform_int(0, 24);
      for (std::int64_t i = 0; i < len; ++i) {
        switch (rng.uniform_int(0, 9)) {
          case 0: s += '"'; break;
          case 1: s += '\\'; break;
          case 2: s += '\n'; break;
          case 3: s += "\xC3\xA9"; break;          // é
          case 4: s += "\xF0\x9D\x84\x9E"; break;  // 𝄞
          default:
            s += static_cast<char>('a' + rng.uniform_int(0, 25));
            break;
        }
      }
      return JsonValue(std::move(s));
    }
    case 5: {
      JsonArray arr;
      const std::int64_t n = rng.uniform_int(0, 8);
      for (std::int64_t i = 0; i < n; ++i) {
        arr.push_back(random_tree(rng, depth + 1));
      }
      return JsonValue(std::move(arr));
    }
    default: {
      JsonObject obj;
      const std::int64_t n = rng.uniform_int(0, 6);
      for (std::int64_t i = 0; i < n; ++i) {
        obj.emplace_back("k" + std::to_string(i), random_tree(rng, depth + 1));
      }
      return JsonValue(std::move(obj));
    }
  }
}

TEST(JsonDifferential, RandomizedTreesRoundTripIdentically) {
  Rng rng(0xD1FFu);
  for (int round = 0; round < 300; ++round) {
    const JsonValue tree = random_tree(rng, 0);
    for (const std::string& doc : {tree.dump(), tree.dump(2)}) {
      const std::optional<std::string> verdict = agree(doc);
      ASSERT_TRUE(verdict.has_value()) << doc;
      EXPECT_EQ(*verdict, tree.dump()) << doc;  // dump is a fixed point
    }
  }
}

TEST(JsonDifferential, RandomizedMutationsKeepVerdictsAligned) {
  // Corrupt valid documents one byte at a time: whatever a flipped quote,
  // bracket, or control byte does to one parser, it must do to the other.
  Rng rng(0xFA22u);
  static constexpr char kNoise[] = {'"', '\\', '{', '}',  '[',  ']',
                                    ',', ':', '0', 'e',  '-',  '.',
                                    ' ', 'x', '\n', '\t', '\f', '\x1f'};
  for (int round = 0; round < 300; ++round) {
    std::string doc = random_tree(rng, 0).dump();
    if (doc.empty()) {
      continue;
    }
    const std::int64_t edits = rng.uniform_int(1, 3);
    for (std::int64_t e = 0; e < edits; ++e) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform_int(0, doc.size() - 1));
      const char noise =
          kNoise[rng.uniform_int(0, std::size(kNoise) - 1)];
      if (rng.uniform_int(0, 1) == 0) {
        doc[pos] = noise;
      } else {
        doc.insert(pos, 1, noise);
      }
    }
    agree(doc);
  }
}

}  // namespace
}  // namespace iokc::util
