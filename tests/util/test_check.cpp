// Exercises the enabled side of the IOKC_ASSERT/IOKC_CHECK macros. This TU
// forces checks on regardless of build type; test_check_release.cpp compiles
// the same scenarios with IOKC_DISABLE_CHECKS to prove the macros vanish.
#undef IOKC_DISABLE_CHECKS
#ifndef IOKC_FORCE_CHECKS
#define IOKC_FORCE_CHECKS
#endif
#include "src/util/check.hpp"

#include <gtest/gtest.h>

namespace iokc::util {
namespace {

static_assert(IOKC_CHECKS_ENABLED == 1,
              "IOKC_FORCE_CHECKS must win over NDEBUG");

TEST(Check, PassingConditionsAreSilent) {
  int evaluations = 0;
  IOKC_ASSERT([&] {
    ++evaluations;
    return true;
  }());
  IOKC_CHECK([&] {
    ++evaluations;
    return true;
  }(), "should not fire");
  EXPECT_EQ(evaluations, 2);
}

TEST(Check, CheckThrowsCheckErrorWithLocation) {
  try {
    IOKC_CHECK(1 == 2, "math is broken");
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("check failed"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Check, CheckErrorIsPartOfTheIokcHierarchy) {
  EXPECT_THROW(IOKC_CHECK(false, "catchable as iokc::Error"), iokc::Error);
}

TEST(CheckDeathTest, AssertAbortsWithExpressionText) {
  EXPECT_DEATH(IOKC_ASSERT(2 + 2 == 5), "assertion failed: 2 \\+ 2 == 5");
}

}  // namespace
}  // namespace iokc::util
