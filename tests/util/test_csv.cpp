#include "src/util/csv.hpp"

#include <gtest/gtest.h>

#include "src/util/error.hpp"

namespace iokc::util {
namespace {

TEST(Csv, WritesSimpleRows) {
  CsvWriter writer;
  writer.add_row({"a", "b", "c"});
  writer.add_row({"1", "2", "3"});
  EXPECT_EQ(writer.text(), "a,b,c\n1,2,3\n");
}

TEST(Csv, QuotesWhenNeeded) {
  CsvWriter writer;
  writer.add_row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(writer.text(),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(Csv, ParsesSimple) {
  const auto rows = parse_csv("a,b\n1,2\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(Csv, ParsesQuotedFields) {
  const auto rows = parse_csv("\"a,1\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,1");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
  EXPECT_EQ(rows[0][2], "line\nbreak");
}

TEST(Csv, ParsesCrlfAndMissingFinalNewline) {
  const auto rows = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, EmptyFields) {
  const auto rows = parse_csv("a,,c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(Csv, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv("\"open"), ParseError);
}

TEST(Csv, RejectsStrayCharactersAfterClosingQuote) {
  // RFC 4180: a closing quote may only be followed by a separator or a
  // record terminator. "a"b would silently mangle on round trip.
  EXPECT_THROW(parse_csv("\"a\"b\n"), ParseError);
  EXPECT_THROW(parse_csv("x,\"a\" ,y\n"), ParseError);
  // ...whereas separator / CRLF / end-of-text right after the quote are fine.
  EXPECT_EQ(parse_csv("\"a\",b\n")[0],
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(parse_csv("\"a\"\r\n")[0], (std::vector<std::string>{"a"}));
  EXPECT_EQ(parse_csv("\"a\"")[0], (std::vector<std::string>{"a"}));
}

TEST(Csv, BlankLineIsARecordWithOneEmptyCell) {
  const auto rows = parse_csv("a\n\nb\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{""}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"b"}));
}

TEST(Csv, EmptyRowRoundTrips) {
  // add_row({""}) writes a bare newline; the parser used to drop that
  // record entirely, breaking write -> parse round trips.
  CsvWriter writer;
  writer.add_row({"before"});
  writer.add_row({""});
  writer.add_row({"after"});
  const auto rows = parse_csv(writer.text());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{""}));
}

TEST(Csv, RoundTripsArbitraryCells) {
  CsvWriter writer;
  const std::vector<std::string> original{"x,y", "\"", "\nmulti\nline\n", "",
                                          "normal"};
  writer.add_row(original);
  const auto rows = parse_csv(writer.text());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

TEST(Csv, SaveRejectsBadPath) {
  CsvWriter writer;
  writer.add_row({"x"});
  EXPECT_THROW(writer.save("/nonexistent-dir/foo.csv"), IoError);
}

}  // namespace
}  // namespace iokc::util
