#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace iokc::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  double ss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    ss += v * v;
  }
  const double mean = sum / n;
  const double variance = ss / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < 20001; ++i) {
    values.push_back(rng.lognormal(0.0, 0.25));
  }
  std::nth_element(values.begin(), values.begin() + 10000, values.end());
  EXPECT_NEAR(values[10000], 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  // The child stream must not mirror the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += parent.next_u64() == child.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix, SeedStreamDerivationIsDeterministicAndDisjoint) {
  // The stateless overload derives per-work-package seeds: same (seed,
  // stream) -> same value, distinct streams -> distinct generators.
  EXPECT_EQ(splitmix64(42, 0), splitmix64(42, 0));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 64; ++stream) {
    seeds.push_back(splitmix64(42, stream));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  // Stream 0 must differ from the plain seed (the parent's own stream).
  EXPECT_NE(splitmix64(42, 0), 42u);
  // Generators seeded from adjacent streams diverge immediately.
  Rng a(splitmix64(7, 0));
  Rng b(splitmix64(7, 1));
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
  EXPECT_NE(splitmix64(state2), first);  // stream advances
}

}  // namespace
}  // namespace iokc::util
