#include "src/util/units.hpp"

#include <gtest/gtest.h>

#include "src/util/error.hpp"

namespace iokc::util {
namespace {

TEST(Units, ParsePlainBytes) {
  EXPECT_EQ(parse_size("0"), 0u);
  EXPECT_EQ(parse_size("1"), 1u);
  EXPECT_EQ(parse_size("4096"), 4096u);
}

TEST(Units, ParseSuffixes) {
  EXPECT_EQ(parse_size("1k"), kKiB);
  EXPECT_EQ(parse_size("1K"), kKiB);
  EXPECT_EQ(parse_size("4m"), 4 * kMiB);
  EXPECT_EQ(parse_size("4M"), 4 * kMiB);
  EXPECT_EQ(parse_size("2g"), 2 * kGiB);
  EXPECT_EQ(parse_size("1t"), kTiB);
}

TEST(Units, ParseRejectsGarbage) {
  EXPECT_THROW(parse_size(""), ParseError);
  EXPECT_THROW(parse_size("m"), ParseError);
  EXPECT_THROW(parse_size("4x"), ParseError);
  EXPECT_THROW(parse_size("4mm"), ParseError);
  EXPECT_THROW(parse_size("-4m"), ParseError);
  EXPECT_THROW(parse_size("4 m"), ParseError);
}

TEST(Units, ParseRejectsOverflow) {
  EXPECT_THROW(parse_size("99999999999999999999"), ParseError);
  EXPECT_THROW(parse_size("18446744073709551615k"), ParseError);
}

TEST(Units, FormatBytesExact) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(kKiB), "1 KiB");
  EXPECT_EQ(format_bytes(4 * kMiB), "4 MiB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3 GiB");
}

TEST(Units, FormatBytesFractional) {
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(kMiB + kMiB / 2), "1.50 MiB");
}

TEST(Units, FormatSizeTokenPicksLargestExactUnit) {
  EXPECT_EQ(format_size_token(4 * kMiB), "4m");
  EXPECT_EQ(format_size_token(2 * kGiB), "2g");
  EXPECT_EQ(format_size_token(512 * kKiB), "512k");
  EXPECT_EQ(format_size_token(4100), "4100");
}

TEST(Units, MibPerSec) {
  EXPECT_DOUBLE_EQ(to_mib_per_sec(kMiB, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(to_mib_per_sec(10 * kMiB, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(to_mib_per_sec(kMiB, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(to_mib_per_sec(kMiB, -1.0), 0.0);
}

TEST(Units, FormatHelpers) {
  EXPECT_EQ(format_mib_per_sec(2850.126), "2850.13");
  EXPECT_EQ(format_seconds(4.5), "4.50000");
}

/// Property: parse(format_size_token(x)) == x for exact binary sizes.
class SizeTokenRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SizeTokenRoundTrip, RoundTrips) {
  const std::uint64_t bytes = GetParam();
  EXPECT_EQ(parse_size(format_size_token(bytes)), bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SizeTokenRoundTrip,
    ::testing::Values(1ull, 17ull, 4096ull, 47008ull, kKiB, 512 * kKiB, kMiB,
                      2 * kMiB, 47 * kMiB, kGiB, 3 * kGiB, kTiB));

}  // namespace
}  // namespace iokc::util
